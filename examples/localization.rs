//! NDT localization against a map built from earlier frames — the
//! paper's second radius-search workload (Figure 2). The vehicle's pose
//! is recovered from a perturbed odometry guess; the Bonsai-compressed
//! neighbour search produces the identical trajectory.
//!
//! ```sh
//! cargo run --release --example localization
//! ```

use kd_bonsai::cluster::filters;
use kd_bonsai::geom::{Point3, Pose};
use kd_bonsai::lidar::{DrivingSequence, SequenceConfig};
use kd_bonsai::ndt::{NdtConfig, NdtMap, NdtMatcher, NdtSearchMode};
use kd_bonsai::sim::SimEngine;

fn main() {
    let seq = DrivingSequence::new(SequenceConfig::small_test());
    let mut sim = SimEngine::disabled();
    // NDT consumes the voxel-filtered scan *with* ground (Autoware's
    // ndt_matching input): the ground plane constrains z/pitch/roll, the
    // walls constrain the rest.
    let prep = |sim: &mut SimEngine, cloud: &[Point3]| {
        let cropped = filters::crop(sim, cloud, 60.0, -0.5, 6.0);
        filters::voxel_downsample(sim, &cropped, 0.3)
    };

    // Build the "HD map": frames 0..8 accumulated in world coordinates.
    let mut map_cloud: Vec<Point3> = Vec::new();
    for i in 0..8 {
        let pose = seq.pose(i);
        for p in seq.frame(i) {
            map_cloud.push(pose.apply(p));
        }
    }
    let map_cloud = filters::voxel_downsample(&mut sim, &map_cloud, 0.4);
    println!("map: {} points after downsampling", map_cloud.len());
    let map = NdtMap::build(&mut sim, &map_cloud, 2.0);
    println!(
        "NDT map: {} Gaussian cells at 2 m resolution",
        map.cells().len()
    );

    // Localize frames 9..14 from perturbed guesses. The perturbation is
    // lateral + heading: a straight road constrains those strongly,
    // while the along-track direction is the classic aperture-problem
    // weak axis for any scan matcher (and the one wheel odometry
    // measures best anyway).
    let cfg = NdtConfig {
        scan_stride: 2,
        ..NdtConfig::default()
    };
    let mut matcher = NdtMatcher::new(&mut sim, map, cfg, NdtSearchMode::Bonsai);
    for i in 9..14 {
        let truth = seq.pose(i);
        let scan = prep(&mut sim, &seq.frame(i));
        // Odometry-quality error: ~25 cm lateral and ~1.7° of heading.
        let guess = Pose::from_translation_euler(
            truth.translation + Point3::new(0.02, -0.25, 0.05),
            0.0,
            0.0,
            truth.euler()[2] + 0.03,
        );
        let result = matcher.align(&mut sim, &scan, &guess);
        println!(
            "frame {i}: guess error {:.3} m → residual {:.3} m in {} iterations (converged: {})",
            guess.translation.distance(truth.translation),
            result.translation_error(&truth),
            result.iterations,
            result.converged,
        );
        assert!(
            result.translation_error(&truth) < guess.translation.distance(truth.translation),
            "alignment must improve on the odometry guess"
        );
    }
    println!("radius searches during localization: {} leaf visits", {
        // One more alignment, counting work.
        let truth = seq.pose(14);
        let scan = prep(&mut sim, &seq.frame(14));
        let r = matcher.align(&mut sim, &scan, &truth);
        r.search_stats.leaf_visits
    });
}
