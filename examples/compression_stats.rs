//! Reproduces the paper's Section III analysis on synthetic data: how
//! often leaf `<sign, exponent>` fields repeat (the compression source),
//! what the compressed structures cost in bytes, and what the reduced
//! representations do to classification accuracy.
//!
//! ```sh
//! cargo run --release --example compression_stats
//! ```

use kd_bonsai::cluster::{ClusterParams, FramePipeline};
use kd_bonsai::core::BonsaiTree;
use kd_bonsai::floatfmt::ReducedFormat;
use kd_bonsai::kdtree::KdTreeConfig;
use kd_bonsai::lidar::{DrivingSequence, SequenceConfig};
use kd_bonsai::sim::SimEngine;

fn main() {
    let seq = DrivingSequence::new(SequenceConfig::small_test());
    let pipeline = FramePipeline::new(ClusterParams::default());
    let mut sim = SimEngine::disabled();

    let mut leaves = 0u64;
    let mut uniform = [0u64; 3];
    let mut compressed_bytes = 0u64;
    let mut baseline_bytes = 0u64;
    for i in 0..6 {
        let cloud = pipeline.preprocess(&mut sim, &seq.frame(i));
        let tree = BonsaiTree::build(cloud, KdTreeConfig::default(), &mut sim);
        let s = tree.compression_stats();
        leaves += s.leaves as u64;
        uniform[0] += s.x_compressed as u64;
        uniform[1] += s.y_compressed as u64;
        uniform[2] += s.z_compressed as u64;
        compressed_bytes += s.compressed_bytes;
        baseline_bytes += s.baseline_bytes;
    }

    println!("== leaf value similarity (paper: 78% x, 83% y) ==");
    for (c, name) in ["x", "y", "z"].iter().enumerate() {
        println!(
            "  {name}: {:.0}% of {leaves} leaves share one <sign, exponent>",
            uniform[c] as f64 / leaves as f64 * 100.0
        );
    }
    println!(
        "\n== compressed footprint ==\n  {compressed_bytes} of {baseline_bytes} baseline bytes \
         ({:.1}%, paper ~37%)",
        compressed_bytes as f64 / baseline_bytes as f64 * 100.0
    );

    // Reduced-format accuracy at a glance (full sweep: Table I bench).
    println!("\n== reduced-format round-trip error at 25 m ==");
    let v = 25.1234f32;
    for fmt in ReducedFormat::ALL {
        println!(
            "  {:<18} {:>2} bits: |Δ| = {:.6} m",
            fmt.paper_name(),
            fmt.bits(),
            (fmt.quantize_value(v) - v).abs()
        );
    }
}
