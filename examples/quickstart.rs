//! Quickstart: build a Bonsai tree over a small cloud, run a radius
//! search on compressed leaves, and verify the result matches the
//! uncompressed baseline bit-for-bit in membership.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kd_bonsai::core::BonsaiTree;
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::KdTreeConfig;
use kd_bonsai::sim::SimEngine;

fn main() {
    // A toy "scene": two clusters of points plus scattered noise.
    let mut cloud = Vec::new();
    for i in 0..400 {
        let (cx, cy) = if i % 2 == 0 {
            (10.0, 5.0)
        } else {
            (-6.0, -3.0)
        };
        let a = i as f32 * 0.37;
        cloud.push(Point3::new(
            cx + (a.sin() * 1.3),
            cy + (a.cos() * 1.1),
            1.0 + 0.3 * ((i % 7) as f32 / 7.0),
        ));
    }

    // Build: the k-d tree plus the compressed leaf directory.
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let stats = tree.compression_stats();
    println!(
        "built tree: {} leaves, compressed {} -> {} bytes ({:.1}% of baseline)",
        stats.leaves,
        stats.baseline_bytes,
        stats.compressed_bytes,
        stats.compression_ratio() * 100.0
    );

    // Search compressed vs baseline: identical membership, guaranteed.
    let query = cloud[42];
    let radius = 1.0;
    let mut bonsai: Vec<u32> = tree
        .radius_search_simple(query, radius)
        .iter()
        .map(|n| n.index)
        .collect();
    let mut baseline: Vec<u32> = tree
        .kd_tree()
        .radius_search_simple(query, radius)
        .iter()
        .map(|n| n.index)
        .collect();
    bonsai.sort_unstable();
    baseline.sort_unstable();
    assert_eq!(
        bonsai, baseline,
        "compressed search must match the baseline"
    );
    println!(
        "radius search at {query} r={radius}: {} neighbours (identical to baseline)",
        bonsai.len()
    );

    // Leaf value similarity — the compression source (paper Section III-A).
    println!(
        "leaves with uniform <sign,exp>: x {:.0}%  y {:.0}%  z {:.0}%",
        stats.uniform_fraction(0) * 100.0,
        stats.uniform_fraction(1) * 100.0,
        stats.uniform_fraction(2) * 100.0
    );

    // Production querying: the batch engine answers many queries in one
    // allocation-free call (add `search_batch_parallel` for threads).
    let engine = kd_bonsai::core::RadiusSearchEngine::bonsai(&tree);
    let mut batch = kd_bonsai::kdtree::QueryBatch::new();
    engine.search_batch(&cloud, radius, &mut batch);
    assert_eq!(batch.results(42).len(), bonsai.len());
    println!(
        "batched: {} queries -> {} neighbours, {} points inspected, {:.2}% fallbacks",
        batch.num_queries(),
        batch.total_matches(),
        batch.stats().points_inspected,
        batch.stats().fallback_ratio() * 100.0
    );
}
