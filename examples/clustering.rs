//! Euclidean clustering on a synthetic LiDAR frame — the paper's
//! evaluation workload, end to end: simulate an HDL-64E frame of an
//! urban scene, preprocess it, and segment it into objects with the
//! Bonsai-compressed tree, comparing against ground-truth labels.
//!
//! ```sh
//! cargo run --release --example clustering
//! ```

use std::collections::HashMap;

use kd_bonsai::cluster::{ClusterParams, FramePipeline, TreeMode};
use kd_bonsai::lidar::{DrivingSequence, ObjectKind, SequenceConfig};
use kd_bonsai::sim::SimEngine;

fn main() {
    // One frame of the synthetic drive, with ground-truth labels.
    let seq = DrivingSequence::new(SequenceConfig::small_test());
    let labeled = seq.frame_labeled(5);
    let cloud: Vec<_> = labeled.iter().map(|(p, _)| *p).collect();
    println!("frame: {} raw points", cloud.len());

    // Run the Autoware-style pipeline with compressed leaves.
    let mut sim = SimEngine::disabled();
    let pipeline = FramePipeline::new(ClusterParams::default());
    let result = pipeline.run(&mut sim, &cloud, TreeMode::Bonsai);
    println!(
        "preprocessed to {} points, found {} clusters",
        result.clustered_points,
        result.output.clusters.len()
    );

    // Describe each cluster with its box size and dominant ground-truth
    // label (matched by nearest raw point).
    for (i, (cluster, bbox)) in result
        .output
        .clusters
        .iter()
        .zip(&result.boxes)
        .enumerate()
        .take(12)
    {
        let mut votes: HashMap<&'static str, usize> = HashMap::new();
        let center = bbox.center();
        // Vote with the labels of raw points near the cluster's box.
        for (p, kind) in &labeled {
            if bbox.distance_squared_to(*p) < 0.25 {
                let name = match kind {
                    ObjectKind::Car => "car",
                    ObjectKind::Pedestrian => "pedestrian",
                    ObjectKind::Building => "building",
                    ObjectKind::Pole => "pole",
                    ObjectKind::Tree => "tree",
                    ObjectKind::Ground => "ground",
                };
                *votes.entry(name).or_default() += 1;
            }
        }
        let label = votes
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(k, _)| *k)
            .unwrap_or("unknown");
        let e = bbox.extent();
        println!(
            "cluster {i:>2}: {:>4} pts  {:>4.1}×{:>4.1}×{:>4.1} m at ({:>6.1}, {:>6.1})  → {label}",
            cluster.len(),
            e.x,
            e.y,
            e.z,
            center.x,
            center.y,
        );
    }

    // The safety claim: the baseline pipeline produces the same clusters.
    let mut sim2 = SimEngine::disabled();
    let baseline = pipeline.run(&mut sim2, &cloud, TreeMode::Baseline);
    assert_eq!(baseline.output.clusters, result.output.clusters);
    println!("baseline pipeline produced identical clusters ✓");
}
