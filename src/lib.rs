//! Reproduction of **"K-D Bonsai: ISA-Extensions to Compress K-D Trees
//! for Autonomous Driving Tasks"** (Becker, Arnau, González — ISCA 2023).
//!
//! This facade crate re-exports the workspace so applications can depend
//! on one crate. The layering, bottom-up:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `bonsai-geom` | points, boxes, rays, poses, small matrices |
//! | [`floatfmt`] | `bonsai-floatfmt` | f16/bfloat16/float24, the Eq. 6 error bound |
//! | [`lidar`] | `bonsai-lidar` | synthetic HDL-64E + urban driving sequences |
//! | [`sim`] | `bonsai-sim` | caches, branch predictor, timing, energy models |
//! | [`isa`] | `bonsai-isa` | the six Bonsai instructions + ZipPts buffer |
//! | [`kdtree`] | `bonsai-kdtree` | PCL/FLANN-style k-d tree, radius/kNN search |
//! | [`core`] | `bonsai-core` | **the paper's contribution**: compressed leaves, exact search |
//! | [`cluster`] | `bonsai-cluster` | Autoware-style euclidean clustering |
//! | [`ndt`] | `bonsai-ndt` | NDT scan matching (localization workload) |
//! | [`serve`] | `bonsai-serve` | async serving: epoch-pinned snapshots, batching, admission control |
//! | [`pipeline`] | `bonsai-pipeline` | every table/figure as a runnable experiment |
//!
//! # Quick start
//!
//! ```
//! use kd_bonsai::core::BonsaiTree;
//! use kd_bonsai::geom::Point3;
//! use kd_bonsai::kdtree::KdTreeConfig;
//! use kd_bonsai::sim::SimEngine;
//!
//! let cloud: Vec<Point3> =
//!     (0..300).map(|i| Point3::new((i % 20) as f32 * 0.2, (i / 20) as f32 * 0.2, 1.0)).collect();
//! let mut sim = SimEngine::disabled();
//! let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
//!
//! // Compressed search returns exactly the baseline membership.
//! let hits = tree.radius_search_simple(cloud[25], 0.5);
//! assert!(!hits.is_empty());
//! ```
//!
//! # Batched production querying
//!
//! Uninstrumented serving goes through
//! [`core::RadiusSearchEngine`]: iterative allocation-free traversal,
//! leaf-contiguous SoA scans, many queries per call, and (with the
//! default `parallel` feature) scoped-thread fan-out — with results
//! bit-identical to the per-query instrumented paths.
//!
//! ```
//! use kd_bonsai::core::{BonsaiTree, RadiusSearchEngine};
//! use kd_bonsai::geom::Point3;
//! use kd_bonsai::kdtree::{KdTreeConfig, QueryBatch};
//! use kd_bonsai::sim::SimEngine;
//!
//! let cloud: Vec<Point3> =
//!     (0..300).map(|i| Point3::new((i % 20) as f32 * 0.2, (i / 20) as f32 * 0.2, 1.0)).collect();
//! let mut sim = SimEngine::disabled();
//! let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
//!
//! let engine = RadiusSearchEngine::bonsai(&tree);
//! let mut batch = QueryBatch::new();
//! engine.search_batch(&cloud, 0.5, &mut batch);
//! assert_eq!(batch.num_queries(), cloud.len());
//! ```

#![forbid(unsafe_code)]

pub use bonsai_cluster as cluster;
pub use bonsai_core as core;
pub use bonsai_floatfmt as floatfmt;
pub use bonsai_geom as geom;
pub use bonsai_isa as isa;
pub use bonsai_kdtree as kdtree;
pub use bonsai_lidar as lidar;
pub use bonsai_ndt as ndt;
pub use bonsai_pipeline as pipeline;
pub use bonsai_serve as serve;
pub use bonsai_sim as sim;
