//! Property tests for the batch radius-search engine: for every tree
//! mode (Baseline / Bonsai / SoftwareCodec), answering a query set
//! through `RadiusSearchEngine::search_batch` — sequentially or across
//! threads — returns results permutation-identical to the seed-style
//! per-query searches through the instrumented `LeafProcessor` paths,
//! and the batch's `SearchStats` equal the sum of the per-query stats.

use kd_bonsai::cluster::TreeMode;
use kd_bonsai::core::{BonsaiTree, RadiusSearchEngine, SoftwareCodecProcessor};
use kd_bonsai::geom::Point3;
use kd_bonsai::isa::Machine;
use kd_bonsai::kdtree::{BaselineLeafProcessor, KdTreeConfig, Neighbor, QueryBatch, SearchStats};
use kd_bonsai::sim::SimEngine;
use proptest::prelude::*;

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-60.0f32..60.0, -60.0f32..60.0, -3.0f32..3.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        2..max,
    )
}

fn sorted(mut hits: Vec<Neighbor>) -> Vec<(u32, f32)> {
    hits.sort_unstable_by_key(|n| n.index);
    hits.into_iter().map(|n| (n.index, n.dist_sq)).collect()
}

/// Per-query reference: the instrumented search path of `mode` with a
/// disabled simulator, exactly as the seed issued queries.
fn per_query_reference(
    tree: &BonsaiTree,
    mode: TreeMode,
    queries: &[Point3],
    radius: f32,
) -> (Vec<Vec<Neighbor>>, SearchStats) {
    let mut sim = SimEngine::disabled();
    let mut machine = Machine::new();
    let mut software = SoftwareCodecProcessor::new(&mut sim, tree.directory());
    let mut baseline = BaselineLeafProcessor::new(&mut sim);
    let mut total = SearchStats::default();
    let mut results = Vec::with_capacity(queries.len());
    for &q in queries {
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        match mode {
            TreeMode::Baseline => tree.kd_tree().radius_search(
                &mut sim,
                &mut baseline,
                q,
                radius,
                &mut out,
                &mut stats,
            ),
            TreeMode::Bonsai => {
                tree.radius_search(&mut sim, &mut machine, q, radius, &mut out, &mut stats)
            }
            TreeMode::SoftwareCodec => tree.kd_tree().radius_search(
                &mut sim,
                &mut software,
                q,
                radius,
                &mut out,
                &mut stats,
            ),
        }
        total += stats;
        results.push(out);
    }
    (results, total)
}

fn engine_for<'t>(tree: &'t BonsaiTree, mode: TreeMode) -> RadiusSearchEngine<'t> {
    match mode {
        TreeMode::Baseline => RadiusSearchEngine::baseline(tree.kd_tree()),
        TreeMode::Bonsai => RadiusSearchEngine::bonsai(tree),
        TreeMode::SoftwareCodec => RadiusSearchEngine::software_codec(tree),
    }
}

const MODES: [TreeMode; 3] = [
    TreeMode::Baseline,
    TreeMode::Bonsai,
    TreeMode::SoftwareCodec,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Batched results are permutation-identical to per-query results
    /// and batch stats equal the per-query sum, for every mode.
    #[test]
    fn batched_equals_per_query_all_modes(
        cloud in arb_cloud(250),
        radius in 0.05f32..10.0,
        leaf in 2usize..=16,
        stride in 1usize..5,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        let queries: Vec<Point3> = cloud.iter().step_by(stride).copied().collect();

        for mode in MODES {
            let (reference, ref_stats) = per_query_reference(&tree, mode, &queries, radius);
            let engine = engine_for(&tree, mode);
            let mut batch = QueryBatch::new();
            engine.search_batch(&queries, radius, &mut batch);
            prop_assert_eq!(batch.num_queries(), queries.len());
            for (i, expect) in reference.iter().enumerate() {
                prop_assert_eq!(
                    sorted(batch.results(i).to_vec()),
                    sorted(expect.clone()),
                    "{:?} query {}", mode, i
                );
            }
            prop_assert_eq!(*batch.stats(), ref_stats, "{:?} stats", mode);
        }
    }

    /// The parallel fan-out changes nothing: same per-query results,
    /// same aggregate stats, for every mode and thread count.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batches_equal_sequential_all_modes(
        cloud in arb_cloud(200),
        radius in 0.05f32..8.0,
        threads in 2usize..=5,
    ) {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);

        for mode in MODES {
            let engine = engine_for(&tree, mode);
            let mut sequential = QueryBatch::new();
            engine.search_batch(&cloud, radius, &mut sequential);
            let mut parallel = QueryBatch::new();
            engine.search_batch_parallel(&cloud, radius, &mut parallel, threads);
            prop_assert_eq!(parallel.num_queries(), sequential.num_queries());
            for i in 0..sequential.num_queries() {
                prop_assert_eq!(
                    parallel.results(i),
                    sequential.results(i),
                    "{:?} query {} with {} threads", mode, i, threads
                );
            }
            prop_assert_eq!(parallel.stats(), sequential.stats(), "{:?} stats", mode);
        }
    }
}
