//! Does the pipeline actually segment *objects*? Clusters extracted
//! from a synthetic frame are checked against the LiDAR ground-truth
//! labels: each cluster should be label-pure (one dominant object
//! class), and the obstacle classes present in the scene should be
//! recovered.

use std::collections::HashMap;

use kd_bonsai::cluster::{ClusterParams, FramePipeline, TreeMode};
use kd_bonsai::geom::Point3;
use kd_bonsai::lidar::{DrivingSequence, ObjectKind, SequenceConfig};
use kd_bonsai::sim::SimEngine;

/// Majority ground-truth label of a cluster, voted by the raw labelled
/// points nearest to each clustered point.
fn majority_label(cluster_pts: &[Point3], labeled: &[(Point3, ObjectKind)]) -> (ObjectKind, f64) {
    let mut votes: HashMap<ObjectKind, usize> = HashMap::new();
    for cp in cluster_pts {
        // Nearest raw point (linear scan is fine at test scale).
        let (_, kind) = labeled
            .iter()
            .min_by(|(a, _), (b, _)| a.distance_squared(*cp).total_cmp(&b.distance_squared(*cp)))
            .expect("non-empty frame");
        *votes.entry(*kind).or_default() += 1;
    }
    let total: usize = votes.values().sum();
    let (kind, n) = votes
        .into_iter()
        .max_by_key(|(_, n)| *n)
        .expect("non-empty cluster");
    (kind, n as f64 / total as f64)
}

#[test]
fn clusters_are_label_pure_objects() {
    let seq = DrivingSequence::new(SequenceConfig::small_test());
    let pipeline = FramePipeline::new(ClusterParams::default());
    let labeled = seq.frame_labeled(4);
    let cloud: Vec<Point3> = labeled.iter().map(|(p, _)| *p).collect();

    let mut sim = SimEngine::disabled();
    let result = pipeline.run(&mut sim, &cloud, TreeMode::Bonsai);
    assert!(
        result.output.clusters.len() >= 3,
        "found {} clusters",
        result.output.clusters.len()
    );

    // Reconstruct the clustered (preprocessed) cloud to map indices back
    // to coordinates.
    let mut sim2 = SimEngine::disabled();
    let prepared = pipeline.preprocess(&mut sim2, &cloud);

    let mut pure = 0usize;
    let mut kinds_seen: HashMap<ObjectKind, usize> = HashMap::new();
    for cluster in &result.output.clusters {
        let pts: Vec<Point3> = cluster.iter().map(|&i| prepared[i as usize]).collect();
        let (kind, purity) = majority_label(&pts, &labeled);
        assert_ne!(kind, ObjectKind::Ground, "ground should have been removed");
        if purity >= 0.8 {
            pure += 1;
        }
        *kinds_seen.entry(kind).or_default() += 1;
    }
    // The overwhelming majority of clusters correspond to one object.
    let purity_rate = pure as f64 / result.output.clusters.len() as f64;
    assert!(
        purity_rate > 0.8,
        "only {purity_rate:.2} of clusters are label-pure"
    );
    // The scene's obstacle classes are recovered.
    assert!(
        kinds_seen.len() >= 2,
        "expected multiple obstacle classes, got {kinds_seen:?}"
    );
}
