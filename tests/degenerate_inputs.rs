//! Degenerate-input pinning across all three tree modes (Baseline /
//! Bonsai / SoftwareCodec), for every radius-search front-end: the
//! instrumented `LeafProcessor` paths, the fast `RadiusSearchEngine`,
//! and the sharded `ShardRouter`.
//!
//! Covers the two bug classes this repo's PR 2 fixed and guards:
//!
//! * **Degenerate radii** — `radius <= 0` and non-finite radii must
//!   return empty results with zero traversal work. Before the guard,
//!   `-r` returned the same neighbors as `+r` (only `r² = radius·radius`
//!   was ever compared) and NaN/∞ radii mis-pruned silently.
//! * **Degenerate clouds** — all-identical points, coincident
//!   duplicates, a single point, and coordinates that saturate the
//!   f16-approximate rows (|x| > 65504 rounds to ±∞ in binary16) must
//!   keep all three modes bit-identical in membership.

use kd_bonsai::cluster::TreeMode;
use kd_bonsai::core::{
    BonsaiTree, RadiusSearchEngine, ShardConfig, ShardRouter, SoftwareCodecProcessor,
};
use kd_bonsai::geom::Point3;
use kd_bonsai::isa::Machine;
use kd_bonsai::kdtree::{
    BaselineLeafProcessor, KdTreeConfig, Neighbor, QueryBatch, SearchScratch, SearchStats,
};
use kd_bonsai::sim::SimEngine;

const MODES: [TreeMode; 3] = [
    TreeMode::Baseline,
    TreeMode::Bonsai,
    TreeMode::SoftwareCodec,
];

/// One query through the instrumented (seed-style) search path of a
/// mode, returning the hits and the stats it recorded.
fn instrumented_search(
    tree: &BonsaiTree,
    mode: TreeMode,
    query: Point3,
    radius: f32,
) -> (Vec<Neighbor>, SearchStats) {
    let mut sim = SimEngine::disabled();
    let mut out = Vec::new();
    let mut stats = SearchStats::default();
    match mode {
        TreeMode::Baseline => {
            let mut proc = BaselineLeafProcessor::new(&mut sim);
            tree.kd_tree()
                .radius_search(&mut sim, &mut proc, query, radius, &mut out, &mut stats);
        }
        TreeMode::Bonsai => {
            let mut machine = Machine::new();
            tree.radius_search(&mut sim, &mut machine, query, radius, &mut out, &mut stats);
        }
        TreeMode::SoftwareCodec => {
            let mut proc = SoftwareCodecProcessor::new(&mut sim, tree.directory());
            tree.kd_tree()
                .radius_search(&mut sim, &mut proc, query, radius, &mut out, &mut stats);
        }
    }
    (out, stats)
}

fn engine_for<'t>(tree: &'t BonsaiTree, mode: TreeMode) -> RadiusSearchEngine<'t> {
    match mode {
        TreeMode::Baseline => RadiusSearchEngine::baseline(tree.kd_tree()),
        TreeMode::Bonsai => RadiusSearchEngine::bonsai(tree),
        TreeMode::SoftwareCodec => RadiusSearchEngine::software_codec(tree),
    }
}

fn sorted_indices(hits: &[Neighbor]) -> Vec<u32> {
    let mut v: Vec<u32> = hits.iter().map(|n| n.index).collect();
    v.sort_unstable();
    v
}

fn brute_force(cloud: &[Point3], q: Point3, r: f32) -> Vec<u32> {
    let r_sq = r * r;
    let mut hits: Vec<u32> = cloud
        .iter()
        .enumerate()
        .filter(|(_, p)| p.distance_squared(q) <= r_sq)
        .map(|(i, _)| i as u32)
        .collect();
    hits.sort_unstable();
    hits
}

/// Every mode, every front-end: membership equals brute force for the
/// given cloud/query/radius, and all three modes agree.
fn pin_all_modes(cloud: &[Point3], query: Point3, radius: f32, label: &str) {
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.to_vec(), KdTreeConfig::default(), &mut sim);
    let expect = brute_force(cloud, query, radius);
    let mut scratch = SearchScratch::new();
    let mut out = Vec::new();
    for mode in MODES {
        let (slow, _) = instrumented_search(&tree, mode, query, radius);
        assert_eq!(
            sorted_indices(&slow),
            expect,
            "{label}: {mode:?} instrumented"
        );

        let engine = engine_for(&tree, mode);
        let mut stats = SearchStats::default();
        engine.search_one(query, radius, &mut scratch, &mut out, &mut stats);
        assert_eq!(out, slow, "{label}: {mode:?} engine vs instrumented");

        let shard_cfg = ShardConfig::with_shards(4);
        let router = match mode {
            TreeMode::Baseline => ShardRouter::baseline(cloud, KdTreeConfig::default(), shard_cfg),
            TreeMode::Bonsai => ShardRouter::bonsai(cloud, KdTreeConfig::default(), shard_cfg),
            TreeMode::SoftwareCodec => {
                ShardRouter::software_codec(cloud, KdTreeConfig::default(), shard_cfg)
            }
        };
        let mut stats = SearchStats::default();
        router.search_one(query, radius, &mut scratch, &mut out, &mut stats);
        assert_eq!(sorted_indices(&out), expect, "{label}: {mode:?} router");
    }
}

// ---------------------------------------------------------------------
// Degenerate radii.
// ---------------------------------------------------------------------

fn lane_cloud(n: usize) -> Vec<Point3> {
    (0..n)
        .map(|i| {
            Point3::new(
                (i % 25) as f32 * 0.4,
                (i / 25) as f32 * 0.4,
                (i % 7) as f32 * 0.1,
            )
        })
        .collect()
}

/// The headline regression: a negative radius must not behave like its
/// absolute value. This test fails on the pre-guard code (where `-0.7`
/// returned every neighbor `+0.7` finds) in all three modes and all
/// front-ends.
#[test]
fn negative_radius_regression_all_modes() {
    let cloud = lane_cloud(600);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let query = cloud[111];
    let radius = 0.7f32;

    for mode in MODES {
        // Sanity: the positive radius finds several neighbors.
        let (positive, _) = instrumented_search(&tree, mode, query, radius);
        assert!(positive.len() > 1, "{mode:?}: +r found {}", positive.len());

        // Instrumented path.
        let (negative, stats) = instrumented_search(&tree, mode, query, -radius);
        assert!(
            negative.is_empty(),
            "{mode:?}: radius -{radius} returned {} neighbors (the +r set?)",
            negative.len()
        );
        assert_eq!(stats, SearchStats::default(), "{mode:?}: -r did work");

        // Engine: search_one, search_batch, search_batch_parallel.
        let engine = engine_for(&tree, mode);
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        engine.search_one(query, -radius, &mut scratch, &mut out, &mut stats);
        assert!(out.is_empty(), "{mode:?}: engine search_one");
        assert_eq!(stats, SearchStats::default());

        let mut batch = QueryBatch::new();
        engine.search_batch(&cloud[..64], -radius, &mut batch);
        assert_eq!(batch.num_queries(), 64);
        assert_eq!(batch.total_matches(), 0, "{mode:?}: engine search_batch");
        assert_eq!(*batch.stats(), SearchStats::default());

        #[cfg(feature = "parallel")]
        {
            engine.search_batch_parallel(&cloud[..64], -radius, &mut batch, 3);
            assert_eq!(batch.num_queries(), 64);
            assert_eq!(batch.total_matches(), 0, "{mode:?}: engine parallel");
        }
    }
}

#[test]
fn non_finite_and_zero_radii_are_empty_all_modes() {
    let cloud = lane_cloud(300);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    for mode in MODES {
        for r in [0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let (hits, stats) = instrumented_search(&tree, mode, cloud[5], r);
            assert!(hits.is_empty(), "{mode:?} radius {r}");
            assert_eq!(stats, SearchStats::default(), "{mode:?} radius {r}");
        }
    }
}

#[test]
fn degenerate_radii_are_empty_through_the_router() {
    let cloud = lane_cloud(400);
    for shards in [1, 4] {
        let router = ShardRouter::bonsai(
            &cloud,
            KdTreeConfig::default(),
            ShardConfig::with_shards(shards),
        );
        for r in [0.0f32, -0.7, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut batch = QueryBatch::new();
            router.search_batch(&cloud[..32], r, &mut batch);
            assert_eq!(batch.num_queries(), 32);
            assert_eq!(batch.total_matches(), 0, "K={shards} radius {r}");
            assert_eq!(
                *batch.stats(),
                SearchStats::default(),
                "K={shards} radius {r}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Non-finite query centers (this repo's PR 5 bugfix).
// ---------------------------------------------------------------------

const NON_FINITE_QUERIES: [Point3; 4] = [
    Point3::new(f32::NAN, 0.0, 0.0),
    Point3::new(0.0, f32::INFINITY, 0.0),
    Point3::new(0.0, 0.0, f32::NEG_INFINITY),
    Point3::new(f32::NAN, f32::INFINITY, f32::NAN),
];

/// The query-center regression: NaN/±∞ centers must return empty
/// results with zero traversal work through every single-tree front-end
/// (instrumented, fast engine, batched). This test fails on the
/// pre-guard code: radius search traversed silently, and `knn` returned
/// `k` garbage neighbors with NaN `dist_sq` because `heap.len() < k`
/// admitted whatever the first leaves held.
#[test]
fn non_finite_query_centers_are_empty_all_modes() {
    let cloud = lane_cloud(400);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let mut scratch = SearchScratch::new();
    let mut out = Vec::new();
    for q in NON_FINITE_QUERIES {
        for mode in MODES {
            let (hits, stats) = instrumented_search(&tree, mode, q, 1.0);
            assert!(hits.is_empty(), "{mode:?} query {q:?}");
            assert_eq!(stats, SearchStats::default(), "{mode:?} query {q:?}");

            let engine = engine_for(&tree, mode);
            let mut stats = SearchStats::default();
            engine.search_one(q, 1.0, &mut scratch, &mut out, &mut stats);
            assert!(out.is_empty(), "{mode:?} engine query {q:?}");
            assert_eq!(stats, SearchStats::default(), "{mode:?} engine query {q:?}");
        }
        // kNN: the worst offender pre-guard.
        assert!(
            tree.kd_tree().knn(&mut sim, q, 7).is_empty(),
            "knn found neighbors at {q:?}"
        );
        assert!(tree.kd_tree().nearest(&mut sim, q).is_none());
    }
    // Batched: one empty result range per query, zero aggregate stats.
    for mode in MODES {
        let engine = engine_for(&tree, mode);
        let mut batch = QueryBatch::new();
        engine.search_batch(&NON_FINITE_QUERIES, 1.0, &mut batch);
        assert_eq!(batch.num_queries(), NON_FINITE_QUERIES.len());
        assert_eq!(batch.total_matches(), 0, "{mode:?}");
        assert_eq!(*batch.stats(), SearchStats::default(), "{mode:?}");
    }
}

/// The sharded twin: the router must reject non-finite centers before
/// the AABB walk (NaN makes every `intersects_ball` false, ±∞ makes the
/// box distance arithmetic NaN — either way it could diverge from the
/// single-tree engine without the shared guard).
#[test]
fn non_finite_query_centers_are_empty_through_the_router() {
    let cloud = lane_cloud(400);
    for shards in [1, 4] {
        let router = ShardRouter::bonsai(
            &cloud,
            KdTreeConfig::default(),
            ShardConfig::with_shards(shards),
        );
        let mut batch = QueryBatch::new();
        router.search_batch(&NON_FINITE_QUERIES, 1.0, &mut batch);
        assert_eq!(batch.num_queries(), NON_FINITE_QUERIES.len());
        assert_eq!(batch.total_matches(), 0, "K={shards}");
        assert_eq!(*batch.stats(), SearchStats::default(), "K={shards}");
    }
}

// ---------------------------------------------------------------------
// Degenerate clouds.
// ---------------------------------------------------------------------

#[test]
fn all_identical_points_pin_every_mode() {
    let p = Point3::new(12.345, -6.789, 1.5);
    let cloud = vec![p; 100];
    // Within radius: everything; the f16 approximation of a point is
    // the same for all copies, so every mode must return all 100.
    pin_all_modes(&cloud, p, 0.5, "identical in-radius");
    // Query offset past the radius: nothing.
    pin_all_modes(&cloud, p + Point3::new(2.0, 0.0, 0.0), 0.5, "identical out");
    // Query exactly at distance ~r: membership still pinned to brute
    // force in every mode (the shell recomputes boundary cases).
    pin_all_modes(
        &cloud,
        p + Point3::new(0.5, 0.0, 0.0),
        0.5,
        "identical boundary",
    );
}

#[test]
fn coincident_duplicates_pin_every_mode() {
    // Three duplicate sites embedded in a regular lattice.
    let mut cloud = lane_cloud(200);
    let dup_a = Point3::new(3.0, 3.0, 0.3);
    let dup_b = Point3::new(7.0, 1.0, 0.0);
    for _ in 0..17 {
        cloud.push(dup_a);
    }
    for _ in 0..23 {
        cloud.push(dup_b);
    }
    for (q, r, label) in [
        (dup_a, 0.01, "tight around dup A"),
        (dup_a, 1.0, "wide around dup A"),
        (dup_b, 0.01, "tight around dup B"),
        (Point3::new(5.0, 2.0, 0.1), 3.0, "covering both sites"),
    ] {
        pin_all_modes(&cloud, q, r, label);
    }
}

#[test]
fn single_point_cloud_pins_every_mode() {
    let p = Point3::new(-4.2, 8.8, 0.9);
    let cloud = vec![p];
    pin_all_modes(&cloud, p, 0.1, "single hit");
    pin_all_modes(&cloud, p + Point3::new(1.0, 1.0, 0.0), 0.5, "single miss");
    pin_all_modes(
        &cloud,
        p + Point3::new(0.3, 0.4, 0.0),
        0.5,
        "single boundary",
    );
}

/// Coordinates beyond binary16's finite range (±65504) saturate the
/// f16-approximate SoA rows to ±∞. The error-bound LUT returns ∞ for
/// exponent field 31, so every such point must take the exact-recompute
/// fallback — membership stays pinned to the `f32` brute force.
#[test]
fn f16_saturating_coordinates_pin_every_mode() {
    let mut cloud = vec![
        Point3::new(66_000.0, 0.0, 0.0),
        Point3::new(66_010.0, 0.0, 0.0),
        Point3::new(66_000.0, 12.0, 0.0),
        Point3::new(-66_000.0, 0.0, 0.0),
        Point3::new(-66_000.0, -12.0, 0.0),
        Point3::new(65_504.0, 0.0, 0.0),  // largest finite f16
        Point3::new(65_520.0, 0.0, 0.0),  // rounds to ∞
        Point3::new(1.0e20, 1.0e20, 0.0), // deep overflow
    ];
    // Plus some well-behaved points so the tree has mixed leaves.
    cloud.extend(lane_cloud(50));

    for (q, r, label) in [
        (Point3::new(66_000.0, 0.0, 0.0), 15.0, "hits both saturated"),
        (Point3::new(66_000.0, 0.0, 0.0), 5.0, "hits one saturated"),
        (
            Point3::new(-66_000.0, 0.0, 0.0),
            20.0,
            "negative saturation",
        ),
        (Point3::new(65_504.0, 0.0, 0.0), 20.0, "finite-f16 boundary"),
        (Point3::new(0.0, 0.0, 0.0), 10.0, "normal region untouched"),
        (Point3::new(1.0e20, 1.0e20, 0.0), 1.0, "deep-overflow site"),
    ] {
        pin_all_modes(&cloud, q, r, label);
    }

    // The saturated points really do exercise the fallback: a Bonsai
    // search around them must recompute at least one point.
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let (_, stats) = instrumented_search(
        &tree,
        TreeMode::Bonsai,
        Point3::new(66_000.0, 0.0, 0.0),
        15.0,
    );
    assert!(
        stats.fallbacks > 0,
        "saturation did not hit the shell fallback"
    );
}

/// Degenerate clouds through the router with more shards than distinct
/// coordinates: median-cut over identical points must still terminate
/// and partition cleanly.
#[test]
fn identical_points_shard_cleanly() {
    let p = Point3::new(1.0, 2.0, 3.0);
    let cloud = vec![p; 64];
    for shards in [1, 4, 64, 200] {
        let router = ShardRouter::bonsai(
            &cloud,
            KdTreeConfig::default(),
            ShardConfig::with_shards(shards),
        );
        assert_eq!(router.num_points(), 64);
        assert_eq!(router.shard_sizes().sum::<usize>(), 64);
        let mut batch = QueryBatch::new();
        router.search_batch(&[p], 0.25, &mut batch);
        assert_eq!(batch.results(0).len(), 64, "K={shards}");
        // Canonical order: ascending global index.
        let idx: Vec<u32> = batch.results(0).iter().map(|n| n.index).collect();
        assert_eq!(idx, (0..64).collect::<Vec<u32>>(), "K={shards}");
    }
}

// ---------------------------------------------------------------------------
// Degenerate mutations (the incremental-update guards).
// ---------------------------------------------------------------------------

/// Non-finite inserts are rejected by every mutation entry point —
/// tree, compressed tree, and router — without growing any state.
#[test]
fn non_finite_inserts_are_rejected_everywhere() {
    let cloud = lane_cloud(200);
    let mut sim = SimEngine::disabled();
    let mut tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let mut router =
        ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(3));
    for p in [
        Point3::new(f32::NAN, 0.0, 0.0),
        Point3::new(0.0, f32::INFINITY, 0.0),
        Point3::new(0.0, 0.0, f32::NEG_INFINITY),
        Point3::new(f32::NAN, f32::NAN, f32::NAN),
    ] {
        assert!(tree.insert(&mut sim, p).is_none(), "{p:?} into tree");
        assert!(router.insert(p).is_none(), "{p:?} into router");
    }
    assert!(
        !tree.has_pending_rebake(),
        "rejected inserts dirtied leaves"
    );
    assert_eq!(tree.kd_tree().points().len(), 200);
    assert_eq!(router.num_points(), 200);
    // The accepted path still works afterwards.
    let idx = tree.insert(&mut sim, Point3::new(0.5, 0.5, 0.5)).unwrap();
    tree.commit(&mut sim);
    assert_eq!(idx, 200);
}

/// Deleting a nonexistent index is a no-op with zero traversal: no
/// simulated events, no stats, no dirty leaves.
#[test]
fn nonexistent_deletes_are_no_ops_with_zero_traversal() {
    let cloud = lane_cloud(150);
    let mut sim = SimEngine::new(&kd_bonsai::sim::CpuConfig::a72_like());
    let mut tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let before = sim.totals().micro_ops();
    assert!(!tree.delete(&mut sim, 150), "out-of-range index");
    assert!(!tree.delete(&mut sim, u32::MAX));
    assert_eq!(sim.totals().micro_ops(), before, "no-op delete did work");
    assert!(!tree.has_pending_rebake());

    assert!(tree.delete(&mut sim, 3), "live index deletes");
    assert!(
        !tree.delete(&mut sim, 3),
        "second delete of the same index is a no-op"
    );
    tree.commit(&mut sim);

    let mut router =
        ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
    assert!(!router.delete(150));
    assert!(router.delete(7));
    assert!(!router.delete(7));
    assert_eq!(router.num_points(), 149);
}

/// Updating an empty tree behaves like a build: the same searches
/// succeed, all three modes stay pinned to each other, and the
/// compressed state is fully baked.
#[test]
fn update_on_empty_tree_behaves_like_build() {
    let cloud = lane_cloud(120);
    let mut sim = SimEngine::disabled();
    let mut grown = BonsaiTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
    let inserted = grown.update(&mut sim, &cloud, &[]);
    assert_eq!(inserted, (0..120).collect::<Vec<u32>>());
    assert!(!grown.has_pending_rebake());

    let built = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    for (qi, &q) in cloud.iter().step_by(11).enumerate() {
        for r in [0.05f32, 0.8, 5.0] {
            let got = sorted_indices(&grown.radius_search_simple(q, r));
            let expect = sorted_indices(&built.radius_search_simple(q, r));
            assert_eq!(got, expect, "query {qi} r {r}");
            let base = sorted_indices(&grown.kd_tree().radius_search_simple(q, r));
            assert_eq!(got, base, "query {qi} r {r}: modes diverge");
        }
    }

    // Degenerate radii stay rejected on a grown tree too.
    for r in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
        assert!(
            grown.radius_search_simple(cloud[0], r).is_empty(),
            "radius {r}"
        );
    }

    // The empty-router twin: point-by-point growth from nothing.
    let mut router = ShardRouter::bonsai(&[], KdTreeConfig::default(), ShardConfig::with_shards(3));
    let ids = router.apply_update(&cloud, &[]);
    assert_eq!(ids.len(), 120);
    let mut scratch = SearchScratch::new();
    let mut out = Vec::new();
    let mut stats = SearchStats::default();
    router.search_one(cloud[60], 0.8, &mut scratch, &mut out, &mut stats);
    let expect = {
        let mut v = built.radius_search_simple(cloud[60], 0.8);
        v.sort_unstable_by_key(|n| n.index);
        v
    };
    assert_eq!(out, expect, "router grown from empty diverges");
}

/// Deleting every point, then inserting again: the hollowed-out tree
/// keeps every mode consistent and the compressed directory clean.
#[test]
fn full_deletion_then_reinsertion_stays_consistent() {
    let cloud = lane_cloud(90);
    let mut sim = SimEngine::disabled();
    let mut tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let removed: Vec<u32> = (0..90).collect();
    tree.update(&mut sim, &[], &removed);
    assert_eq!(tree.kd_tree().num_live(), 0);
    for r in [0.5f32, 100.0] {
        assert!(tree.radius_search_simple(cloud[0], r).is_empty());
        assert!(tree.kd_tree().radius_search_simple(cloud[0], r).is_empty());
    }
    let p = Point3::new(2.0, 2.0, 0.5);
    let idx = tree.update(&mut sim, &[p], &[])[0];
    let hits = tree.radius_search_simple(p, 0.1);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].index, idx);
}
