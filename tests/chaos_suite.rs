//! Seeded chaos property suite (`--features chaos`).
//!
//! Every fault the [`FaultPlan`] can inject is either **caught** by
//! the deep invariant auditor (state faults, each mapping to its
//! contracted violation kind) or **provably harmless** (frame faults:
//! the streaming stack's output over a mangled frame equals a clean
//! rebuild over the same mangled frame). Quarantine-and-rebuild
//! healing then restores bit-identical serving. Every assertion
//! carries the seed that reproduces it.

use kd_bonsai::cluster::{
    extract_euclidean_clusters_batched, AuditPolicy, ClusterParams, PipelineError,
    StreamingExtractor, StreamingPipeline, TreeMode,
};
use kd_bonsai::core::{FaultKind, FaultPlan, ShardPolicy};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::{KdTreeConfig, QueryBatch};
use kd_bonsai::lidar::{DrivingSequence, SequenceConfig};

fn blob(center: Point3, n: usize, spread: f32, seed: u64) -> Vec<Point3> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
    };
    (0..n)
        .map(|_| center + Point3::new(next(), next(), next()) * spread)
        .collect()
}

fn scene(shift: f32, seed: u64) -> Vec<Point3> {
    let mut pts = blob(Point3::new(5.0 + shift, 0.0, 1.0), 130, 0.8, 1);
    pts.extend(blob(Point3::new(12.0 + shift, 6.0, 1.0), 90, 0.7, 2));
    pts.extend(blob(Point3::new(-8.0, -4.0 + shift, 1.0), 140, 0.9, seed));
    pts
}

/// A streaming stack that has seen real churn: three frames, so the
/// shards carry garbage slots, re-baked leaves and directory state —
/// the state the auditor must certify.
fn churned_extractor(seed: u64) -> StreamingExtractor {
    let mut ex = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 3);
    for frame in 0..3 {
        ex.ingest_frame(&scene(frame as f32 * 0.5, seed + frame));
    }
    ex
}

/// Cluster sets normalized to member-coordinate multisets, so outputs
/// with different index spaces compare.
fn coord_clusters(points: impl Fn(u32) -> Point3, clusters: &[Vec<u32>]) -> Vec<Vec<[u32; 3]>> {
    let mut out: Vec<Vec<[u32; 3]>> = clusters
        .iter()
        .map(|c| {
            let mut v: Vec<[u32; 3]> = c
                .iter()
                .map(|&i| {
                    let p = points(i);
                    [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]
                })
                .collect();
            v.sort_unstable();
            v
        })
        .collect();
    out.sort_unstable();
    out
}

/// The acceptance matrix: one seeded fault per state class, against a
/// churned streaming stack — the auditor must report at least one
/// violation of the contracted kind, every time.
#[test]
fn every_state_fault_class_is_audit_detected() {
    for seed in [1u64, 7, 42] {
        for kind in FaultKind::STATE {
            let mut ex = churned_extractor(seed);
            let before = ex.audit();
            assert!(
                before.is_empty(),
                "seed {seed} {kind:?}: stack dirty before injection: {before:?}"
            );
            let mut plan = FaultPlan::new(seed);
            let site = ex.chaos_inject(&mut plan, kind);
            assert!(site.is_some(), "seed {seed} {kind:?}: no applicable site");
            let want = kind.expected_violation().unwrap();
            let found = ex.audit();
            assert!(
                found.iter().any(|v| v.kind == want),
                "seed {seed} {kind:?}: expected a {want} violation, audit found {found:?}"
            );
        }
    }
}

/// Quarantine-and-rebuild: after any state fault, `heal` quarantines
/// the implicated shards, rebuilds them from the authoritative
/// coordinates, and the stack serves **bit-identical** clusters (in
/// the same global index space) to a never-corrupted twin, with full
/// coverage.
#[test]
fn heal_restores_bit_identical_serving() {
    for seed in [3u64, 19] {
        for kind in FaultKind::STATE {
            let clean = churned_extractor(seed);
            let mut ex = churned_extractor(seed);
            let mut plan = FaultPlan::new(seed);
            assert!(
                ex.chaos_inject(&mut plan, kind).is_some(),
                "seed {seed} {kind:?}: no applicable site"
            );
            let report = ex.heal();
            assert!(
                !report.violations.is_empty(),
                "seed {seed} {kind:?}: heal saw nothing to fix"
            );
            assert!(
                !report.rebuilt.is_empty(),
                "seed {seed} {kind:?}: heal rebuilt nothing"
            );
            assert!(
                report.clean,
                "seed {seed} {kind:?}: corruption survived the heal: {:?}",
                report.violations
            );
            assert!(
                ex.audit().is_empty(),
                "seed {seed} {kind:?}: post-heal audit"
            );

            let healed = ex.extract(0.5, 1, 100_000);
            let expect = clean.extract(0.5, 1, 100_000);
            assert!(healed.coverage.complete, "seed {seed} {kind:?}: coverage");
            assert_eq!(
                healed.clusters, expect.clusters,
                "seed {seed} {kind:?}: healed clusters diverge from the clean twin"
            );
        }
    }
}

/// A healing no-op is free: on a certified stack, `heal` reports clean
/// and rebuilds nothing.
#[test]
fn heal_is_a_noop_on_a_certified_stack() {
    let mut ex = churned_extractor(5);
    let report = ex.heal();
    assert!(report.clean && report.violations.is_empty() && report.rebuilt.is_empty());
}

/// While a shard is quarantined, serving continues **partial**: its
/// points neither seed nor join clusters and the output's coverage
/// names the offline region; healing re-admits it.
#[test]
fn quarantined_shards_serve_partial_results_with_coverage() {
    let seed = 11u64;
    let mut ex = churned_extractor(seed);
    let full = ex.extract(0.5, 1, 100_000);
    assert!(full.coverage.complete);

    ex.chaos_router_mut().quarantine(0);
    let partial = ex.extract(0.5, 1, 100_000);
    assert!(
        !partial.coverage.complete,
        "seed {seed}: coverage still complete"
    );
    assert_eq!(partial.coverage.offline.len(), 1, "seed {seed}");
    let full_points: usize = full.clusters.iter().map(|c| c.len()).sum();
    let partial_points: usize = partial.clusters.iter().map(|c| c.len()).sum();
    assert!(
        partial_points < full_points,
        "seed {seed}: quarantine removed no points from serving \
         ({partial_points} vs {full_points})"
    );
    // No cluster may touch the offline shard.
    for c in &partial.clusters {
        for &g in c {
            let s = ex.router().shard_of(g).unwrap();
            assert_ne!(
                s, 0,
                "seed {seed}: cluster member {g} served from the offline shard"
            );
        }
    }

    let report = ex.heal();
    assert!(
        report.clean && report.rebuilt.contains(&0),
        "seed {seed}: {report:?}"
    );
    let healed = ex.extract(0.5, 1, 100_000);
    assert!(healed.coverage.complete, "seed {seed}");
    assert_eq!(
        healed.clusters, full.clusters,
        "seed {seed}: re-admission changed serving"
    );
}

/// Frame faults (drop / duplicate / reorder) are harmless by
/// construction: the streaming stack over a mangled frame matches a
/// from-scratch rebuild over the same mangled frame, and the audit
/// stays clean.
#[test]
fn frame_faults_are_harmless() {
    for seed in [2u64, 23] {
        for kind in FaultKind::FRAME {
            let mut plan = FaultPlan::new(seed);
            let mut ex = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 3);
            ex.ingest_frame(&scene(0.0, seed));
            let mut frame = scene(0.4, seed + 1);
            plan.mangle_frame(kind, &mut frame);
            ex.ingest_frame(&frame);
            assert_eq!(ex.num_live(), frame.len(), "seed {seed} {kind:?}");
            let audit = ex.audit();
            assert!(audit.is_empty(), "seed {seed} {kind:?}: audit: {audit:?}");

            let streamed = ex.extract(0.5, 1, 100_000);
            let fresh = extract_euclidean_clusters_batched(
                frame.clone(),
                0.5,
                1,
                100_000,
                KdTreeConfig::default(),
                TreeMode::Bonsai,
            );
            assert_eq!(
                coord_clusters(|g| ex.point(g), &streamed.clusters),
                coord_clusters(|i| frame[i as usize], &fresh.clusters),
                "seed {seed} {kind:?}: mangled frame served differently than a clean rebuild"
            );
        }
    }
}

/// The acceptance soak: 50 frames with a state fault injected and
/// healed every few frames. Serving must stay bit-identical (as
/// point multisets) to a from-scratch rebuild of every frame, with
/// full coverage throughout.
#[test]
fn fifty_frame_chaos_soak_with_healing_matches_clean_rebuilds() {
    let seed = 0x00C0_FFEE_u64;
    let mut plan = FaultPlan::new(seed);
    let mut ex = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 3);
    let mut injected = 0usize;
    for frame_idx in 0..50u64 {
        let frame = scene((frame_idx % 9) as f32 * 0.6, seed + frame_idx % 4);
        ex.ingest_frame(&frame);
        if frame_idx % 5 == 3 {
            let kind = plan.pick(&FaultKind::STATE);
            if ex.chaos_inject(&mut plan, kind).is_some() {
                injected += 1;
                let report = ex.heal();
                assert!(
                    report.clean,
                    "seed {seed} frame {frame_idx} {kind:?}: heal failed: {:?}",
                    report.violations
                );
            }
        }
        let streamed = ex.extract(0.5, 1, 100_000);
        assert!(streamed.coverage.complete, "seed {seed} frame {frame_idx}");
        let fresh = extract_euclidean_clusters_batched(
            frame.clone(),
            0.5,
            1,
            100_000,
            KdTreeConfig::default(),
            TreeMode::Bonsai,
        );
        assert_eq!(
            coord_clusters(|g| ex.point(g), &streamed.clusters),
            coord_clusters(|i| frame[i as usize], &fresh.clusters),
            "seed {seed} frame {frame_idx}: soak diverged from clean rebuild"
        );
    }
    assert!(injected >= 8, "seed {seed}: only {injected} faults landed");
}

/// The pipeline's `Result` boundary: a degenerate tolerance is an
/// error (never a panic), and an `EveryFrame` audit policy detects
/// and heals corruption injected between frames — the served results
/// match an uncorrupted twin exactly.
#[test]
fn pipeline_audit_policy_heals_between_frames() {
    let seq = DrivingSequence::new(SequenceConfig::small_test());
    let seed = 77u64;

    let bad = ClusterParams {
        tolerance: -1.0,
        ..ClusterParams::default()
    };
    let mut broken = StreamingPipeline::new(bad, TreeMode::Bonsai);
    assert!(matches!(
        broken.try_process_frame(&seq.frame(0)),
        Err(PipelineError::DegenerateTolerance(_))
    ));

    let mut plan = FaultPlan::new(seed);
    let mut chaotic = StreamingPipeline::new(ClusterParams::default(), TreeMode::Bonsai);
    chaotic.set_audit_policy(AuditPolicy::EveryFrame);
    let mut clean = StreamingPipeline::new(ClusterParams::default(), TreeMode::Bonsai);
    for frame_idx in 0..4 {
        let frame = seq.frame(frame_idx);
        let expect = clean.process_frame(&frame);
        let got = chaotic
            .try_process_frame(&frame)
            .unwrap_or_else(|e| panic!("seed {seed} frame {frame_idx}: {e}"));
        assert_eq!(
            got.output.clusters, expect.output.clusters,
            "seed {seed} frame {frame_idx}"
        );
        assert_eq!(got.boxes, expect.boxes, "seed {seed} frame {frame_idx}");
        assert!(
            got.output.coverage.complete,
            "seed {seed} frame {frame_idx}"
        );
        // Corrupt the live index between frames; the next frame's
        // policy audit must catch and heal it.
        let kind = plan.pick(&FaultKind::STATE);
        chaotic.chaos_extractor_mut().chaos_inject(&mut plan, kind);
    }
}

/// Split/merge under fault: two twins driven through identical
/// hot-spot adapt schedules adopt the same post-split topology; a
/// state fault injected into one is then healed, and the healed stack
/// must certify clean, keep accepting adapt steps, and serve clusters
/// bit-identical to the never-corrupted twin (split and merge keep
/// global indices stable, so the comparison is exact, not normalized).
#[test]
fn adapted_topology_heals_to_bit_identical_serving() {
    let policy = ShardPolicy {
        min_split_points: 16,
        min_queries: 8.0,
        split_ratio: 1.2,
        merge_ratio: 0.4,
        max_shards: 8,
        ..ShardPolicy::default()
    };
    for seed in [9u64, 31] {
        for kind in FaultKind::STATE {
            let mut clean = churned_extractor(seed);
            let mut ex = churned_extractor(seed);
            // The policy reads only observed counters, which are
            // deterministic for equal modes and equal query streams —
            // so equal schedules give equal decisions.
            let hot_at = ex
                .live_indices()
                .next()
                .expect("churned stack has live points");
            let hot = [ex.point(hot_at); 24];
            for _ in 0..4 {
                for twin in [&mut clean, &mut ex] {
                    let mut b = QueryBatch::new();
                    twin.router().search_batch(&hot, 0.8, &mut b);
                    twin.maybe_adapt(&policy, 0);
                }
            }
            let a = clean.router().load_report();
            let b = ex.router().load_report();
            assert_eq!(
                (a.splits, a.merges),
                (b.splits, b.merges),
                "seed {seed} {kind:?}: twin adapt schedules diverged"
            );
            assert!(
                a.splits + a.merges > 0,
                "seed {seed} {kind:?}: the hot-spot schedule never adapted"
            );

            let mut plan = FaultPlan::new(seed);
            assert!(
                ex.chaos_inject(&mut plan, kind).is_some(),
                "seed {seed} {kind:?}: no applicable site"
            );
            let report = ex.heal();
            assert!(
                report.clean,
                "seed {seed} {kind:?}: heal failed on adapted topology: {:?}",
                report.violations
            );
            // The healed stack keeps adapting cleanly (rebuilt shards
            // may have reset counters, so the twins' topologies are
            // free to diverge from here — served results must not).
            ex.maybe_adapt(&policy, 0);
            clean.maybe_adapt(&policy, 0);
            assert!(
                ex.audit().is_empty(),
                "seed {seed} {kind:?}: post-heal adapt dirtied the stack"
            );

            let healed = ex.extract(0.5, 1, 100_000);
            let expect = clean.extract(0.5, 1, 100_000);
            assert!(healed.coverage.complete, "seed {seed} {kind:?}: coverage");
            assert_eq!(
                healed.clusters, expect.clusters,
                "seed {seed} {kind:?}: healed clusters diverge from the clean twin"
            );
        }
    }
}
