//! Property-based integration test: the whole stack (LiDAR frame →
//! preprocessing → compressed tree → clustering) yields identical output
//! for baseline and Bonsai on randomized scenes — the paper's safety
//! guarantee, checked at system level rather than per search.

use kd_bonsai::cluster::{extract_euclidean_clusters, TreeMode};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::KdTreeConfig;
use kd_bonsai::sim::SimEngine;
use proptest::prelude::*;

/// Random multi-blob scenes: cluster-friendly structure plus noise.
fn arb_scene() -> impl Strategy<Value = Vec<Point3>> {
    let blob = (
        (-40.0f32..40.0, -40.0f32..40.0),
        prop::collection::vec((-1.0f32..1.0, -1.0f32..1.0, 0.0f32..2.0), 8..60),
    )
        .prop_map(|((cx, cy), offsets)| {
            offsets
                .into_iter()
                .map(move |(dx, dy, z)| Point3::new(cx + dx, cy + dy, z))
                .collect::<Vec<_>>()
        });
    prop::collection::vec(blob, 1..6).prop_map(|blobs| blobs.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clustering_is_mode_invariant(
        scene in arb_scene(),
        tolerance in 0.2f32..1.5,
        leaf in 4usize..=16,
        min_size in 1usize..20,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut outputs = Vec::new();
        for mode in [TreeMode::Baseline, TreeMode::Bonsai] {
            let mut sim = SimEngine::disabled();
            let out = extract_euclidean_clusters(
                &mut sim,
                scene.clone(),
                tolerance,
                min_size,
                100_000,
                cfg,
                mode,
            );
            outputs.push(out.clusters);
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
    }
}
