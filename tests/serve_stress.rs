//! Seeded multi-threaded serving stress: submitter threads hammer a
//! `bonsai-serve` executor while a churn thread mutates the router and
//! publishes epochs, with debug assertions armed in CI. Every accepted
//! answer must be the stop-the-world answer of the epoch it reports;
//! every rejection must be a typed admission error. Deterministic per
//! seed: set `STRESS_SEED=<n>` to replay a failure — every assertion
//! message carries the seed that produced it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;

use kd_bonsai::core::{EpochPublisher, RouterSnapshot, ShardConfig, ShardRouter};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::{KdTreeConfig, SearchScratch, SearchStats};
use kd_bonsai::serve::{QueryResult, ServeConfig, ServeError, Server};

fn stress_seed() -> u64 {
    std::env::var("STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_BA5E_0001)
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn unit(&mut self) -> f32 {
        (self.next_u64() >> 11) as f32 / (1u64 << 53) as f32
    }
    fn point(&mut self) -> Point3 {
        Point3::new(
            (self.unit() - 0.5) * 80.0,
            (self.unit() - 0.5) * 80.0,
            self.unit() * 3.0,
        )
    }
}

/// Submitters race the churn thread; every served answer is checked
/// against the stop-the-world reference of the epoch it reports.
#[test]
fn concurrent_serving_under_churn_is_epoch_consistent() {
    let seed = stress_seed();
    let mut rng = XorShift::new(seed);
    let cloud: Vec<Point3> = (0..2000).map(|_| rng.point()).collect();
    let mut router =
        ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
    let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
    let server = Server::new(
        Arc::clone(&publisher),
        ServeConfig {
            queue_capacity: 4096,
            max_batch: 32,
        },
    );

    // Epoch id → the snapshot as published, recorded by the churn
    // thread for post-hoc verification.
    let ledger: Mutex<HashMap<u64, RouterSnapshot>> = Mutex::new(HashMap::new());
    ledger.lock().expect("ledger").insert(0, router.snapshot());
    let radius = 1.1f32;

    const SUBMITTERS: usize = 4;
    const QUERIES_PER_THREAD: usize = 150;
    const CHURN_ROUNDS: usize = 10;

    let server_ref = &server;
    let ledger_ref = &ledger;
    let cloud_ref = &cloud;
    let answered: Vec<Vec<(Point3, QueryResult)>> = thread::scope(|s| {
        let churn = s.spawn(move || {
            let mut rng = XorShift::new(seed ^ 0xC0DE);
            for round in 0..CHURN_ROUNDS {
                for _ in 0..50 {
                    let g = (rng.next_u64() % 2000) as u32;
                    router.delete(g);
                }
                let fresh: Vec<Point3> = (0..30).map(|_| rng.point()).collect();
                router.apply_update(&fresh, &[]);
                router.commit();
                if round % 3 == 2 {
                    let shard = (rng.next_u64() as usize) % router.num_shards().max(1);
                    router.rebuild_shard(shard);
                }
                let snap = router.snapshot();
                let id = publisher.publish(snap.clone());
                ledger_ref.lock().expect("ledger").insert(id, snap);
                thread::yield_now();
            }
        });
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                s.spawn(move || {
                    let mut rng = XorShift::new(seed ^ (t as u64 + 1) << 17);
                    let mut got = Vec::new();
                    for k in 0..QUERIES_PER_THREAD {
                        let q = if rng.unit() < 0.8 {
                            cloud_ref[(rng.next_u64() as usize) % cloud_ref.len()]
                        } else {
                            rng.point()
                        };
                        match server_ref.radius_query(q, radius) {
                            Ok(result) => got.push((q, result)),
                            Err(err) => panic!(
                                "seed {seed}: thread {t} query {k} failed with {err:?} \
                                 (capacity 4096 should never reject this load)"
                            ),
                        }
                    }
                    got
                })
            })
            .collect();
        let answered = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("seed {seed}: submitter panicked"))
            })
            .collect();
        churn
            .join()
            .unwrap_or_else(|_| panic!("seed {seed}: churn thread panicked"));
        answered
    });

    // Verify: every answer equals the stop-the-world answer of the
    // epoch it reports.
    let ledger = ledger.into_inner().expect("ledger");
    let mut scratch = SearchScratch::new();
    let mut checked = 0usize;
    for (q, result) in answered.into_iter().flatten() {
        let snap = ledger.get(&result.epoch).unwrap_or_else(|| {
            panic!(
                "seed {seed}: served epoch {} was never published",
                result.epoch
            )
        });
        let mut expect = Vec::new();
        let mut stats = SearchStats::default();
        snap.search_one(q, radius, &mut scratch, &mut expect, &mut stats);
        assert_eq!(
            result.neighbors, expect,
            "seed {seed}: epoch {} answer diverged from stop-the-world",
            result.epoch
        );
        checked += 1;
    }
    assert_eq!(checked, SUBMITTERS * QUERIES_PER_THREAD, "seed {seed}");
    let metrics = server.metrics();
    assert_eq!(metrics.served, checked as u64, "seed {seed}: {metrics:?}");
    assert_eq!(metrics.rejected, 0, "seed {seed}: {metrics:?}");
}

/// A tiny queue under many submitters: every failure is the typed
/// `Overloaded` (admission, not a panic or a hang), every admitted
/// request is answered, and the counters add up.
#[test]
fn admission_control_backpressure_is_typed_and_lossless() {
    let seed = stress_seed();
    let mut rng = XorShift::new(seed ^ 0xADA15510);
    let cloud: Vec<Point3> = (0..800).map(|_| rng.point()).collect();
    let router = ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(2));
    let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
    let server = Server::new(
        Arc::clone(&publisher),
        ServeConfig {
            queue_capacity: 8,
            max_batch: 4,
        },
    );

    const SUBMITTERS: usize = 6;
    const TRIES: usize = 120;
    let server_ref = &server;
    let cloud_ref = &cloud;
    let (answered, overloaded): (u64, u64) = thread::scope(|s| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                s.spawn(move || {
                    let mut rng = XorShift::new(seed ^ (0xF00D << t));
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for k in 0..TRIES {
                        let q = cloud_ref[(rng.next_u64() as usize) % cloud_ref.len()];
                        match server_ref.submit(q, 0.9) {
                            Ok(ticket) => {
                                let result = ticket.wait().unwrap_or_else(|e| {
                                    panic!(
                                        "seed {seed}: thread {t} try {k}: admitted \
                                         request failed: {e:?}"
                                    )
                                });
                                assert!(
                                    result.epoch == 0,
                                    "seed {seed}: no churn here, epoch must stay 0"
                                );
                                ok += 1;
                            }
                            Err(ServeError::Overloaded { capacity }) => {
                                assert_eq!(capacity, 8, "seed {seed}");
                                shed += 1;
                                thread::yield_now();
                            }
                            Err(other) => {
                                panic!("seed {seed}: thread {t} try {k}: unexpected {other:?}")
                            }
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("seed {seed}: submitter panicked"))
            })
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    });

    assert_eq!(
        answered + overloaded,
        (SUBMITTERS * TRIES) as u64,
        "seed {seed}: every try must resolve one way"
    );
    assert!(answered > 0, "seed {seed}: nothing was ever admitted");
    let metrics = server.metrics();
    assert_eq!(metrics.served, answered, "seed {seed}: {metrics:?}");
    assert_eq!(metrics.rejected, overloaded, "seed {seed}: {metrics:?}");
    assert!(
        metrics.max_batch_absorbed <= 4,
        "seed {seed}: batch cap ignored: {metrics:?}"
    );
}
