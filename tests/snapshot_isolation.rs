//! Snapshot-isolation property tests: an epoch pinned while the index
//! keeps mutating must answer every query **bit-identically** — same
//! neighbor values, same order, same `SearchStats` — to a
//! stop-the-world engine frozen at that epoch, at every checkpoint,
//! for all three tree modes, through both the sharded
//! [`RouterSnapshot`] epochs the streaming stack publishes and the
//! `Arc`-owning single-tree engines, under whichever SIMD backend the
//! build arm selects (the suite runs on the default and the
//! `--no-default-features` scalar arm alike).
//!
//! This is the tentpole contract of the serving front-end: concurrent
//! reads during mutation are safe *because* a pinned epoch is
//! indistinguishable from having paused the world at publish time.

use std::sync::Arc;

use kd_bonsai::cluster::TreeMode;
use kd_bonsai::core::{
    BonsaiTree, Epoch, EpochPublisher, RadiusSearchEngine, RouterSnapshot, ShardConfig, ShardRouter,
};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::{KdTreeConfig, Neighbor, SearchScratch, SearchStats};
use kd_bonsai::serve::{ServeConfig, Server};
use kd_bonsai::sim::SimEngine;
use proptest::prelude::*;

const MODES: [TreeMode; 3] = [
    TreeMode::Baseline,
    TreeMode::Bonsai,
    TreeMode::SoftwareCodec,
];

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-60.0f32..60.0, -60.0f32..60.0, -3.0f32..3.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        2..max,
    )
}

/// One scripted step: `kind` 0 inserts, 1 deletes, 2 checkpoints
/// (commit + publish + pin), 3 rebuilds a shard, 4 runs the adaptive
/// policy against a hammered hot spot, 5 splits/merges a shard
/// directly; kinds 2–5 all checkpoint afterwards, so every pinned
/// epoch taken *before* a topology change is re-verified against its
/// frozen pre-change answers. `arg` seeds each step's choices.
fn arb_ops(max: usize) -> impl Strategy<Value = Vec<(u8, usize)>> {
    prop::collection::vec((0u8..6, 0usize..10_000), 4..max)
}

fn router_for(mode: TreeMode, cloud: &[Point3], cfg: KdTreeConfig, shards: usize) -> ShardRouter {
    let sc = ShardConfig::with_shards(shards);
    match mode {
        TreeMode::Baseline => ShardRouter::baseline(cloud, cfg, sc),
        TreeMode::Bonsai => ShardRouter::bonsai(cloud, cfg, sc),
        TreeMode::SoftwareCodec => ShardRouter::software_codec(cloud, cfg, sc),
    }
}

/// Exact per-query answers + stats of `snap`, in the snapshot's
/// emitted order (no canonicalization: order is part of the contract).
fn answers(
    snap: &RouterSnapshot,
    queries: &[Point3],
    radius: f32,
    scratch: &mut SearchScratch,
) -> Vec<(Vec<Neighbor>, SearchStats)> {
    queries
        .iter()
        .map(|&q| {
            let mut out = Vec::new();
            let mut stats = SearchStats::default();
            snap.search_one(q, radius, scratch, &mut out, &mut stats);
            (out, stats)
        })
        .collect()
}

/// One pinned epoch and what the world looked like when it was
/// published: the stop-the-world answers recorded at publish time.
struct PinnedCheckpoint {
    epoch: Arc<Epoch<RouterSnapshot>>,
    frozen: Vec<(Vec<Neighbor>, SearchStats)>,
    step: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scripted churn against a mode-matched router; at every
    /// checkpoint the post-commit index is published as an epoch and
    /// pinned, and **every** previously pinned epoch is re-queried and
    /// must still answer exactly as the world stood when it was
    /// published.
    #[test]
    fn pinned_epochs_equal_stop_the_world_under_churn(
        cloud in arb_cloud(90),
        extra in arb_cloud(60),
        ops in arb_ops(28),
        radius in 0.05f32..8.0,
        leaf in 2usize..=16,
        shards in 1usize..=4,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        for mode in MODES {
            let mut router = router_for(mode, &cloud, cfg, shards);
            let publisher = EpochPublisher::new(router.snapshot());
            let mut scratch = SearchScratch::new();
            // Queries: original points (some soon deleted), mutation
            // fodder and an unreachable probe — fixed across epochs so
            // the frozen answers stay comparable.
            let mut queries: Vec<Point3> = cloud.iter().step_by(5).copied().collect();
            queries.extend(extra.iter().step_by(9).copied());
            queries.push(Point3::new(1.0e6, 1.0e6, 1.0e6));

            let mut pinned: Vec<PinnedCheckpoint> = Vec::new();
            let mut next_extra = 0usize;
            for (step, &(kind, arg)) in ops.iter().enumerate() {
                match kind {
                    0 => {
                        let p = extra[(next_extra + arg) % extra.len()];
                        next_extra += 1;
                        router.insert(p);
                    }
                    1 => {
                        if router.num_points() > 1 {
                            // Any historical global index; a dead or
                            // recycled one is a no-op delete.
                            router.delete((arg % cloud.len().max(1)) as u32);
                        }
                    }
                    kind => {
                        router.commit();
                        if kind == 3 && router.num_shards() > 0 {
                            router.rebuild_shard(arg % router.num_shards());
                        }
                        if kind == 4 {
                            // Adaptive checkpoint: hammer one query's
                            // neighborhood so the load profile sees a
                            // hot shard, then let the policy act.
                            // Whatever it decides, every epoch pinned
                            // before this step must not notice.
                            let policy = kd_bonsai::core::ShardPolicy {
                                min_split_points: 8,
                                min_queries: 4.0,
                                split_ratio: 1.2,
                                merge_ratio: 0.4,
                                max_shards: 8,
                                ..kd_bonsai::core::ShardPolicy::default()
                            };
                            let hot = [queries[arg % queries.len()]; 24];
                            let mut b = kd_bonsai::kdtree::QueryBatch::new();
                            for _ in 0..3 {
                                router.search_batch(&hot, radius, &mut b);
                                router.adapt_step(&policy, 0);
                            }
                        }
                        if kind == 5 && router.num_shards() > 0 {
                            // Direct topology surgery: split the
                            // chosen shard at its bounds midpoint, or
                            // merge it with its neighbor. A typed
                            // refusal is fine; pre-surgery pins must
                            // stay bit-identical either way.
                            let s = arg % router.num_shards();
                            if arg % 2 == 0 {
                                let bounds = router.shard_bounds().nth(s);
                                if let Some(aabb) = bounds {
                                    let axis = arg % 3;
                                    let (lo, hi) = match axis {
                                        0 => (aabb.min.x, aabb.max.x),
                                        1 => (aabb.min.y, aabb.max.y),
                                        _ => (aabb.min.z, aabb.max.z),
                                    };
                                    if lo <= hi {
                                        let _ = router.split_shard(s, axis, 0.5 * (lo + hi));
                                    }
                                }
                            } else {
                                let t = (s + 1) % router.num_shards();
                                let _ = router.merge_shards(s, t);
                            }
                        }
                        let id = publisher.publish(router.snapshot());
                        let epoch = publisher.try_pin_epoch(id).expect("just published");
                        prop_assert_eq!(epoch.id(), id);

                        // Stop-the-world reference, recorded *now*.
                        let frozen = answers(epoch.value(), &queries, radius, &mut scratch);
                        // The published epoch must equal the live
                        // router at publish time.
                        let live = answers(&router.snapshot(), &queries, radius, &mut scratch);
                        prop_assert_eq!(&frozen, &live, "mode {:?} step {}: publish skew", mode, step);
                        pinned.push(PinnedCheckpoint { epoch, frozen, step });

                        // Isolation: every older pinned epoch still
                        // answers exactly as its frozen world.
                        for cp in &pinned {
                            let again = answers(cp.epoch.value(), &queries, radius, &mut scratch);
                            prop_assert_eq!(
                                &again, &cp.frozen,
                                "mode {:?}: epoch pinned at step {} drifted by step {}",
                                mode, cp.step, step
                            );
                        }
                    }
                }
            }
            // Retirement bookkeeping: dropping the pins retires every
            // epoch except the publisher's current one.
            let last = publisher.epoch();
            drop(pinned);
            prop_assert_eq!(publisher.live_epochs(), vec![last]);
        }
    }

    /// The same isolation contract through the `Arc`-owning
    /// single-tree engines: a pinned engine epoch built from a cloned
    /// tree keeps answering identically while the source tree mutates,
    /// for all three modes.
    #[test]
    fn pinned_shared_engines_survive_tree_mutation(
        cloud in arb_cloud(80),
        extra in arb_cloud(40),
        radius in 0.05f32..8.0,
        leaf in 2usize..=16,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let mut tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        for mode in MODES {
            let snap = Arc::new(tree.clone());
            let engine = match mode {
                TreeMode::Baseline => {
                    RadiusSearchEngine::shared_baseline(Arc::new(snap.kd_tree().clone()))
                }
                TreeMode::Bonsai => RadiusSearchEngine::shared_bonsai(Arc::clone(&snap)),
                TreeMode::SoftwareCodec => {
                    RadiusSearchEngine::shared_software_codec(Arc::clone(&snap))
                }
            };
            let publisher = EpochPublisher::new(engine);
            let pinnedepoch = publisher.pin();
            let queries: Vec<Point3> = cloud.iter().step_by(7).copied().collect();
            let mut scratch = SearchScratch::new();
            let frozen: Vec<(Vec<Neighbor>, SearchStats)> = queries
                .iter()
                .map(|&q| {
                    let mut out = Vec::new();
                    let mut stats = SearchStats::default();
                    pinnedepoch.value().search_append(q, radius, &mut scratch, &mut out, &mut stats);
                    (out, stats)
                })
                .collect();

            // Mutate the source tree hard; the engine's Arc'd clone
            // must not notice.
            for (i, &p) in extra.iter().enumerate() {
                if i % 3 == 0 {
                    tree.delete(&mut sim, (i % cloud.len()) as u32);
                } else {
                    tree.insert(&mut sim, p);
                }
            }
            tree.commit(&mut sim);
            tree.compact(&mut sim);

            for (i, &q) in queries.iter().enumerate() {
                let mut out = Vec::new();
                let mut stats = SearchStats::default();
                pinnedepoch.value().search_append(q, radius, &mut scratch, &mut out, &mut stats);
                prop_assert_eq!(&out, &frozen[i].0, "mode {:?} query {}: values drifted", mode, i);
                prop_assert_eq!(stats, frozen[i].1, "mode {:?} query {}: stats drifted", mode, i);
            }
        }
    }
}

/// End-to-end isolation through the serving front-end itself: queries
/// served by a `bonsai-serve` executor *while* the router churns and
/// publishes must each match the stop-the-world answers of whichever
/// epoch the server pinned for them — never a torn mix of epochs.
#[test]
fn served_queries_are_isolated_on_their_reported_epoch() {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32
    };
    let cloud: Vec<Point3> = (0..1500)
        .map(|_| Point3::new((next() - 0.5) * 80.0, (next() - 0.5) * 80.0, next() * 3.0))
        .collect();
    let mut router =
        ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
    let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
    let server = Server::new(Arc::clone(&publisher), ServeConfig::default());

    // Keep every epoch's snapshot alive on the side so each served
    // answer can be re-checked against its stop-the-world reference.
    let mut epochs: Vec<RouterSnapshot> = vec![router.snapshot()];
    let queries: Vec<Point3> = cloud.iter().step_by(11).copied().collect();
    let radius = 1.1f32;

    let mut served = Vec::new();
    for round in 0..6 {
        // Serve a wave of queries concurrently with the churn below.
        let tickets: Vec<_> = queries
            .iter()
            .map(|&q| server.submit(q, radius).expect("under capacity"))
            .collect();
        // Churn: delete a band, insert replacements, publish.
        for g in (round * 100)..(round * 100 + 60) {
            router.delete(g as u32);
        }
        let fresh: Vec<Point3> = (0..40)
            .map(|_| Point3::new((next() - 0.5) * 80.0, (next() - 0.5) * 80.0, next() * 3.0))
            .collect();
        router.apply_update(&fresh, &[]);
        router.commit();
        publisher.publish(router.snapshot());
        epochs.push(router.snapshot());
        served.extend(tickets.into_iter().zip(queries.iter().copied()));
    }

    let mut scratch = SearchScratch::new();
    for (ticket, q) in served {
        let got = ticket.wait().expect("served");
        let reference = &epochs[got.epoch as usize];
        let mut expect = Vec::new();
        let mut stats = SearchStats::default();
        reference.search_one(q, radius, &mut scratch, &mut expect, &mut stats);
        assert_eq!(
            got.neighbors, expect,
            "epoch {} answer is not the stop-the-world answer",
            got.epoch
        );
    }
}
