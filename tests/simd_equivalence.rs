//! Property tests for the SIMD lane engine: the vectorized leaf
//! sweeps must be **bit-identical** to the scalar reference path —
//! same `Neighbor` values, same order, same aggregated `SearchStats` —
//! in all three engine modes, on fresh builds *and* across
//! insert/delete churn, with the lane-padding invariant checked after
//! every mutation.
//!
//! The comparison uses the process-wide scalar override
//! (`kdtree::simd::scalar_override`), so a `--features simd` build
//! really runs both paths; a `--no-default-features` build degenerates
//! to scalar-vs-scalar and still validates the layout invariant. Leaf
//! sizes cover every capacity the ZipPts buffer admits (1..=16 — the
//! odd sizes exercise partially-filled tail lanes; 17 is rejected at
//! construction, pinned in `crates/kdtree`'s tests), so lane groups of
//! every fill level run.

use kd_bonsai::core::{BonsaiTree, RadiusSearchEngine};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::simd::{self, LaneBackend};
use kd_bonsai::kdtree::{KdTreeConfig, Neighbor, Node, QueryBatch, SearchScratch, SearchStats};
use kd_bonsai::sim::SimEngine;
use proptest::prelude::*;

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-60.0f32..60.0, -60.0f32..60.0, -3.0f32..3.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        2..max,
    )
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Baseline,
    Bonsai,
    SoftwareCodec,
}

const MODES: [Mode; 3] = [Mode::Baseline, Mode::Bonsai, Mode::SoftwareCodec];

fn engine_for(tree: &BonsaiTree, mode: Mode) -> RadiusSearchEngine<'_> {
    match mode {
        Mode::Baseline => RadiusSearchEngine::baseline(tree.kd_tree()),
        Mode::Bonsai => RadiusSearchEngine::bonsai(tree),
        Mode::SoftwareCodec => RadiusSearchEngine::software_codec(tree),
    }
}

/// Answers every query through `engine`, returning per-query hits and
/// the aggregate stats of the batch path plus a spot-check against
/// `search_one`.
fn run_engine(
    engine: &RadiusSearchEngine<'_>,
    queries: &[Point3],
    radius: f32,
) -> (Vec<Vec<Neighbor>>, SearchStats) {
    let mut batch = QueryBatch::new();
    engine.search_batch(queries, radius, &mut batch);
    let results: Vec<Vec<Neighbor>> = (0..batch.num_queries())
        .map(|i| batch.results(i).to_vec())
        .collect();
    // One direct search per run keeps the single-query path honest.
    if let Some(&q) = queries.first() {
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        engine.search_one(q, radius, &mut scratch, &mut out, &mut stats);
        assert_eq!(out, results[0], "search_one vs batch");
    }
    (results, *batch.stats())
}

/// Asserts SIMD ≡ scalar (bits, order, stats) for every mode on the
/// committed `tree`. `ov` must already be held by the caller so the
/// flip is race-free.
fn assert_simd_equals_scalar(
    ov: &simd::ScalarOverride,
    tree: &BonsaiTree,
    queries: &[Point3],
    radius: f32,
) {
    for mode in MODES {
        let engine = engine_for(tree, mode);
        ov.set(true);
        let (scalar_hits, scalar_stats) = run_engine(&engine, queries, radius);
        ov.set(false);
        let (simd_hits, simd_stats) = run_engine(&engine, queries, radius);
        for (qi, (s, v)) in scalar_hits.iter().zip(&simd_hits).enumerate() {
            assert_eq!(s, v, "{mode:?} query {qi}: SIMD diverged from scalar");
        }
        assert_eq!(scalar_stats, simd_stats, "{mode:?} stats diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Fresh builds: SIMD and scalar sweeps agree bit-for-bit across
    /// every mode, leaf capacity 1..=16 and both split rules' default.
    #[test]
    fn simd_matches_scalar_on_fresh_builds(
        cloud in arb_cloud(300),
        radius in 0.05f32..12.0,
        leaf in 1usize..=16,
    ) {
        let ov = simd::scalar_override();
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        tree.assert_lane_padding();
        let queries: Vec<Point3> = cloud.iter().step_by(3).copied().collect();
        assert_simd_equals_scalar(&ov, &tree, &queries, radius);
    }

    /// Churned trees: after interleaved inserts and deletes (padding
    /// invariant checked after every single mutation) the committed
    /// tree still sweeps identically under SIMD and scalar.
    #[test]
    fn simd_matches_scalar_after_churn(
        cloud in arb_cloud(220),
        extra in arb_cloud(80),
        radius in 0.1f32..8.0,
        leaf in 1usize..=16,
        del_stride in 1usize..7,
    ) {
        let ov = simd::scalar_override();
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let mut tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        for (k, &p) in extra.iter().enumerate() {
            tree.insert(&mut sim, p);
            tree.kd_tree().assert_lane_padding();
            let victim = ((k * del_stride * 13) % cloud.len()) as u32;
            tree.delete(&mut sim, victim);
            tree.kd_tree().assert_lane_padding();
        }
        tree.commit(&mut sim);
        tree.assert_lane_padding();
        let queries: Vec<Point3> = cloud.iter().chain(extra.iter()).step_by(4).copied().collect();
        assert_simd_equals_scalar(&ov, &tree, &queries, radius);
    }
}

/// The per-leaf sweep kernel (`RadiusSearchEngine::sweep_leaf`) — the
/// unit the benches time — is itself backend-independent, leaf by
/// leaf, in both modes.
#[test]
fn sweep_leaf_kernel_is_backend_independent() {
    let cloud: Vec<Point3> = (0..4000)
        .map(|i| {
            let f = i as f32;
            Point3::new(
                (f * 0.37).sin() * 50.0,
                (f * 0.51).cos() * 50.0,
                (f * 0.13).sin() * 2.0,
            )
        })
        .collect();
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let leaves: Vec<u32> = tree
        .kd_tree()
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(id, n)| matches!(n, Node::Leaf { .. }).then_some(id as u32))
        .collect();
    let ov = simd::scalar_override();
    for mode in MODES {
        let engine = engine_for(&tree, mode);
        for &q in &[cloud[17], cloud[2000], Point3::new(0.0, 0.0, 0.0)] {
            for &leaf in &leaves {
                let mut scalar_out = Vec::new();
                let mut scalar_stats = SearchStats::default();
                ov.set(true);
                engine.sweep_leaf(leaf, q, 2.5, &mut scalar_out, &mut scalar_stats);
                let mut simd_out = Vec::new();
                let mut simd_stats = SearchStats::default();
                ov.set(false);
                engine.sweep_leaf(leaf, q, 2.5, &mut simd_out, &mut simd_stats);
                assert_eq!(scalar_out, simd_out, "{mode:?} leaf {leaf}");
                assert_eq!(scalar_stats, simd_stats, "{mode:?} leaf {leaf} stats");
            }
        }
    }
}

/// On x86_64 hosts a `--features simd` build must actually dispatch a
/// vector backend (the equivalence above would otherwise silently test
/// scalar against scalar everywhere).
#[test]
fn simd_feature_activates_a_vector_backend() {
    // Hold the override lock so a concurrent equivalence test can't
    // have the scalar flag forced while we read the backend.
    let _ov = simd::scalar_override();
    if cfg!(all(feature = "simd", target_arch = "x86_64")) {
        assert_ne!(simd::active_backend(), LaneBackend::Scalar);
    } else if !cfg!(feature = "simd") {
        assert_eq!(simd::active_backend(), LaneBackend::Scalar);
    }
}
