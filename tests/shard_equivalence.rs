//! Property tests for the sharded multi-tree `ShardRouter`: for every
//! tree mode (Baseline / Bonsai / SoftwareCodec), random clouds, radii
//! and shard counts (including K=1 and K larger than the point count),
//! the router's per-query neighbor sets are bit-identical to the
//! single-tree `RadiusSearchEngine`'s, its aggregated `SearchStats`
//! equal the sum of independently rebuilt per-shard engines over the
//! routed queries, and queries outside every shard's box do no work.

use kd_bonsai::cluster::TreeMode;
use kd_bonsai::core::{BonsaiTree, RadiusSearchEngine, ShardConfig, ShardRouter};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::{KdTreeConfig, Neighbor, QueryBatch, SearchStats};
use kd_bonsai::sim::SimEngine;
use proptest::prelude::*;

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-60.0f32..60.0, -60.0f32..60.0, -3.0f32..3.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        2..max,
    )
}

fn sorted(mut hits: Vec<Neighbor>) -> Vec<Neighbor> {
    hits.sort_unstable_by_key(|n| n.index);
    hits
}

const MODES: [TreeMode; 3] = [
    TreeMode::Baseline,
    TreeMode::Bonsai,
    TreeMode::SoftwareCodec,
];

fn engine_for<'t>(tree: &'t BonsaiTree, mode: TreeMode) -> RadiusSearchEngine<'t> {
    match mode {
        TreeMode::Baseline => RadiusSearchEngine::baseline(tree.kd_tree()),
        TreeMode::Bonsai => RadiusSearchEngine::bonsai(tree),
        TreeMode::SoftwareCodec => RadiusSearchEngine::software_codec(tree),
    }
}

fn router_for(cloud: &[Point3], cfg: KdTreeConfig, mode: TreeMode, shards: usize) -> ShardRouter {
    let shard_cfg = ShardConfig::with_shards(shards);
    match mode {
        TreeMode::Baseline => ShardRouter::baseline(cloud, cfg, shard_cfg),
        TreeMode::Bonsai => ShardRouter::bonsai(cloud, cfg, shard_cfg),
        TreeMode::SoftwareCodec => ShardRouter::software_codec(cloud, cfg, shard_cfg),
    }
}

/// In-cloud queries plus probes the cloud cannot reach: points far
/// outside every shard's box must route to zero shards.
fn query_set(cloud: &[Point3], stride: usize) -> Vec<Point3> {
    let mut queries: Vec<Point3> = cloud.iter().step_by(stride).copied().collect();
    queries.push(Point3::new(1.0e4, -1.0e4, 1.0e4));
    queries.push(Point3::new(-1.0e4, 1.0e4, -1.0e4));
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// The router's merged, canonically ordered results carry the same
    /// neighbor sets with bit-identical `(index, dist_sq)` values as
    /// the single-tree engine, and its aggregate stats equal the sum of
    /// per-shard engines over the queries routed to each shard.
    #[test]
    fn router_equals_single_tree_engine_all_modes(
        cloud in arb_cloud(220),
        radius in 0.05f32..10.0,
        shards in 1usize..=9,
        leaf in 2usize..=16,
        stride in 1usize..4,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        let queries = query_set(&cloud, stride);
        let r_sq = radius * radius;

        for mode in MODES {
            let engine = engine_for(&tree, mode);
            let router = router_for(&cloud, cfg, mode, shards);
            prop_assert!(router.num_shards() <= shards);
            prop_assert_eq!(router.num_points(), cloud.len());

            let mut single = QueryBatch::new();
            engine.search_batch(&queries, radius, &mut single);
            let mut sharded = QueryBatch::new();
            router.search_batch(&queries, radius, &mut sharded);

            prop_assert_eq!(sharded.num_queries(), single.num_queries());
            for i in 0..single.num_queries() {
                prop_assert_eq!(
                    sharded.results(i),
                    &sorted(single.results(i).to_vec())[..],
                    "{:?} K={} query {}", mode, shards, i
                );
            }

            // Aggregation: rebuild each shard's engine independently
            // from the advertised shard points and re-route by box
            // intersection; the summed stats must match exactly.
            let mut expect_stats = SearchStats::default();
            for (s, bounds) in router.shard_bounds().enumerate() {
                let shard_cloud: Vec<Point3> =
                    router.shard_points(s).iter().map(|&i| cloud[i as usize]).collect();
                let mut sim = SimEngine::disabled();
                let shard_tree = BonsaiTree::build(shard_cloud, cfg, &mut sim);
                let shard_engine = engine_for(&shard_tree, mode);
                let routed: Vec<Point3> = queries
                    .iter()
                    .copied()
                    .filter(|&q| bounds.intersects_ball(q, r_sq))
                    .collect();
                let mut batch = QueryBatch::new();
                shard_engine.search_batch(&routed, radius, &mut batch);
                expect_stats += *batch.stats();
            }
            prop_assert_eq!(*sharded.stats(), expect_stats, "{:?} K={} stats", mode, shards);
        }
    }

    /// K=1 over in-cloud queries degenerates to the single-tree engine
    /// exactly: one shard holds the whole cloud in original order, so
    /// even the traversal counters coincide.
    #[test]
    fn single_shard_router_degenerates_to_the_engine(
        cloud in arb_cloud(200),
        radius in 0.05f32..8.0,
    ) {
        let cfg = KdTreeConfig::default();
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        for mode in MODES {
            let engine = engine_for(&tree, mode);
            let router = router_for(&cloud, cfg, mode, 1);
            prop_assert_eq!(router.num_shards(), 1);

            let mut single = QueryBatch::new();
            engine.search_batch(&cloud, radius, &mut single);
            let mut sharded = QueryBatch::new();
            router.search_batch(&cloud, radius, &mut sharded);

            for i in 0..single.num_queries() {
                prop_assert_eq!(
                    sharded.results(i),
                    &sorted(single.results(i).to_vec())[..],
                    "{:?} query {}", mode, i
                );
            }
            // In-cloud query balls always intersect the lone shard's
            // box (they contain the query point itself), so the router
            // performs exactly the single tree's traversal work.
            prop_assert_eq!(sharded.stats(), single.stats(), "{:?} stats", mode);
        }
    }

    /// More shards than points: every shard holds one point, and the
    /// router still reproduces the single-tree engine.
    #[test]
    fn more_shards_than_points_still_exact(
        cloud in arb_cloud(24),
        radius in 0.5f32..60.0,
    ) {
        let cfg = KdTreeConfig::default();
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        for mode in MODES {
            let engine = engine_for(&tree, mode);
            let router = router_for(&cloud, cfg, mode, 64);
            prop_assert_eq!(router.num_shards(), cloud.len());
            prop_assert!(router.shard_sizes().all(|s| s == 1));

            let mut single = QueryBatch::new();
            engine.search_batch(&cloud, radius, &mut single);
            let mut sharded = QueryBatch::new();
            router.search_batch(&cloud, radius, &mut sharded);
            for i in 0..single.num_queries() {
                prop_assert_eq!(
                    sharded.results(i),
                    &sorted(single.results(i).to_vec())[..],
                    "{:?} query {}", mode, i
                );
            }
        }
    }

    /// The parallel router fan-out changes nothing: same per-query
    /// results, same aggregate stats, for every mode and thread count.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_router_equals_sequential_all_modes(
        cloud in arb_cloud(180),
        radius in 0.05f32..8.0,
        shards in 1usize..=6,
        threads in 2usize..=5,
    ) {
        let cfg = KdTreeConfig::default();
        for mode in MODES {
            let router = router_for(&cloud, cfg, mode, shards);
            let mut sequential = QueryBatch::new();
            router.search_batch(&cloud, radius, &mut sequential);
            let mut parallel = QueryBatch::new();
            router.search_batch_parallel(&cloud, radius, &mut parallel, threads);
            prop_assert_eq!(parallel.num_queries(), sequential.num_queries());
            for i in 0..sequential.num_queries() {
                prop_assert_eq!(
                    parallel.results(i),
                    sequential.results(i),
                    "{:?} K={} threads={} query {}", mode, shards, threads, i
                );
            }
            prop_assert_eq!(parallel.stats(), sequential.stats(), "{:?} stats", mode);
        }
    }
}
