//! Churn-equivalence property tests for the incremental mutation
//! layer: **any** interleaving of inserts, deletes and searches yields
//! neighbor sets bit-identical to a from-scratch rebuild over the same
//! live points — at every checkpoint, for all three tree modes
//! (Baseline / Bonsai / SoftwareCodec), through both the single-tree
//! `RadiusSearchEngine` and the mutated `ShardRouter`, and end-to-end
//! through cluster extraction.
//!
//! The invariant under test is the tentpole contract of the streaming
//! update path: membership and reported `dist_sq` bits depend only on
//! each point's own coordinates (and, under Bonsai, its own f16
//! approximation + error bound), never on the tree shape the mutations
//! produced.

use kd_bonsai::cluster::TreeMode;
use kd_bonsai::core::{BonsaiTree, RadiusSearchEngine, ShardConfig, ShardRouter};
use kd_bonsai::geom::Point3;
use kd_bonsai::kdtree::{KdTreeConfig, Neighbor, SearchScratch, SearchStats};
use kd_bonsai::sim::SimEngine;
use proptest::prelude::*;

const MODES: [TreeMode; 3] = [
    TreeMode::Baseline,
    TreeMode::Bonsai,
    TreeMode::SoftwareCodec,
];

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-60.0f32..60.0, -60.0f32..60.0, -3.0f32..3.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        2..max,
    )
}

/// One scripted step: `kind` 0 inserts, 1 deletes, 2 checkpoints
/// (commit + compare against a fresh rebuild), 3 compacts (commit +
/// full single-tree compaction + a rolling router shard rebuild),
/// 4 adapts (commit + load-driven `adapt_step` on both routers), 5
/// splits or merges directly (commit + a targeted `split_shard` /
/// `merge_shards`); kinds 2–5 all end in the full checkpoint
/// comparison; `arg` seeds the step's choice of point/index/plane.
fn arb_ops(max: usize) -> impl Strategy<Value = Vec<(u8, usize)>> {
    prop::collection::vec((0u8..6, 0usize..10_000), 4..max)
}

fn engine_for<'t>(tree: &'t BonsaiTree, mode: TreeMode) -> RadiusSearchEngine<'t> {
    match mode {
        TreeMode::Baseline => RadiusSearchEngine::baseline(tree.kd_tree()),
        TreeMode::Bonsai => RadiusSearchEngine::bonsai(tree),
        TreeMode::SoftwareCodec => RadiusSearchEngine::software_codec(tree),
    }
}

/// Canonical comparable form: ascending index, exact dist bits.
fn keyed(hits: &[Neighbor]) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = hits
        .iter()
        .map(|n| (n.index, n.dist_sq.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// The compaction acceptance contract, stated directly (the property
/// tests below also imply it by transitivity through fresh rebuilds):
/// after churn + `BonsaiTree::compact`, radius and kNN results **and**
/// `SearchStats` are bit-identical to pre-compaction in all three
/// modes, `garbage_slots()` is zero and the lane-padding invariant
/// holds. Runs under whichever SIMD backend the build/CI arm selects.
#[test]
fn compaction_is_bit_invisible_in_all_three_modes() {
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32
    };
    let cloud: Vec<Point3> = (0..2500)
        .map(|_| Point3::new((next() - 0.5) * 80.0, (next() - 0.5) * 80.0, next() * 3.0))
        .collect();
    let extra: Vec<Point3> = (0..1200)
        .map(|_| Point3::new((next() - 0.5) * 80.0, (next() - 0.5) * 80.0, next() * 3.0))
        .collect();
    let mut sim = SimEngine::disabled();
    let mut tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    for round in 0..4usize {
        for k in 0..300 {
            tree.delete(&mut sim, ((round * 17 + k * 7) % cloud.len()) as u32);
        }
        for k in 0..300 {
            tree.insert(&mut sim, extra[(round * 300 + k) % extra.len()])
                .unwrap();
        }
        tree.commit(&mut sim);
    }
    assert!(tree.kd_tree().garbage_slots() > 0, "churn never fragmented");

    let queries: Vec<Point3> = cloud.iter().step_by(53).copied().collect();
    let mut scratch = SearchScratch::new();
    let mut out = Vec::new();
    let capture = |tree: &BonsaiTree,
                   scratch: &mut SearchScratch,
                   out: &mut Vec<Neighbor>|
     -> Vec<(Vec<Neighbor>, SearchStats)> {
        let mut all = Vec::new();
        for mode in MODES {
            let engine = engine_for(tree, mode);
            for &q in &queries {
                let mut stats = SearchStats::default();
                engine.search_one(q, 1.8, scratch, out, &mut stats);
                all.push((out.clone(), stats));
            }
        }
        let mut sim = SimEngine::disabled();
        for &q in &queries {
            all.push((tree.kd_tree().knn(&mut sim, q, 9), SearchStats::default()));
        }
        all
    };

    let before = capture(&tree, &mut scratch, &mut out);
    let reclaimed = tree.compact(&mut sim);
    assert!(reclaimed > 0);
    assert_eq!(tree.kd_tree().garbage_slots(), 0);
    tree.assert_lane_padding();
    let after = capture(&tree, &mut scratch, &mut out);
    assert_eq!(before.len(), after.len());
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_eq!(b.0, a.0, "capture {i}: hits moved across compaction");
        assert_eq!(b.1, a.1, "capture {i}: stats moved across compaction");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The scripted-churn invariant, single-tree and sharded.
    #[test]
    fn interleaved_mutations_match_fresh_rebuild(
        cloud in arb_cloud(110),
        extra in arb_cloud(70),
        ops in arb_ops(36),
        radius in 0.05f32..8.0,
        leaf in 2usize..=16,
        shards in 1usize..=5,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        // The mutated single tree (covers all three modes: its kd tree
        // serves Baseline, its directory Bonsai/SoftwareCodec)…
        let mut tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        // …and the mutated routers (bonsai also serves software-codec).
        let shard_cfg = ShardConfig::with_shards(shards);
        let mut router_base = ShardRouter::baseline(&cloud, cfg, shard_cfg);
        let mut router_bonsai = ShardRouter::bonsai(&cloud, cfg, shard_cfg);

        let mut next_extra = 0usize;
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut checkpoints = 0usize;
        // The routers recycle global indices retired by shard rebuilds
        // (generation-tagged free list); the single tree always
        // appends. Maintain the correspondence explicitly: it is the
        // identity until the first rebuild retires something. Kept per
        // router because the adaptive policy reads mode-specific load
        // counters, so the two routers' topologies — and with them
        // their recycling index spaces — may legitimately diverge.
        let mut t2r_base: Vec<u32> = (0..cloud.len() as u32).collect();
        let mut r2t_base: Vec<u32> = t2r_base.clone();
        let mut t2r_bonsai: Vec<u32> = t2r_base.clone();
        let mut r2t_bonsai: Vec<u32> = t2r_base.clone();
        for (step, &(kind, arg)) in ops.iter().enumerate() {
            match kind {
                0 => {
                    let p = extra[(next_extra + arg) % extra.len()];
                    next_extra += 1;
                    let a = tree.insert(&mut sim, p);
                    let b = router_base.insert(p);
                    let c = router_bonsai.insert(p);
                    prop_assert_eq!(
                        b.is_some(), c.is_some(), "step {}: the routers disagree", step
                    );
                    prop_assert_eq!(a.is_some(), b.is_some(), "step {}: insert divergence", step);
                    if let Some(ti) = a {
                        let record = |t2r: &mut Vec<u32>, r2t: &mut Vec<u32>, ri: u32| {
                            if ti as usize >= t2r.len() {
                                t2r.resize(ti as usize + 1, u32::MAX);
                            }
                            if ri as usize >= r2t.len() {
                                r2t.resize(ri as usize + 1, u32::MAX);
                            }
                            t2r[ti as usize] = ri;
                            r2t[ri as usize] = ti;
                        };
                        if let Some(ri) = b {
                            record(&mut t2r_base, &mut r2t_base, ri);
                        }
                        if let Some(ri) = c {
                            record(&mut t2r_bonsai, &mut r2t_bonsai, ri);
                        }
                    }
                }
                1 => {
                    let idx = (arg % tree.kd_tree().points().len()) as u32;
                    let a = tree.delete(&mut sim, idx);
                    // Only live points have a current router index (a
                    // dead one's slot may have been recycled), so the
                    // routers are exercised when the tree delete lands.
                    if a {
                        let b = router_base.delete(t2r_base[idx as usize]);
                        let c = router_bonsai.delete(t2r_bonsai[idx as usize]);
                        prop_assert!(b && c, "step {}: delete divergence", step);
                    }
                }
                kind => {
                    checkpoints += 1;
                    tree.commit(&mut sim);
                    router_base.commit();
                    router_bonsai.commit();

                    if kind == 3 {
                        // Compaction point: repack the single tree (all
                        // three layers) and rebuild one router shard,
                        // rolling. Both must be invisible to every
                        // comparison below, and the lane-padding
                        // invariant must hold right after the repack.
                        tree.compact(&mut sim);
                        tree.assert_lane_padding();
                        if router_base.num_shards() > 0 {
                            let s = arg % router_base.num_shards();
                            router_base.rebuild_shard(s);
                            router_bonsai.rebuild_shard(s);
                        }
                    }

                    if kind == 4 {
                        // Adaptive checkpoint: hammer one live
                        // neighborhood so the load profile sees a hot
                        // shard, then run the policy on both routers.
                        // Whatever it decides (split, merge, typed
                        // refusal) must be invisible to every
                        // comparison below.
                        let policy = kd_bonsai::core::ShardPolicy {
                            min_split_points: 8,
                            min_queries: 4.0,
                            split_ratio: 1.2,
                            merge_ratio: 0.4,
                            max_shards: 8,
                            ..kd_bonsai::core::ShardPolicy::default()
                        };
                        let live: Vec<u32> = tree.kd_tree().live_indices().collect();
                        if !live.is_empty() {
                            let hot_at = live[arg % live.len()];
                            let hot = tree.kd_tree().points()[hot_at as usize];
                            let hot_queries = [hot; 24];
                            let mut b = kd_bonsai::kdtree::QueryBatch::new();
                            for _ in 0..3 {
                                router_base.search_batch(&hot_queries, radius, &mut b);
                                router_bonsai.search_batch(&hot_queries, radius, &mut b);
                                router_base.adapt_step(&policy, 0);
                                router_bonsai.adapt_step(&policy, 0);
                            }
                        }
                    }

                    if kind == 5 {
                        // Direct topology surgery, per engine: split
                        // the chosen shard through its own point
                        // median (or merge it with its neighbor). The
                        // two routers may have diverged topologically
                        // after kind-4 adapt checkpoints (their load
                        // counters legitimately differ by mode), so
                        // each operates on its own layout and the
                        // accept/refuse outcome is free — only the
                        // result comparisons below must not notice.
                        let surgery = |router: &mut ShardRouter, r2t: &[u32]| {
                            if router.num_shards() == 0 {
                                return;
                            }
                            let s = arg % router.num_shards();
                            if arg % 2 == 0 {
                                let axis = arg % 3;
                                let coord = |p: Point3| match axis {
                                    0 => p.x,
                                    1 => p.y,
                                    _ => p.z,
                                };
                                // The shard's member coordinates, read
                                // back through the router→tree map.
                                let mut c: Vec<f32> = router
                                    .shard_points(s)
                                    .iter()
                                    .filter_map(|&g| r2t.get(g as usize))
                                    .filter(|&&t| t != u32::MAX)
                                    .map(|&t| coord(tree.kd_tree().points()[t as usize]))
                                    .collect();
                                if !c.is_empty() {
                                    c.sort_unstable_by(f32::total_cmp);
                                    let plane = c[c.len() / 2];
                                    let _ = router.split_shard(s, axis, plane);
                                }
                            } else {
                                let t = (s + 1) % router.num_shards();
                                let _ = router.merge_shards(s, t);
                            }
                        };
                        surgery(&mut router_base, &r2t_base);
                        surgery(&mut router_bonsai, &r2t_bonsai);
                    }

                    // Deep-audit checkpoint: every commit, compaction
                    // and shard rebuild must leave the full invariant
                    // web certified.
                    let audit = tree.audit();
                    prop_assert!(audit.is_empty(), "step {}: tree audit: {:?}", step, audit);
                    let audit = router_base.audit();
                    prop_assert!(audit.is_empty(), "step {}: baseline router audit: {:?}", step, audit);
                    let audit = router_bonsai.audit();
                    prop_assert!(audit.is_empty(), "step {}: bonsai router audit: {:?}", step, audit);

                    let live: Vec<u32> = tree.kd_tree().live_indices().collect();
                    prop_assert_eq!(live.len(), tree.kd_tree().num_live());
                    prop_assert_eq!(live.len(), router_base.num_points());
                    prop_assert_eq!(live.len(), router_bonsai.num_points());
                    let live_pts: Vec<Point3> =
                        live.iter().map(|&i| tree.kd_tree().points()[i as usize]).collect();
                    let fresh = BonsaiTree::build(live_pts.clone(), cfg, &mut sim);

                    // Queries: live points, a recently deleted point's
                    // coordinates, and an unreachable probe.
                    let mut queries: Vec<Point3> =
                        live_pts.iter().step_by(7).copied().collect();
                    queries.push(extra[arg % extra.len()]);
                    queries.push(Point3::new(1.0e4, -1.0e4, 1.0e4));

                    for mode in MODES {
                        let engine = engine_for(&tree, mode);
                        let fresh_engine = engine_for(&fresh, mode);
                        let (router, r2t) = match mode {
                            TreeMode::Baseline => (&router_base, &r2t_base),
                            _ => (&router_bonsai, &r2t_bonsai),
                        };
                        for (qi, &q) in queries.iter().enumerate() {
                            let mut stats = SearchStats::default();
                            engine.search_one(q, radius, &mut scratch, &mut out, &mut stats);
                            let got = keyed(&out);

                            let mut fresh_stats = SearchStats::default();
                            fresh_engine.search_one(
                                q, radius, &mut scratch, &mut out, &mut fresh_stats);
                            let expect: Vec<(u32, u32)> = {
                                let remapped: Vec<Neighbor> = out
                                    .iter()
                                    .map(|n| Neighbor {
                                        index: live[n.index as usize],
                                        dist_sq: n.dist_sq,
                                    })
                                    .collect();
                                keyed(&remapped)
                            };
                            prop_assert_eq!(
                                &got, &expect,
                                "{:?} step {} query {}: mutated tree vs fresh rebuild",
                                mode, step, qi
                            );

                            let mut router_stats = SearchStats::default();
                            router.search_one(
                                q, radius, &mut scratch, &mut out, &mut router_stats);
                            // Router hits arrive in the router's own
                            // (recycling) index space; map back to the
                            // tree's before comparing.
                            let router_hits: Vec<Neighbor> = out
                                .iter()
                                .map(|n| Neighbor {
                                    index: r2t[n.index as usize],
                                    dist_sq: n.dist_sq,
                                })
                                .collect();
                            prop_assert_eq!(
                                keyed(&router_hits), expect,
                                "{:?} step {} query {}: mutated router vs fresh rebuild",
                                mode, step, qi
                            );
                        }
                    }

                    // Split/merge (and every other topology state) must
                    // leave the routed batch deterministic and
                    // canonically ordered: two passes agree bit for bit
                    // — values, order, and `SearchStats` totals — and
                    // each query's hits arrive in ascending global
                    // index order.
                    {
                        let mut b1 = kd_bonsai::kdtree::QueryBatch::new();
                        let mut b2 = kd_bonsai::kdtree::QueryBatch::new();
                        router_bonsai.search_batch(&queries, radius, &mut b1);
                        router_bonsai.search_batch(&queries, radius, &mut b2);
                        prop_assert_eq!(
                            b1.stats(), b2.stats(),
                            "step {}: routed batch stats are nondeterministic", step
                        );
                        for i in 0..b1.num_queries() {
                            prop_assert_eq!(
                                b1.results(i), b2.results(i),
                                "step {} query {}: routed batch is nondeterministic", step, i
                            );
                            prop_assert!(
                                b1.results(i).windows(2).all(|w| w[0].index < w[1].index),
                                "step {} query {}: hits out of canonical order", step, i
                            );
                        }
                    }

                    // kNN checkpoint: the k nearest distances are
                    // shape-independent, so the mutated tree must
                    // report the same distance multiset as the fresh
                    // rebuild (indices can differ only on exact
                    // boundary ties, so they are compared through
                    // their recomputed distances instead).
                    let k = 1 + arg % 8;
                    for (qi, &q) in queries.iter().enumerate() {
                        let got = tree.kd_tree().knn(&mut sim, q, k);
                        let expect = fresh.kd_tree().knn(&mut sim, q, k);
                        let dist_bits = |nn: &[Neighbor]| -> Vec<u32> {
                            nn.iter().map(|n| n.dist_sq.to_bits()).collect()
                        };
                        prop_assert_eq!(
                            dist_bits(&got), dist_bits(&expect),
                            "step {} query {} k {}: knn distances vs fresh rebuild",
                            step, qi, k
                        );
                        prop_assert_eq!(got.len(), k.min(live.len()), "step {} query {}", step, qi);
                        for n in &got {
                            prop_assert!(
                                tree.kd_tree().is_live(n.index),
                                "step {}: knn returned dead point {}", step, n.index
                            );
                            let d = tree.kd_tree().points()[n.index as usize]
                                .distance_squared(q);
                            prop_assert_eq!(
                                d.to_bits(), n.dist_sq.to_bits(),
                                "step {}: knn distance mismatch", step
                            );
                        }
                        // The single nearest neighbour agrees with the
                        // routed/engine radius results' closest hit by
                        // construction; pin the degenerate k=0 contract
                        // while we are here.
                        prop_assert!(tree.kd_tree().knn(&mut sim, q, 0).is_empty());
                    }
                }
            }
        }
        prop_assert!(checkpoints > 0 || ops.iter().all(|&(k, _)| k < 2));
    }

    /// End-to-end churn: streaming cluster extraction over mutating
    /// frames equals a from-scratch extraction of every frame.
    #[test]
    fn streaming_clusters_equal_fresh_extraction_under_churn(
        cloud in arb_cloud(90),
        churn in arb_cloud(40),
        shards in 1usize..=4,
        tolerance in 0.4f32..4.0,
    ) {
        use kd_bonsai::cluster::{extract_euclidean_clusters_batched, StreamingExtractor};

        for mode in MODES {
            let mut ex = StreamingExtractor::new(mode, KdTreeConfig::default(), shards);
            let mut frame = cloud.clone();
            for round in 0..3 {
                // Mutate the frame: drop a deterministic slice, add
                // churn points.
                let drop = round * 7 % frame.len().max(1);
                frame.drain(..drop.min(frame.len()));
                frame.extend(churn.iter().skip(round).step_by(3).copied());

                ex.ingest_frame(&frame);
                prop_assert_eq!(ex.num_live(), frame.len());
                let audit = ex.audit();
                prop_assert!(audit.is_empty(), "round {}: audit: {:?}", round, audit);
                let streamed = ex.extract(tolerance, 1, 100_000);
                let fresh = extract_euclidean_clusters_batched(
                    frame.clone(), tolerance, 1, 100_000, KdTreeConfig::default(), mode);

                // Same clusters as point-multisets.
                let norm = |clusters: &[Vec<u32>], coord: &dyn Fn(u32) -> [u32; 3]| {
                    let mut v: Vec<Vec<[u32; 3]>> = clusters
                        .iter()
                        .map(|c| {
                            let mut w: Vec<[u32; 3]> = c.iter().map(|&i| coord(i)).collect();
                            w.sort_unstable();
                            w
                        })
                        .collect();
                    v.sort_unstable();
                    v
                };
                let key = |p: Point3| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()];
                let got = norm(&streamed.clusters, &|i| key(ex.point(i)));
                let expect = norm(&fresh.clusters, &|i| key(frame[i as usize]));
                prop_assert_eq!(got, expect, "{:?} shards {} round {}", mode, shards, round);
            }
        }
    }
}
