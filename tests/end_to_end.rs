//! Cross-crate integration tests: the full pipeline, end to end, on
//! synthetic frames — equality across tree modes, experiment smoke
//! runs, and the paper's headline result shapes.

use kd_bonsai::cluster::{ClusterParams, FramePipeline, TreeMode};
use kd_bonsai::lidar::{DrivingSequence, SequenceConfig};
use kd_bonsai::pipeline::{ExperimentConfig, FrameRunner};
use kd_bonsai::sim::SimEngine;

#[test]
fn all_tree_modes_produce_identical_clusters_on_real_frames() {
    let seq = DrivingSequence::new(SequenceConfig::small_test());
    let pipeline = FramePipeline::new(ClusterParams::default());
    for i in [0usize, 7, 15] {
        let frame = seq.frame(i);
        let mut results = Vec::new();
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            let mut sim = SimEngine::disabled();
            results.push(pipeline.run(&mut sim, &frame, mode));
        }
        assert_eq!(
            results[0].output.clusters, results[1].output.clusters,
            "bonsai clusters differ on frame {i}"
        );
        assert_eq!(
            results[0].output.clusters, results[2].output.clusters,
            "software-codec clusters differ on frame {i}"
        );
        assert_eq!(
            results[0].boxes, results[1].boxes,
            "boxes differ on frame {i}"
        );
        assert!(
            !results[0].output.clusters.is_empty(),
            "frame {i} found nothing"
        );
    }
}

#[test]
fn headline_result_shapes_hold_on_a_quick_run() {
    use kd_bonsai::pipeline::experiments::{
        fig11::Fig11Result, fig12::Fig12Result, fig9::Fig9Result, paired::PairedRun,
    };
    let run = PairedRun::run(ExperimentConfig::quick());

    // Figure 9a signs: time, instructions, loads, stores, L1 accesses
    // all improve.
    let f9 = Fig9Result::from_paired(&run);
    assert!(f9.execution_time_pct < 0.0);
    assert!(f9.committed_instructions_pct < 0.0);
    assert!(f9.committed_loads_pct < 0.0);
    assert!(f9.committed_stores_pct < 0.0);
    assert!(f9.l1d_accesses_pct < 0.0);
    // Figure 9b: compressed point bytes around the paper's ~37 %.
    let ratio = f9.first_frame_bonsai_bytes as f64 / f9.first_frame_baseline_bytes as f64;
    assert!(ratio > 0.25 && ratio < 0.6, "byte ratio {ratio}");
    // §V-B: fallbacks in the sub-percent range.
    assert!(
        f9.fallback_ratio < 0.02,
        "fallback ratio {}",
        f9.fallback_ratio
    );

    // Figure 11/12: latency and energy means improve.
    assert!(Fig11Result::from_paired(&run).mean_change_pct() < 0.0);
    assert!(Fig12Result::from_paired(&run).mean_change_pct() < 0.0);
}

#[test]
fn frame_metrics_are_self_consistent() {
    let runner = FrameRunner::new(ExperimentConfig::quick());
    let frames = runner.sampled_frames();
    let metrics = runner.run_frames(TreeMode::Bonsai, &frames[..2]);
    for m in &metrics {
        // Kernel groups nest: radius search ⊆ extract ⊆ end-to-end.
        assert!(m.radius_search.cycles <= m.extract.cycles);
        assert!(m.extract.cycles <= m.end_to_end.cycles);
        assert!(m.extract.counters.micro_ops() <= m.end_to_end.counters.micro_ops());
        // Work happened in every group.
        assert!(m.radius_search.cycles > 0.0);
        assert!(m.search.points_inspected > 0);
        assert!(m.visits_per_leaf() > 1.0);
        assert!(m.end_to_end.energy_j > 0.0);
    }
}

#[test]
fn experiments_render_without_panicking() {
    use kd_bonsai::pipeline::experiments::{table1::Table1Result, table5::Table5Result};
    let cfg = ExperimentConfig::quick();
    let t1 = Table1Result::run(cfg, 1, 19);
    assert!(t1.render().contains("Table I"));
    assert!(Table5Result::run().render().contains("Table V"));
}
