//! Geometric primitives for the K-D Bonsai reproduction.
//!
//! This crate is the foundation of the workspace: it defines the 3-D point
//! type stored in point clouds and k-d trees ([`Point3`]), axis-aligned
//! bounding boxes ([`Aabb`]), rays ([`Ray`]), rigid-body transforms
//! ([`Pose`]) and the small dense linear algebra ([`Mat3`], [`Mat6`],
//! [`Vec6`]) used by the NDT scan matcher.
//!
//! Everything here is plain `f32`/`f64` math with no dependencies; the
//! simulated Bonsai hardware operates on the IEEE-754 bit patterns of these
//! values (see the `bonsai-floatfmt` crate).
//!
//! # Examples
//!
//! ```
//! use bonsai_geom::Point3;
//!
//! let a = Point3::new(1.0, 2.0, 3.0);
//! let b = Point3::new(4.0, 6.0, 3.0);
//! assert_eq!(a.distance_squared(b), 25.0);
//! assert_eq!(a.distance(b), 5.0);
//! ```

#![forbid(unsafe_code)]

mod aabb;
mod matrix;
mod point;
mod pose;
mod ray;

pub use aabb::Aabb;
pub use matrix::{Mat3, Mat6, Vec6};
pub use point::{Axis, Point3};
pub use pose::Pose;
pub use ray::Ray;
