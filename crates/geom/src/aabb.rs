use crate::{Axis, Point3};

/// An axis-aligned bounding box.
///
/// The k-d tree computes the bounding box of every subtree during
/// construction (paper Section II-B); interior nodes derive from it the
/// per-axis extent used to choose the splitting coordinate, and radius
/// search prunes subtrees whose box is farther than `r` from the query.
///
/// # Examples
///
/// ```
/// use bonsai_geom::{Aabb, Point3};
///
/// let b = Aabb::from_points([
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(2.0, 4.0, 6.0),
/// ]).unwrap();
/// assert_eq!(b.extent(), Point3::new(2.0, 4.0, 6.0));
/// assert!(b.contains(Point3::new(1.0, 1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Component-wise minimum corner.
    pub min: Point3,
    /// Component-wise maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// The corners are normalized component-wise, so the arguments may be
    /// any two opposite corners of the box.
    pub fn new(a: Point3, b: Point3) -> Aabb {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The smallest box containing every point of `points`, or `None` when
    /// the iterator is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::{Aabb, Point3};
    /// assert!(Aabb::from_points(std::iter::empty()).is_none());
    /// let b = Aabb::from_points([Point3::new(1.0, 2.0, 3.0)]).unwrap();
    /// assert_eq!(b.min, b.max);
    /// ```
    pub fn from_points<I: IntoIterator<Item = Point3>>(points: I) -> Option<Aabb> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut aabb = Aabb {
            min: first,
            max: first,
        };
        for p in iter {
            aabb.insert(p);
        }
        Some(aabb)
    }

    /// Grows the box (if needed) so that it contains `p`.
    pub fn insert(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// The per-axis size of the box.
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// The center of the box.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// The axis along which the box is widest — the k-d tree's "most spread
    /// out" splitting-coordinate criterion.
    ///
    /// Ties resolve to the earlier axis in `x, y, z` order.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::{Aabb, Axis, Point3};
    /// let b = Aabb::new(Point3::ZERO, Point3::new(1.0, 5.0, 2.0));
    /// assert_eq!(b.widest_axis(), Axis::Y);
    /// ```
    pub fn widest_axis(&self) -> Axis {
        let e = self.extent();
        let mut best = Axis::X;
        for axis in [Axis::Y, Axis::Z] {
            if e[axis] > e[best] {
                best = axis;
            }
        }
        best
    }

    /// Whether `p` lies inside the box (inclusive on all faces).
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The squared euclidean distance from `p` to the box (zero inside).
    ///
    /// Radius search visits a subtree only when this is `<= r²`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::{Aabb, Point3};
    /// let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
    /// assert_eq!(b.distance_squared_to(Point3::new(2.0, 0.5, 0.5)), 1.0);
    /// assert_eq!(b.distance_squared_to(Point3::splat(0.5)), 0.0);
    /// ```
    pub fn distance_squared_to(&self, p: Point3) -> f32 {
        let mut d2 = 0.0;
        for axis in Axis::ALL {
            let v = p[axis];
            let lo = self.min[axis];
            let hi = self.max[axis];
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }

    /// Whether the closed ball of squared radius `radius_sq` around
    /// `center` intersects the box.
    ///
    /// This is the shard-routing test: a query ball only needs to visit
    /// a shard when it intersects the shard's bounding box. The
    /// comparison is inclusive, matching radius search's `d² ≤ r²`
    /// membership rule, and
    /// [`distance_squared_to`](Aabb::distance_squared_to) is a
    /// monotone under-estimate of the
    /// distance to any contained point in `f32`, so a shard that holds
    /// a true neighbor is never skipped.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::{Aabb, Point3};
    /// let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
    /// assert!(b.intersects_ball(Point3::new(2.0, 0.5, 0.5), 1.0));
    /// assert!(!b.intersects_ball(Point3::new(2.0, 0.5, 0.5), 0.99));
    /// ```
    pub fn intersects_ball(&self, center: Point3, radius_sq: f32) -> bool {
        self.distance_squared_to(center) <= radius_sq
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalized() {
        let b = Aabb::new(Point3::new(1.0, -1.0, 5.0), Point3::new(0.0, 2.0, 4.0));
        assert_eq!(b.min, Point3::new(0.0, -1.0, 4.0));
        assert_eq!(b.max, Point3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn from_points_covers_all_inputs() {
        let pts = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(-1.0, 3.0, 2.0),
            Point3::new(2.0, -5.0, 1.0),
        ];
        let b = Aabb::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point3::new(-1.0, -5.0, 0.0));
        assert_eq!(b.max, Point3::new(2.0, 3.0, 2.0));
    }

    #[test]
    fn distance_is_zero_inside_and_positive_outside() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(2.0));
        assert_eq!(b.distance_squared_to(Point3::splat(1.0)), 0.0);
        // Corner distance: offset (1,1,1) from corner (2,2,2).
        assert_eq!(b.distance_squared_to(Point3::splat(3.0)), 3.0);
    }

    #[test]
    fn widest_axis_breaks_ties_toward_x() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        assert_eq!(b.widest_axis(), Axis::X);
    }

    #[test]
    fn union_contains_both() {
        let a = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        let b = Aabb::new(Point3::splat(2.0), Point3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Point3::ZERO));
        assert!(u.contains(Point3::splat(3.0)));
    }

    #[test]
    fn center_and_extent() {
        let b = Aabb::new(Point3::new(-2.0, 0.0, 2.0), Point3::new(2.0, 4.0, 4.0));
        assert_eq!(b.center(), Point3::new(0.0, 2.0, 3.0));
        assert_eq!(b.extent(), Point3::new(4.0, 4.0, 2.0));
    }
}
