use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// One of the three spatial axes of a point cloud.
///
/// The k-d tree picks a splitting [`Axis`] per interior node; the Bonsai
/// compressed-leaf encoding keeps one compression flag per axis (`cX`, `cY`,
/// `cZ` in the paper's Figure 6).
///
/// # Examples
///
/// ```
/// use bonsai_geom::{Axis, Point3};
///
/// let p = Point3::new(1.0, 2.0, 3.0);
/// assert_eq!(p[Axis::Z], 3.0);
/// assert_eq!(Axis::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// The x axis (index 0). Forward in the vehicle frame.
    X = 0,
    /// The y axis (index 1). Left in the vehicle frame.
    Y = 1,
    /// The z axis (index 2). Up in the vehicle frame.
    Z = 2,
}

impl Axis {
    /// All three axes in `x, y, z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Returns the axis with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::Axis;
    /// assert_eq!(Axis::from_index(1), Axis::Y);
    /// ```
    pub fn from_index(index: usize) -> Axis {
        Axis::ALL[index]
    }

    /// The index of this axis (0, 1 or 2).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// A point (or vector) in 3-D space with `f32` coordinates.
///
/// This is the element type of every point cloud in the workspace. The
/// paper's LiDAR data is single-precision (`f32`, the PCL and Autoware.ai
/// default), which is the *baseline* representation that K-D Bonsai
/// compresses.
///
/// `Point3` doubles as a vector type: it supports the usual component-wise
/// arithmetic, dot/cross products and norms. A separate vector type would
/// add ceremony without preventing any real bug in this codebase.
///
/// # Examples
///
/// ```
/// use bonsai_geom::Point3;
///
/// let p = Point3::new(3.0, 4.0, 0.0);
/// assert_eq!(p.norm(), 5.0);
/// assert_eq!((p * 2.0).x, 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// The x coordinate.
    pub x: f32,
    /// The y coordinate.
    pub y: f32,
    /// The z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin, `(0, 0, 0)`.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its three coordinates.
    pub const fn new(x: f32, y: f32, z: f32) -> Point3 {
        Point3 { x, y, z }
    }

    /// Creates a point with all three coordinates equal to `v`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::Point3;
    /// assert_eq!(Point3::splat(2.0), Point3::new(2.0, 2.0, 2.0));
    /// ```
    pub const fn splat(v: f32) -> Point3 {
        Point3 { x: v, y: v, z: v }
    }

    /// Creates a point from a `[x, y, z]` array.
    pub const fn from_array(a: [f32; 3]) -> Point3 {
        Point3 {
            x: a[0],
            y: a[1],
            z: a[2],
        }
    }

    /// The coordinates as a `[x, y, z]` array.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::Point3;
    /// assert_eq!(Point3::new(1.0, 2.0, 3.0).to_array(), [1.0, 2.0, 3.0]);
    /// ```
    pub const fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// The squared euclidean distance to `other` (the paper's Eq. 2).
    ///
    /// Radius search compares this against `r²` to avoid the square root.
    pub fn distance_squared(self, other: Point3) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// The euclidean distance to `other` (the paper's Eq. 1).
    pub fn distance(self, other: Point3) -> f32 {
        self.distance_squared(other).sqrt()
    }

    /// The euclidean norm (length when viewed as a vector).
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// The squared euclidean norm.
    pub fn norm_squared(self) -> f32 {
        self.dot(self)
    }

    /// The dot product with `other`.
    pub fn dot(self, other: Point3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// The cross product with `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::Point3;
    /// let x = Point3::new(1.0, 0.0, 0.0);
    /// let y = Point3::new(0.0, 1.0, 0.0);
    /// assert_eq!(x.cross(y), Point3::new(0.0, 0.0, 1.0));
    /// ```
    pub fn cross(self, other: Point3) -> Point3 {
        Point3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Returns this vector scaled to unit length, or `None` when its norm is
    /// too small for the division to be reliable.
    pub fn normalized(self) -> Option<Point3> {
        let n = self.norm();
        if n > f32::MIN_POSITIVE {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum of two points.
    pub fn min(self, other: Point3) -> Point3 {
        Point3 {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
            z: self.z.min(other.z),
        }
    }

    /// Component-wise maximum of two points.
    pub fn max(self, other: Point3) -> Point3 {
        Point3 {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
            z: self.z.max(other.z),
        }
    }

    /// Whether all three coordinates are finite (no NaN/∞).
    ///
    /// LiDAR drivers emit NaN returns for beams that never reflect; the
    /// preprocessing stage of the pipeline filters them with this predicate.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The horizontal (x–y plane) range from the origin, in meters.
    ///
    /// Used by the LiDAR model and range-based cloud cropping.
    pub fn planar_range(self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

impl Index<Axis> for Point3 {
    type Output = f32;

    fn index(&self, axis: Axis) -> &f32 {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }
}

impl IndexMut<Axis> for Point3 {
    fn index_mut(&mut self, axis: Axis) -> &mut f32 {
        match axis {
            Axis::X => &mut self.x,
            Axis::Y => &mut self.y,
            Axis::Z => &mut self.z,
        }
    }
}

impl Index<usize> for Point3 {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self[Axis::from_index(i)]
    }
}

impl IndexMut<usize> for Point3 {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self[Axis::from_index(i)]
    }
}

impl Add for Point3 {
    type Output = Point3;

    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;

    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Point3 {
    fn sub_assign(&mut self, rhs: Point3) {
        *self = *self - rhs;
    }
}

impl Neg for Point3 {
    type Output = Point3;

    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;

    fn mul(self, s: f32) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;

    fn div(self, s: f32) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl From<[f32; 3]> for Point3 {
    fn from(a: [f32; 3]) -> Point3 {
        Point3::from_array(a)
    }
}

impl From<Point3> for [f32; 3] {
    fn from(p: Point3) -> [f32; 3] {
        p.to_array()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point3::new(0.0, 3.0, 0.0);
        let b = Point3::new(4.0, 0.0, 0.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn axis_indexing_reads_the_right_component() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p[Axis::X], 1.0);
        assert_eq!(p[Axis::Y], 2.0);
        assert_eq!(p[Axis::Z], 3.0);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 3.0);
    }

    #[test]
    fn axis_index_mut_writes_the_right_component() {
        let mut p = Point3::ZERO;
        p[Axis::Y] = 7.0;
        p[2] = -1.0;
        assert_eq!(p, Point3::new(0.0, 7.0, -1.0));
    }

    #[test]
    fn arithmetic_is_component_wise() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Point3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn cross_product_is_right_handed_and_orthogonal() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn normalized_returns_unit_vector() {
        let v = Point3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert!(Point3::ZERO.normalized().is_none());
    }

    #[test]
    fn min_max_are_component_wise() {
        let a = Point3::new(1.0, 5.0, 3.0);
        let b = Point3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Point3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Point3::new(2.0, 5.0, 3.0));
    }

    #[test]
    fn is_finite_rejects_nan_and_infinity() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn array_round_trip() {
        let p = Point3::new(1.5, -2.5, 3.5);
        let a: [f32; 3] = p.into();
        assert_eq!(Point3::from(a), p);
    }

    #[test]
    fn axis_display_is_lowercase() {
        assert_eq!(Axis::X.to_string(), "x");
        assert_eq!(Axis::Z.to_string(), "z");
    }
}
