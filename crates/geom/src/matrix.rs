// Dense small-matrix code: indexed loops over fixed 3/6-wide dimensions
// are the clearest idiom here, so the iterator-style lint is off.
#![allow(clippy::needless_range_loop)]

use std::ops::{Add, Index, IndexMut, Mul};

use crate::Point3;

/// A 3×3 matrix of `f64`, row-major.
///
/// Used by the NDT scan matcher for voxel covariance matrices and their
/// inverses, and by [`Pose`](crate::Pose) for rotations. Covariance math is
/// done in `f64`: NDT inverts near-singular covariances of ~100-point
/// voxels, where `f32` loses too much precision.
///
/// # Examples
///
/// ```
/// use bonsai_geom::Mat3;
///
/// let m = Mat3::diagonal(2.0, 3.0, 4.0);
/// let inv = m.inverse().unwrap();
/// assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    elems: [[f64; 3]; 3],
}

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 {
        elems: [[0.0; 3]; 3],
    };

    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        elems: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from rows.
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Mat3 {
        Mat3 {
            elems: [r0, r1, r2],
        }
    }

    /// A diagonal matrix with the given diagonal entries.
    pub const fn diagonal(a: f64, b: f64, c: f64) -> Mat3 {
        Mat3::from_rows([a, 0.0, 0.0], [0.0, b, 0.0], [0.0, 0.0, c])
    }

    /// The rotation matrix for intrinsic yaw-pitch-roll (Z-Y-X) Euler
    /// angles, in radians.
    ///
    /// This is the convention Autoware uses for vehicle poses: `yaw` about
    /// z (heading), then `pitch` about y, then `roll` about x.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Mat3 {
        let (sr, cr) = roll.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        let (sy, cy) = yaw.sin_cos();
        Mat3::from_rows(
            [cy * cp, cy * sp * sr - sy * cr, cy * sp * cr + sy * sr],
            [sy * cp, sy * sp * sr + cy * cr, sy * sp * cr - cy * sr],
            [-sp, cp * sr, cp * cr],
        )
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat3 {
        let e = &self.elems;
        Mat3::from_rows(
            [e[0][0], e[1][0], e[2][0]],
            [e[0][1], e[1][1], e[2][1]],
            [e[0][2], e[1][2], e[2][2]],
        )
    }

    /// The determinant.
    pub fn determinant(&self) -> f64 {
        let e = &self.elems;
        e[0][0] * (e[1][1] * e[2][2] - e[1][2] * e[2][1])
            - e[0][1] * (e[1][0] * e[2][2] - e[1][2] * e[2][0])
            + e[0][2] * (e[1][0] * e[2][1] - e[1][1] * e[2][0])
    }

    /// The inverse, or `None` when the matrix is singular (|det| below
    /// `1e-300`, i.e. effectively rank-deficient).
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-300 {
            return None;
        }
        let e = &self.elems;
        let inv_det = 1.0 / det;
        // Adjugate / det.
        Some(Mat3::from_rows(
            [
                (e[1][1] * e[2][2] - e[1][2] * e[2][1]) * inv_det,
                (e[0][2] * e[2][1] - e[0][1] * e[2][2]) * inv_det,
                (e[0][1] * e[1][2] - e[0][2] * e[1][1]) * inv_det,
            ],
            [
                (e[1][2] * e[2][0] - e[1][0] * e[2][2]) * inv_det,
                (e[0][0] * e[2][2] - e[0][2] * e[2][0]) * inv_det,
                (e[0][2] * e[1][0] - e[0][0] * e[1][2]) * inv_det,
            ],
            [
                (e[1][0] * e[2][1] - e[1][1] * e[2][0]) * inv_det,
                (e[0][1] * e[2][0] - e[0][0] * e[2][1]) * inv_det,
                (e[0][0] * e[1][1] - e[0][1] * e[1][0]) * inv_det,
            ],
        ))
    }

    /// Multiplies this matrix by a 3-vector of `f64`.
    pub fn mul_vec(&self, v: [f64; 3]) -> [f64; 3] {
        let e = &self.elems;
        [
            e[0][0] * v[0] + e[0][1] * v[1] + e[0][2] * v[2],
            e[1][0] * v[0] + e[1][1] * v[1] + e[1][2] * v[2],
            e[2][0] * v[0] + e[2][1] * v[1] + e[2][2] * v[2],
        ]
    }

    /// Rotates an `f32` point (coordinates widened to `f64` internally).
    pub fn mul_point(&self, p: Point3) -> Point3 {
        let v = self.mul_vec([p.x as f64, p.y as f64, p.z as f64]);
        Point3::new(v[0] as f32, v[1] as f32, v[2] as f32)
    }

    /// The outer product `a bᵀ`.
    pub fn outer(a: [f64; 3], b: [f64; 3]) -> Mat3 {
        let mut m = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                m.elems[i][j] = a[i] * b[j];
            }
        }
        m
    }

    /// Scales every element by `s`.
    pub fn scaled(&self, s: f64) -> Mat3 {
        let mut m = *self;
        for row in &mut m.elems {
            for v in row {
                *v *= s;
            }
        }
        m
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.elems[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.elems[r][c]
    }
}

impl Add for Mat3 {
    type Output = Mat3;

    fn add(self, rhs: Mat3) -> Mat3 {
        let mut m = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                m.elems[i][j] = self.elems[i][j] + rhs.elems[i][j];
            }
        }
        m
    }
}

impl Mul for Mat3 {
    type Output = Mat3;

    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut m = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += self.elems[i][k] * rhs.elems[k][j];
                }
                m.elems[i][j] = acc;
            }
        }
        m
    }
}

/// A 6-vector of `f64` — the NDT pose-update increment
/// `(tx, ty, tz, roll, pitch, yaw)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec6(pub [f64; 6]);

impl Vec6 {
    /// The zero vector.
    pub const ZERO: Vec6 = Vec6([0.0; 6]);

    /// The euclidean norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Add for Vec6 {
    type Output = Vec6;

    fn add(self, rhs: Vec6) -> Vec6 {
        let mut out = [0.0; 6];
        for i in 0..6 {
            out[i] = self.0[i] + rhs.0[i];
        }
        Vec6(out)
    }
}

impl Mul<f64> for Vec6 {
    type Output = Vec6;

    fn mul(self, s: f64) -> Vec6 {
        let mut out = self.0;
        for v in &mut out {
            *v *= s;
        }
        Vec6(out)
    }
}

impl Index<usize> for Vec6 {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vec6 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

/// A 6×6 matrix of `f64` — the NDT Newton-step Hessian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat6 {
    elems: [[f64; 6]; 6],
}

impl Mat6 {
    /// The zero matrix.
    pub const ZERO: Mat6 = Mat6 {
        elems: [[0.0; 6]; 6],
    };

    /// The identity matrix.
    pub fn identity() -> Mat6 {
        let mut m = Mat6::ZERO;
        for i in 0..6 {
            m.elems[i][i] = 1.0;
        }
        m
    }

    /// Adds `s` to every diagonal element (Levenberg-style damping used to
    /// keep the NDT Hessian positive definite).
    pub fn add_diagonal(&mut self, s: f64) {
        for i in 0..6 {
            self.elems[i][i] += s;
        }
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` when the matrix is numerically singular (pivot below
    /// `1e-12`).
    pub fn solve(&self, b: Vec6) -> Option<Vec6> {
        let mut a = self.elems;
        let mut x = b.0;
        for col in 0..6 {
            // Partial pivoting.
            let mut pivot_row = col;
            for row in col + 1..6 {
                if a[row][col].abs() > a[pivot_row][col].abs() {
                    pivot_row = row;
                }
            }
            if a[pivot_row][col].abs() < 1e-12 {
                return None;
            }
            a.swap(col, pivot_row);
            x.swap(col, pivot_row);
            for row in col + 1..6 {
                let factor = a[row][col] / a[col][col];
                for k in col..6 {
                    a[row][k] -= factor * a[col][k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..6).rev() {
            let mut acc = x[col];
            for k in col + 1..6 {
                acc -= a[col][k] * x[k];
            }
            x[col] = acc / a[col][col];
        }
        Some(Vec6(x))
    }
}

impl Index<(usize, usize)> for Mat6 {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.elems[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat6 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.elems[r][c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_mat3_close(a: Mat3, b: Mat3, tol: f64) {
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Mat3::from_rows([2.0, 1.0, 0.5], [0.1, 3.0, -1.0], [0.0, 0.7, 1.5]);
        let inv = m.inverse().unwrap();
        assert_mat3_close(m * inv, Mat3::IDENTITY, 1e-12);
        assert_mat3_close(inv * m, Mat3::IDENTITY, 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn euler_rotation_is_orthonormal() {
        let r = Mat3::from_euler(0.3, -0.2, 1.1);
        assert_mat3_close(r * r.transpose(), Mat3::IDENTITY, 1e-12);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn yaw_rotates_x_toward_y() {
        let r = Mat3::from_euler(0.0, 0.0, std::f64::consts::FRAC_PI_2);
        let p = r.mul_point(Point3::new(1.0, 0.0, 0.0));
        assert!((p.x).abs() < 1e-6);
        assert!((p.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn outer_product_shape() {
        let m = Mat3::outer([1.0, 2.0, 3.0], [4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 4.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(2, 1)], 15.0);
    }

    #[test]
    fn mat6_solve_recovers_known_solution() {
        let mut a = Mat6::identity();
        // A well-conditioned non-trivial system.
        for i in 0..6 {
            for j in 0..6 {
                a[(i, j)] += 0.1 * ((i * 6 + j) as f64).sin();
            }
        }
        let x_true = Vec6([1.0, -2.0, 0.5, 3.0, -0.25, 4.0]);
        let mut b = Vec6::ZERO;
        for i in 0..6 {
            for j in 0..6 {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = a.solve(b).unwrap();
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn mat6_solve_rejects_singular() {
        let m = Mat6::ZERO;
        assert!(m.solve(Vec6([1.0; 6])).is_none());
    }

    #[test]
    fn vec6_arithmetic() {
        let v = Vec6([1.0; 6]) + Vec6([2.0; 6]) * 0.5;
        assert_eq!(v, Vec6([2.0; 6]));
        assert!((Vec6([2.0; 6]).norm() - (24.0f64).sqrt()).abs() < 1e-12);
    }
}
