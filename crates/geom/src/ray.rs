use crate::{Aabb, Point3};

/// A half-line: origin plus non-negative multiples of a direction.
///
/// The synthetic LiDAR sensor casts one `Ray` per beam per azimuth step
/// and keeps the closest primitive hit (see `bonsai-lidar`).
///
/// # Examples
///
/// ```
/// use bonsai_geom::{Aabb, Point3, Ray};
///
/// let ray = Ray::new(Point3::ZERO, Point3::new(1.0, 0.0, 0.0)).unwrap();
/// let b = Aabb::new(Point3::new(2.0, -1.0, -1.0), Point3::new(4.0, 1.0, 1.0));
/// assert_eq!(ray.intersect_aabb(&b), Some(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    origin: Point3,
    direction: Point3,
}

impl Ray {
    /// Creates a ray; the direction is normalized. Returns `None` when the
    /// direction is (near) zero.
    pub fn new(origin: Point3, direction: Point3) -> Option<Ray> {
        Some(Ray {
            origin,
            direction: direction.normalized()?,
        })
    }

    /// The ray origin.
    pub fn origin(&self) -> Point3 {
        self.origin
    }

    /// The unit-length ray direction.
    pub fn direction(&self) -> Point3 {
        self.direction
    }

    /// The point at parameter `t` along the ray.
    pub fn at(&self, t: f32) -> Point3 {
        self.origin + self.direction * t
    }

    /// Slab-test intersection with an axis-aligned box.
    ///
    /// Returns the entry parameter `t >= 0` of the first intersection, or
    /// `None` when the ray misses the box. A ray starting inside the box
    /// hits at `t = 0`.
    pub fn intersect_aabb(&self, aabb: &Aabb) -> Option<f32> {
        let mut t_near = 0.0f32;
        let mut t_far = f32::INFINITY;
        for i in 0..3 {
            let o = self.origin[i];
            let d = self.direction[i];
            let lo = aabb.min[i];
            let hi = aabb.max[i];
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (t0, t1) = {
                    let a = (lo - o) * inv;
                    let b = (hi - o) * inv;
                    if a < b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                t_near = t_near.max(t0);
                t_far = t_far.min(t1);
                if t_near > t_far {
                    return None;
                }
            }
        }
        Some(t_near)
    }

    /// Intersection with the horizontal plane `z = height`.
    ///
    /// Returns the parameter of the hit, or `None` when the ray is parallel
    /// to the plane or points away from it.
    pub fn intersect_horizontal_plane(&self, height: f32) -> Option<f32> {
        if self.direction.z.abs() < 1e-12 {
            return None;
        }
        let t = (height - self.origin.z) / self.direction.z;
        if t >= 0.0 {
            Some(t)
        } else {
            None
        }
    }

    /// Intersection with a vertical cylinder (axis parallel to z) of the
    /// given `center` (z ignored), `radius`, and z range `[z_min, z_max]`.
    ///
    /// Models poles and tree trunks in the synthetic scene.
    pub fn intersect_vertical_cylinder(
        &self,
        center: Point3,
        radius: f32,
        z_min: f32,
        z_max: f32,
    ) -> Option<f32> {
        // Project to the x-y plane and solve the quadratic |o + t d - c|² = r².
        let ox = self.origin.x - center.x;
        let oy = self.origin.y - center.y;
        let dx = self.direction.x;
        let dy = self.direction.y;
        let a = dx * dx + dy * dy;
        if a < 1e-12 {
            return None; // Vertical ray: treat as a miss (cap hits are irrelevant here).
        }
        let b = 2.0 * (ox * dx + oy * dy);
        let c = ox * ox + oy * oy - radius * radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_disc = disc.sqrt();
        // Nearest non-negative root whose z lies in range.
        for t in [(-b - sqrt_disc) / (2.0 * a), (-b + sqrt_disc) / (2.0 * a)] {
            if t >= 0.0 {
                let z = self.origin.z + t * self.direction.z;
                if z >= z_min && z <= z_max {
                    return Some(t);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray(o: [f32; 3], d: [f32; 3]) -> Ray {
        Ray::new(Point3::from_array(o), Point3::from_array(d)).unwrap()
    }

    #[test]
    fn zero_direction_is_rejected() {
        assert!(Ray::new(Point3::ZERO, Point3::ZERO).is_none());
    }

    #[test]
    fn aabb_hit_from_outside() {
        let r = ray([0.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        let b = Aabb::new(Point3::new(3.0, -1.0, -1.0), Point3::new(5.0, 1.0, 1.0));
        assert_eq!(r.intersect_aabb(&b), Some(3.0));
    }

    #[test]
    fn aabb_miss() {
        let r = ray([0.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        let b = Aabb::new(Point3::new(3.0, 2.0, -1.0), Point3::new(5.0, 4.0, 1.0));
        assert_eq!(r.intersect_aabb(&b), None);
    }

    #[test]
    fn aabb_hit_from_inside_is_t_zero() {
        let r = ray([0.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let b = Aabb::new(Point3::splat(-1.0), Point3::splat(1.0));
        assert_eq!(r.intersect_aabb(&b), Some(0.0));
    }

    #[test]
    fn aabb_behind_ray_is_missed() {
        let r = ray([10.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        let b = Aabb::new(Point3::splat(-1.0), Point3::splat(1.0));
        assert_eq!(r.intersect_aabb(&b), None);
    }

    #[test]
    fn ground_plane_hit() {
        let r = ray([0.0, 0.0, 2.0], [1.0, 0.0, -1.0]);
        let t = r.intersect_horizontal_plane(0.0).unwrap();
        let p = r.at(t);
        assert!((p.z).abs() < 1e-6);
        assert!((p.x - 2.0).abs() < 1e-5);
    }

    #[test]
    fn plane_parallel_ray_misses() {
        let r = ray([0.0, 0.0, 2.0], [1.0, 0.0, 0.0]);
        assert!(r.intersect_horizontal_plane(0.0).is_none());
    }

    #[test]
    fn cylinder_hit_and_z_clipping() {
        let r = ray([0.0, 0.0, 0.5], [1.0, 0.0, 0.0]);
        let hit = r
            .intersect_vertical_cylinder(Point3::new(5.0, 0.0, 0.0), 1.0, 0.0, 3.0)
            .unwrap();
        assert!((hit - 4.0).abs() < 1e-5);
        // Same cylinder but clipped below the ray's z: miss.
        assert!(r
            .intersect_vertical_cylinder(Point3::new(5.0, 0.0, 0.0), 1.0, 1.0, 3.0)
            .is_none());
    }

    #[test]
    fn cylinder_miss_off_axis() {
        let r = ray([0.0, 0.0, 0.5], [1.0, 0.0, 0.0]);
        assert!(r
            .intersect_vertical_cylinder(Point3::new(5.0, 3.0, 0.0), 1.0, 0.0, 3.0)
            .is_none());
    }
}
