use crate::{Mat3, Point3, Vec6};

/// A rigid-body transform: rotation followed by translation.
///
/// Poses place the simulated vehicle in the world (the LiDAR driving
/// sequence) and parameterize the NDT scan matcher's estimate. Rotation is
/// stored as a matrix; construction is from Euler angles as in Autoware.
///
/// # Examples
///
/// ```
/// use bonsai_geom::{Point3, Pose};
///
/// let pose = Pose::from_translation_euler(
///     Point3::new(10.0, 0.0, 0.0), 0.0, 0.0, std::f64::consts::FRAC_PI_2);
/// let p = pose.apply(Point3::new(1.0, 0.0, 0.0));
/// assert!((p.x - 10.0).abs() < 1e-5);
/// assert!((p.y - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// The rotation part.
    pub rotation: Mat3,
    /// The translation part, applied after rotation.
    pub translation: Point3,
    euler: [f64; 3],
}

impl Pose {
    /// The identity pose.
    pub fn identity() -> Pose {
        Pose {
            rotation: Mat3::IDENTITY,
            translation: Point3::ZERO,
            euler: [0.0; 3],
        }
    }

    /// Creates a pose from a translation and Z-Y-X Euler angles (radians).
    pub fn from_translation_euler(translation: Point3, roll: f64, pitch: f64, yaw: f64) -> Pose {
        Pose {
            rotation: Mat3::from_euler(roll, pitch, yaw),
            translation,
            euler: [roll, pitch, yaw],
        }
    }

    /// Creates a pose from a 6-vector `(tx, ty, tz, roll, pitch, yaw)` —
    /// the parameterization the NDT Newton solver optimizes.
    pub fn from_vec6(v: Vec6) -> Pose {
        Pose::from_translation_euler(
            Point3::new(v[0] as f32, v[1] as f32, v[2] as f32),
            v[3],
            v[4],
            v[5],
        )
    }

    /// This pose as the 6-vector `(tx, ty, tz, roll, pitch, yaw)`.
    pub fn to_vec6(&self) -> Vec6 {
        Vec6([
            self.translation.x as f64,
            self.translation.y as f64,
            self.translation.z as f64,
            self.euler[0],
            self.euler[1],
            self.euler[2],
        ])
    }

    /// The Euler angles `(roll, pitch, yaw)` this pose was built from.
    pub fn euler(&self) -> [f64; 3] {
        self.euler
    }

    /// Applies the transform to a point: `R·p + t`.
    pub fn apply(&self, p: Point3) -> Point3 {
        self.rotation.mul_point(p) + self.translation
    }

    /// The inverse transform.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::{Point3, Pose};
    /// let pose = Pose::from_translation_euler(Point3::new(1.0, 2.0, 3.0), 0.1, 0.2, 0.3);
    /// let p = Point3::new(4.0, 5.0, 6.0);
    /// let q = pose.inverse().apply(pose.apply(p));
    /// assert!(p.distance(q) < 1e-4);
    /// ```
    pub fn inverse(&self) -> Pose {
        let rot_t = self.rotation.transpose();
        let t = rot_t.mul_point(-self.translation);
        // The inverse of a Z-Y-X Euler rotation is generally not a Z-Y-X
        // rotation with negated angles, so the cached Euler angles of an
        // inverse are only used for reporting; recover yaw/pitch/roll from
        // the matrix.
        let (roll, pitch, yaw) = euler_from_matrix(&rot_t);
        Pose {
            rotation: rot_t,
            translation: t,
            euler: [roll, pitch, yaw],
        }
    }

    /// The composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Pose) -> Pose {
        let rotation = self.rotation * other.rotation;
        let translation = self.rotation.mul_point(other.translation) + self.translation;
        let (roll, pitch, yaw) = euler_from_matrix(&rotation);
        Pose {
            rotation,
            translation,
            euler: [roll, pitch, yaw],
        }
    }
}

impl Default for Pose {
    fn default() -> Pose {
        Pose::identity()
    }
}

/// Recovers Z-Y-X Euler angles from a rotation matrix.
fn euler_from_matrix(r: &Mat3) -> (f64, f64, f64) {
    // r[2][0] = -sin(pitch)
    let pitch = (-r[(2, 0)]).asin();
    let roll = r[(2, 1)].atan2(r[(2, 2)]);
    let yaw = r[(1, 0)].atan2(r[(0, 0)]);
    (roll, pitch, yaw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_leaves_points_unchanged() {
        let p = Point3::new(1.0, -2.0, 3.0);
        assert_eq!(Pose::identity().apply(p), p);
    }

    #[test]
    fn inverse_round_trips_points() {
        let pose = Pose::from_translation_euler(Point3::new(5.0, -3.0, 1.0), 0.2, -0.4, 2.0);
        let p = Point3::new(10.0, 20.0, -5.0);
        let back = pose.inverse().apply(pose.apply(p));
        assert!(p.distance(back) < 1e-3, "distance {}", p.distance(back));
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = Pose::from_translation_euler(Point3::new(1.0, 0.0, 0.0), 0.0, 0.0, 0.5);
        let b = Pose::from_translation_euler(Point3::new(0.0, 2.0, 0.0), 0.1, 0.0, -0.3);
        let p = Point3::new(3.0, 4.0, 5.0);
        let seq = a.apply(b.apply(p));
        let composed = a.compose(&b).apply(p);
        assert!(seq.distance(composed) < 1e-4);
    }

    #[test]
    fn vec6_round_trip() {
        let v = Vec6([1.0, 2.0, 3.0, 0.1, -0.2, 0.3]);
        let got = Pose::from_vec6(v).to_vec6();
        for i in 0..6 {
            assert!((got[i] - v[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn euler_recovery_matches_construction() {
        let pose = Pose::from_translation_euler(Point3::ZERO, 0.3, -0.2, 1.4);
        let (roll, pitch, yaw) = euler_from_matrix(&pose.rotation);
        assert!((roll - 0.3).abs() < 1e-9);
        assert!((pitch + 0.2).abs() < 1e-9);
        assert!((yaw - 1.4).abs() < 1e-9);
    }
}
