/// A gshare branch predictor.
///
/// Predicts each conditional branch by XOR-ing the branch site id with a
/// global history register and indexing a table of 2-bit saturating
/// counters. The instrumented algorithms report real branch *outcomes*
/// (taken/not-taken decisions of tree traversal, classification compares,
/// loop exits); this predictor converts them into a misprediction count,
/// which Table III compares between the full run and the sub-sampled run.
///
/// # Examples
///
/// ```
/// use bonsai_sim::Gshare;
///
/// let mut bp = Gshare::new(12);
/// // An always-taken branch is learned once the history warms up.
/// let mut wrong = 0;
/// for _ in 0..100 {
///     if !bp.predict_and_update(7, true) {
///         wrong += 1;
///     }
/// }
/// assert!(wrong <= 15); // only warm-up aliases mispredict
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    mask: u64,
    predictions: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` two-bit counters,
    /// initialized to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Gshare {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24"
        );
        Gshare {
            counters: vec![1; 1 << index_bits],
            history: 0,
            mask: (1 << index_bits) - 1,
            predictions: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the branch at `site`, then updates the predictor with the
    /// real `taken` outcome. Returns whether the prediction was correct.
    pub fn predict_and_update(&mut self, site: u32, taken: bool) -> bool {
        let index = ((site as u64) ^ self.history) & self.mask;
        let counter = &mut self.counters[index as usize];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.mask;
        self.predictions += 1;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction ratio (0 with no predictions).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut bp = Gshare::new(10);
        for i in 0..1000 {
            bp.predict_and_update(3, i % 10 != 0); // 90 % taken
        }
        // A 2-bit counter mispredicts at most around the bias rate.
        assert!(
            bp.mispredict_ratio() < 0.25,
            "ratio {}",
            bp.mispredict_ratio()
        );
    }

    #[test]
    fn learns_alternating_pattern_through_history() {
        let mut bp = Gshare::new(12);
        for i in 0..2000 {
            bp.predict_and_update(5, i % 2 == 0);
        }
        // After warm-up, history disambiguates the alternation almost
        // perfectly.
        let before = bp.mispredicts();
        for i in 0..1000 {
            bp.predict_and_update(5, i % 2 == 0);
        }
        assert!(bp.mispredicts() - before < 20);
    }

    #[test]
    fn random_branches_are_hard() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut bp = Gshare::new(12);
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bp.predict_and_update(11, state & 1 == 1);
        }
        let r = bp.mispredict_ratio();
        assert!(r > 0.4 && r < 0.6, "ratio {r}");
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn zero_bits_rejected() {
        Gshare::new(0);
    }
}
