/// A sample distribution with the summary statistics the paper's box
/// plots report (Figures 11 and 12): quartiles, mean, and tail
/// percentiles.
///
/// # Examples
///
/// ```
/// use bonsai_sim::Distribution;
///
/// let d = Distribution::from_samples((1..=100).map(|v| v as f64));
/// assert_eq!(d.mean(), 50.5);
/// assert_eq!(d.percentile(100.0), 100.0);
/// assert_eq!(d.median(), 50.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    sorted: Vec<f64>,
}

impl Distribution {
    /// Builds a distribution from samples. NaN samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Distribution {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|v| !v.is_nan()), "NaN sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Distribution { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The samples in ascending order.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Arithmetic mean (0 for an empty distribution).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .sorted
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }

    /// Standard error of the mean (0 with fewer than two samples).
    pub fn std_error(&self) -> f64 {
        if self.sorted.len() < 2 {
            0.0
        } else {
            self.std_dev() / (self.sorted.len() as f64).sqrt()
        }
    }

    /// The `p`-th percentile (linear interpolation between order
    /// statistics; `p` in `[0, 100]`).
    ///
    /// # Panics
    ///
    /// Panics on an empty distribution or `p` outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "empty distribution");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// `(min, q1, median, q3, max)` — the box-plot five-number summary.
    pub fn five_number_summary(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.percentile(0.0),
            self.percentile(25.0),
            self.median(),
            self.percentile(75.0),
            self.percentile(100.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sequence() {
        let d = Distribution::from_samples([4.0, 1.0, 3.0, 2.0, 5.0]);
        let (min, q1, med, q3, max) = d.five_number_summary();
        assert_eq!((min, q1, med, q3, max), (1.0, 2.0, 3.0, 4.0, 5.0));
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let d = Distribution::from_samples([0.0, 10.0]);
        assert_eq!(d.percentile(25.0), 2.5);
        assert_eq!(d.percentile(99.0), 9.9);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        let d = Distribution::from_samples([7.0; 10]);
        assert_eq!(d.std_dev(), 0.0);
        assert_eq!(d.std_error(), 0.0);
    }

    #[test]
    fn std_error_shrinks_with_samples() {
        let small = Distribution::from_samples((0..10).map(|v| v as f64));
        let large = Distribution::from_samples((0..1000).map(|v| (v % 10) as f64));
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_samples_rejected() {
        Distribution::from_samples([1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        Distribution::from_samples(std::iter::empty()).percentile(50.0);
    }

    #[test]
    fn single_sample_percentiles() {
        let d = Distribution::from_samples([42.0]);
        assert_eq!(d.percentile(0.0), 42.0);
        assert_eq!(d.percentile(100.0), 42.0);
        assert_eq!(d.median(), 42.0);
    }
}
