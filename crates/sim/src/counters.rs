use std::fmt;
use std::ops::{Add, AddAssign};

/// Classes of committed micro-ops tracked by the model.
///
/// The split mirrors what the paper reports: loads and stores explicitly
/// (Figure 9a), the rest folded into "committed instructions", plus the
/// Bonsai-specific operation classes whose energy the new FUs pay
/// (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU / address arithmetic / control bookkeeping.
    IntAlu = 0,
    /// Scalar floating-point arithmetic.
    FpAlu = 1,
    /// 128-bit NEON vector arithmetic.
    VecAlu = 2,
    /// Load micro-op.
    Load = 3,
    /// Store micro-op.
    Store = 4,
    /// Conditional branch.
    Branch = 5,
    /// ZipPts buffer compress / decompress micro-op (CPRZPB, the
    /// decompress step of LDDCP).
    BonsaiCodec = 6,
    /// Square-of-differences-with-error vector op (SQDWEL/SQDWEH).
    BonsaiSqdwe = 7,
}

impl OpClass {
    /// Number of op classes.
    pub const COUNT: usize = 8;

    /// All classes, in discriminant order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::IntAlu,
        OpClass::FpAlu,
        OpClass::VecAlu,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::BonsaiCodec,
        OpClass::BonsaiSqdwe,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpClass::IntAlu => "int",
            OpClass::FpAlu => "fp",
            OpClass::VecAlu => "vec",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::BonsaiCodec => "bonsai-codec",
            OpClass::BonsaiSqdwe => "bonsai-sqdwe",
        };
        f.write_str(name)
    }
}

/// The pipeline phase ("kernel") that counters are attributed to.
///
/// Groupings used by the experiments:
///
/// * **radius search** (Figure 2 share) = `Traverse` + `LeafScan` +
///   `Fallback`;
/// * **extract kernel** (Figures 9a/9b/10/12) = `Build` + `Compress` +
///   radius search + `ClusterLogic`;
/// * **end to end** (Figure 11) additionally includes `Preprocess`,
///   `PostProcess` and `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Point-cloud preprocessing (crop, voxel filter, ground removal).
    Preprocess = 0,
    /// K-d tree construction.
    Build = 1,
    /// Leaf compression during tree construction (Bonsai only).
    Compress = 2,
    /// Interior-node traversal of radius search.
    Traverse = 3,
    /// Leaf inspection: distance computation and classification.
    LeafScan = 4,
    /// Full-precision re-computation of inconclusive classifications
    /// (Bonsai only).
    Fallback = 5,
    /// Cluster bookkeeping around the searches (queues, labels).
    ClusterLogic = 6,
    /// NDT derivative/Hessian math (localization workload).
    NdtMath = 7,
    /// Post-processing (cluster labelling, bounding boxes).
    PostProcess = 8,
    /// Anything else.
    Other = 9,
}

impl Kernel {
    /// Number of kernels.
    pub const COUNT: usize = 10;

    /// All kernels, in discriminant order.
    pub const ALL: [Kernel; Kernel::COUNT] = [
        Kernel::Preprocess,
        Kernel::Build,
        Kernel::Compress,
        Kernel::Traverse,
        Kernel::LeafScan,
        Kernel::Fallback,
        Kernel::ClusterLogic,
        Kernel::NdtMath,
        Kernel::PostProcess,
        Kernel::Other,
    ];

    /// The kernels whose union is the paper's *radius search* operation.
    pub const RADIUS_SEARCH: [Kernel; 3] = [Kernel::Traverse, Kernel::LeafScan, Kernel::Fallback];

    /// The kernels whose union is the euclidean-cluster *extract kernel*
    /// (90 % of the task in the paper's Valgrind profile).
    pub const EXTRACT: [Kernel; 6] = [
        Kernel::Build,
        Kernel::Compress,
        Kernel::Traverse,
        Kernel::LeafScan,
        Kernel::Fallback,
        Kernel::ClusterLogic,
    ];
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Kernel::Preprocess => "preprocess",
            Kernel::Build => "build",
            Kernel::Compress => "compress",
            Kernel::Traverse => "traverse",
            Kernel::LeafScan => "leaf-scan",
            Kernel::Fallback => "fallback",
            Kernel::ClusterLogic => "cluster-logic",
            Kernel::NdtMath => "ndt-math",
            Kernel::PostProcess => "post-process",
            Kernel::Other => "other",
        };
        f.write_str(name)
    }
}

/// Committed-event counters for one kernel (or a sum over kernels).
///
/// # Examples
///
/// ```
/// use bonsai_sim::{Counters, OpClass};
///
/// let mut c = Counters::default();
/// c.bump(OpClass::Load, 3);
/// assert_eq!(c.loads, 3);
/// assert_eq!(c.micro_ops(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Committed micro-ops per [`OpClass`].
    pub ops: [u64; OpClass::COUNT],
    /// Committed load micro-ops (redundant with `ops[Load]`, kept for
    /// readability at use sites).
    pub loads: u64,
    /// Committed store micro-ops.
    pub stores: u64,
    /// Useful bytes moved by loads.
    pub loaded_bytes: u64,
    /// Useful bytes moved by stores.
    pub stored_bytes: u64,
    /// L1D accesses (line-granular).
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Main-memory accesses.
    pub dram_accesses: u64,
    /// L2 hits whose latency was hidden by the stream prefetcher.
    pub l2_hits_covered: u64,
    /// DRAM accesses whose latency was hidden by the stream prefetcher.
    pub dram_covered: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl Counters {
    /// Adds `n` committed micro-ops of the given class.
    pub fn bump(&mut self, class: OpClass, n: u64) {
        self.ops[class as usize] += n;
        match class {
            OpClass::Load => self.loads += n,
            OpClass::Store => self.stores += n,
            OpClass::Branch => self.branches += n,
            _ => {}
        }
    }

    /// Total committed micro-ops across all classes.
    pub fn micro_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Committed micro-ops of one class.
    pub fn ops_of(&self, class: OpClass) -> u64 {
        self.ops[class as usize]
    }

    /// Memory micro-ops (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// L1D miss ratio (0 when there were no accesses).
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// Branch misprediction ratio (0 when there were no branches).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl Add for Counters {
    type Output = Counters;

    fn add(self, rhs: Counters) -> Counters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        for i in 0..OpClass::COUNT {
            self.ops[i] += rhs.ops[i];
        }
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.loaded_bytes += rhs.loaded_bytes;
        self.stored_bytes += rhs.stored_bytes;
        self.l1_accesses += rhs.l1_accesses;
        self.l1_misses += rhs.l1_misses;
        self.l2_accesses += rhs.l2_accesses;
        self.l2_misses += rhs.l2_misses;
        self.dram_accesses += rhs.dram_accesses;
        self.l2_hits_covered += rhs.l2_hits_covered;
        self.dram_covered += rhs.dram_covered;
        self.branches += rhs.branches;
        self.mispredicts += rhs.mispredicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_mirrors_into_named_fields() {
        let mut c = Counters::default();
        c.bump(OpClass::Load, 2);
        c.bump(OpClass::Store, 3);
        c.bump(OpClass::Branch, 5);
        c.bump(OpClass::IntAlu, 7);
        assert_eq!(c.loads, 2);
        assert_eq!(c.stores, 3);
        assert_eq!(c.branches, 5);
        assert_eq!(c.micro_ops(), 17);
        assert_eq!(c.mem_ops(), 5);
    }

    #[test]
    fn addition_is_field_wise() {
        let mut a = Counters::default();
        a.bump(OpClass::FpAlu, 10);
        a.l1_accesses = 4;
        a.l1_misses = 1;
        let mut b = Counters::default();
        b.bump(OpClass::FpAlu, 5);
        b.l1_accesses = 6;
        let c = a + b;
        assert_eq!(c.ops_of(OpClass::FpAlu), 15);
        assert_eq!(c.l1_accesses, 10);
        assert_eq!(c.l1_miss_ratio(), 0.1);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = Counters::default();
        assert_eq!(c.l1_miss_ratio(), 0.0);
        assert_eq!(c.mispredict_ratio(), 0.0);
    }

    #[test]
    fn kernel_groupings_are_consistent() {
        for k in Kernel::RADIUS_SEARCH {
            assert!(Kernel::EXTRACT.contains(&k), "{k} in extract");
        }
        assert!(!Kernel::EXTRACT.contains(&Kernel::Preprocess));
        assert_eq!(Kernel::ALL.len(), Kernel::COUNT);
    }
}
