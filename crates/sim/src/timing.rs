use crate::Counters;

/// Analytic out-of-order timing model.
///
/// The gem5 simulation of the paper is replaced by a first-order model of
/// an OoO core: execution time is the larger of the front-end/issue bound
/// and the memory-port bound, plus stall terms for cache misses (damped
/// by a memory-level-parallelism factor — an OoO window overlaps several
/// outstanding misses) and branch mispredictions (pipeline refill).
///
/// ```text
/// cycles = max(µops / issue_eff, mem_ops / ports)
///        + (L2 hits × L2_lat + DRAM accesses × DRAM_lat) / MLP
///        + mispredicts × refill
/// ```
///
/// The constants are documented, physically plausible values for the
/// Table IV core; every experiment reports *relative* changes between two
/// runs of the same model, which is robust to the exact constants.
///
/// # Examples
///
/// ```
/// use bonsai_sim::{Counters, OpClass, TimingModel};
///
/// let mut c = Counters::default();
/// c.bump(OpClass::IntAlu, 300);
/// let t = TimingModel::a72_like();
/// assert_eq!(t.cycles(&c), 100.0); // pure ALU work: issue-bound at 3/cycle
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// Sustained micro-ops per cycle. Bounded by the 3-wide fetch of the
    /// A72-like core (Table IV: fetch width 3) rather than the 8-wide
    /// issue, which is a burst capability.
    pub issue_eff: f64,
    /// Load/store micro-ops per cycle (2 AGU ports).
    pub mem_ports: f64,
    /// L1 miss, L2 hit penalty in cycles.
    pub l2_hit_latency: f64,
    /// L2 miss (DRAM) penalty in cycles (~57 ns at 3 GHz, DDR3-1600).
    pub dram_latency: f64,
    /// Memory-level parallelism: average outstanding misses the OoO
    /// window overlaps.
    pub mlp: f64,
    /// Branch misprediction pipeline-refill penalty in cycles.
    pub mispredict_penalty: f64,
    /// Core clock in Hz (for converting cycles to seconds).
    pub freq_hz: f64,
}

impl TimingModel {
    /// Constants for the Table IV core.
    pub fn a72_like() -> TimingModel {
        TimingModel {
            issue_eff: 3.0,
            mem_ports: 2.0,
            l2_hit_latency: 13.0,
            dram_latency: 170.0,
            mlp: 4.0,
            mispredict_penalty: 14.0,
            freq_hz: 3.0e9,
        }
    }

    /// Estimated cycles to commit the events in `c`.
    ///
    /// Prefetch-covered misses (`l2_hits_covered`, `dram_covered`)
    /// contribute traffic but no stall — the stream prefetcher issued
    /// them ahead of use.
    pub fn cycles(&self, c: &Counters) -> f64 {
        let issue_bound = c.micro_ops() as f64 / self.issue_eff;
        let mem_bound = c.mem_ops() as f64 / self.mem_ports;
        let l2_hits = c
            .l2_accesses
            .saturating_sub(c.l2_misses)
            .saturating_sub(c.l2_hits_covered) as f64;
        let dram = c.dram_accesses.saturating_sub(c.dram_covered) as f64;
        let miss_stall = (l2_hits * self.l2_hit_latency + dram * self.dram_latency) / self.mlp;
        let branch_stall = c.mispredicts as f64 * self.mispredict_penalty;
        issue_bound.max(mem_bound) + miss_stall + branch_stall
    }

    /// Estimated wall-clock seconds for the events in `c`.
    pub fn seconds(&self, c: &Counters) -> f64 {
        self.cycles(c) / self.freq_hz
    }

    /// Instructions per cycle of the run described by `c`.
    pub fn ipc(&self, c: &Counters) -> f64 {
        let cycles = self.cycles(c);
        if cycles == 0.0 {
            0.0
        } else {
            c.micro_ops() as f64 / cycles
        }
    }
}

impl Default for TimingModel {
    fn default() -> TimingModel {
        TimingModel::a72_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    fn with(ops: u64, loads: u64, l2_acc: u64, l2_miss: u64, dram: u64, mispred: u64) -> Counters {
        let mut c = Counters::default();
        c.bump(OpClass::IntAlu, ops);
        c.bump(OpClass::Load, loads);
        c.l2_accesses = l2_acc;
        c.l2_misses = l2_miss;
        c.dram_accesses = dram;
        c.mispredicts = mispred;
        c
    }

    #[test]
    fn compute_bound_scales_with_issue_width() {
        let t = TimingModel::a72_like();
        let c = with(3000, 0, 0, 0, 0, 0);
        assert_eq!(t.cycles(&c), 1000.0);
    }

    #[test]
    fn memory_port_bound_dominates_load_heavy_code() {
        let t = TimingModel::a72_like();
        // 100 ALU ops but 400 loads: 400/2 = 200 > 500/3.
        let c = with(100, 400, 0, 0, 0, 0);
        assert_eq!(t.cycles(&c), 200.0);
    }

    #[test]
    fn misses_add_damped_stalls() {
        let t = TimingModel::a72_like();
        let no_miss = with(300, 0, 0, 0, 0, 0);
        let mut missy = no_miss;
        missy.l2_accesses = 8;
        missy.l2_misses = 8;
        missy.dram_accesses = 8;
        let delta = t.cycles(&missy) - t.cycles(&no_miss);
        assert_eq!(delta, 8.0 * 170.0 / 4.0);
    }

    #[test]
    fn mispredicts_cost_refills() {
        let t = TimingModel::a72_like();
        let clean = with(300, 0, 0, 0, 0, 0);
        let dirty = with(300, 0, 0, 0, 0, 10);
        assert_eq!(t.cycles(&dirty) - t.cycles(&clean), 140.0);
    }

    #[test]
    fn ipc_and_seconds_are_consistent() {
        let t = TimingModel::a72_like();
        let c = with(3000, 0, 0, 0, 0, 0);
        assert!((t.ipc(&c) - 3.0).abs() < 1e-12);
        assert!((t.seconds(&c) - 1000.0 / 3.0e9).abs() < 1e-18);
        assert_eq!(t.ipc(&Counters::default()), 0.0);
    }
}
