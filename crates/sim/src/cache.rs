use crate::config::{CacheConfig, CpuConfig};

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio (0 with no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Functional tag store only — data never lives here, the simulator only
/// needs hit/miss behaviour. Writes are modelled write-allocate /
/// write-back-free (a store behaves like a load for tag purposes), which
/// matches how the paper counts "L1 D-cache accesses".
///
/// # Examples
///
/// ```
/// use bonsai_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(32));   // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (larger = more recent).
    stamps: Vec<u64>,
    clock: u64,
    set_mask: u64,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        let ways = (cfg.num_sets() * cfg.associativity as u64) as usize;
        Cache {
            cfg,
            tags: vec![u64::MAX; ways],
            stamps: vec![0; ways],
            clock: 0,
            set_mask: cfg.num_sets() - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    /// On miss the line is filled, evicting the LRU way of its set.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let assoc = self.cfg.associativity as usize;
        let base = set * assoc;
        self.clock += 1;
        self.stats.accesses += 1;

        let ways = &mut self.tags[base..base + assoc];
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        self.stats.misses += 1;
        // Fill into the LRU way (invalid ways have stamp 0, so they are
        // naturally chosen first).
        let victim = (0..assoc)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("associativity is positive");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// The line-granular address of `addr` (for access coalescing).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The L1D → L2 → DRAM hierarchy of Table IV, with a sequential stream
/// prefetcher.
///
/// An access probes L1; an L1 miss probes L2; an L2 miss counts a DRAM
/// access. Multi-line references (a 16-byte slice crossing a line, a
/// 12-byte point straddling lines) probe once per touched line.
///
/// A next-line stream prefetcher (the A72 has a stride prefetcher in its
/// L1D) tracks the most recent miss lines: a miss whose predecessor line
/// missed recently is reported as *covered* — the traffic still happens
/// (Figure 10 counts accesses), but the latency is hidden from the
/// timing model, as a running prefetcher would.
///
/// # Examples
///
/// ```
/// use bonsai_sim::{CpuConfig, MemoryHierarchy};
///
/// let mut m = MemoryHierarchy::new(&CpuConfig::a72_like());
/// let r = m.access(0x1000, 12);
/// assert_eq!(r.l1_accesses, 1);
/// assert_eq!(r.dram_accesses, 1); // cold
/// let r2 = m.access(0x1000, 12);
/// assert_eq!(r2.l1_misses, 0);    // warm
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l2: Cache,
    /// Ring of recent miss line numbers (the prefetcher's stream table).
    recent_miss_lines: [u64; STREAM_TABLE],
    next_stream_slot: usize,
}

/// Entries in the prefetcher's recent-miss table.
const STREAM_TABLE: usize = 16;

/// Per-access outcome of a hierarchy probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// L1D probes performed (one per touched line).
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 probes.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Of the L2 probes that hit, how many were prefetch-covered
    /// (latency hidden).
    pub l2_hits_covered: u64,
    /// Of the DRAM accesses, how many were prefetch-covered.
    pub dram_covered: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a CPU configuration.
    pub fn new(cfg: &CpuConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            recent_miss_lines: [u64::MAX; STREAM_TABLE],
            next_stream_slot: 0,
        }
    }

    /// References `bytes` bytes starting at `addr`, probing every level as
    /// needed, and reports what happened.
    pub fn access(&mut self, addr: u64, bytes: u32) -> AccessOutcome {
        debug_assert!(bytes > 0);
        let mut out = AccessOutcome::default();
        let line_bytes = self.l1d.config().line_bytes as u64;
        let first = self.l1d.line_of(addr);
        let last = self.l1d.line_of(addr + bytes as u64 - 1);
        for line in first..=last {
            let line_addr = line * line_bytes;
            out.l1_accesses += 1;
            if !self.l1d.access(line_addr) {
                out.l1_misses += 1;
                // Stream detection: the previous line missed recently.
                let covered = self.recent_miss_lines.contains(&line.wrapping_sub(1));
                self.recent_miss_lines[self.next_stream_slot] = line;
                self.next_stream_slot = (self.next_stream_slot + 1) % STREAM_TABLE;

                out.l2_accesses += 1;
                if self.l2.access(line_addr) {
                    if covered {
                        out.l2_hits_covered += 1;
                    }
                } else {
                    out.l2_misses += 1;
                    out.dram_accesses += 1;
                    if covered {
                        out.dram_covered += 1;
                    }
                }
            }
        }
        out
    }

    /// L1D statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn same_line_hits_after_cold_miss() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(63));
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines with even line index (2 sets): lines 0, 2, 4…
        assert!(!c.access(0)); // line 0 → set 0
        assert!(!c.access(2 * 64)); // line 2 → set 0
        assert!(c.access(0)); // touch line 0: line 2 becomes LRU
        assert!(!c.access(4 * 64)); // fills set 0, evicting line 2
        assert!(c.access(0)); // line 0 still resident
        assert!(!c.access(2 * 64)); // line 2 was evicted
    }

    #[test]
    fn conflict_misses_within_one_set() {
        let mut c = tiny();
        // Three distinct lines mapping to set 0 thrash a 2-way set when
        // accessed round-robin.
        let lines = [0u64, 2, 4];
        for _ in 0..3 {
            for &l in &lines {
                c.access(l * 64);
            }
        }
        assert_eq!(
            c.stats().misses,
            9,
            "round-robin over 3 lines in 2 ways never hits"
        );
    }

    #[test]
    fn hierarchy_miss_propagates_to_dram_once() {
        let mut m = MemoryHierarchy::new(&CpuConfig::a72_like());
        let r = m.access(0x2000, 4);
        assert_eq!(
            (
                r.l1_accesses,
                r.l1_misses,
                r.l2_accesses,
                r.l2_misses,
                r.dram_accesses
            ),
            (1, 1, 1, 1, 1)
        );
        // L1 hit afterwards; L2 untouched.
        let r = m.access(0x2004, 4);
        assert_eq!((r.l1_accesses, r.l1_misses, r.l2_accesses), (1, 0, 0));
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = CpuConfig::a72_like();
        let mut m = MemoryHierarchy::new(&cfg);
        m.access(0, 4);
        // Evict line 0 from L1 (2-way, 256 sets): touch two more lines in
        // L1 set 0, i.e. strides of 256 lines × 64 B.
        m.access(256 * 64, 4);
        m.access(512 * 64, 4);
        let r = m.access(0, 4);
        assert_eq!(r.l1_misses, 1);
        assert_eq!(r.l2_accesses, 1);
        assert_eq!(r.l2_misses, 0, "line 0 still lives in the 16-way L2");
    }

    #[test]
    fn straddling_reference_touches_two_lines() {
        let mut m = MemoryHierarchy::new(&CpuConfig::a72_like());
        let r = m.access(60, 8); // crosses the 64-byte boundary
        assert_eq!(r.l1_accesses, 2);
    }
}
