//! Event-based CPU performance model for the K-D Bonsai reproduction.
//!
//! The paper evaluates K-D Bonsai in gem5 (cycle-accurate, full-system,
//! ARM Cortex-A72-like, Table IV) with McPAT energy modelling. That stack
//! is not reproducible offline, so this crate substitutes an *event-based*
//! model: the instrumented algorithms in `bonsai-kdtree`, `bonsai-core`,
//! `bonsai-cluster` and `bonsai-ndt` emit
//!
//! * committed micro-ops by class ([`OpClass`]),
//! * memory references with simulated addresses (driven through a
//!   set-associative L1D/L2/DRAM hierarchy, [`MemoryHierarchy`]),
//! * branch outcomes (predicted by a gshare predictor, [`Gshare`]),
//!
//! into a [`SimEngine`]. An analytic out-of-order timing formula
//! ([`TimingModel`]) converts the counters into cycles, and a McPAT-like
//! per-event energy model ([`EnergyModel`]) converts them into joules.
//! Every result the paper reports is a *relative* count or a distribution
//! of relative latencies, which is exactly what this style of model
//! captures.
//!
//! Counters are attributed to the currently active [`Kernel`], which is
//! how the Figure 2 "share of execution in radius search" and the
//! Figure 9a "extract kernel" breakdowns are produced.
//!
//! # Examples
//!
//! ```
//! use bonsai_sim::{CpuConfig, Kernel, OpClass, SimEngine, TimingModel};
//!
//! let mut sim = SimEngine::new(&CpuConfig::a72_like());
//! let base = sim.alloc(1024, 64);
//! sim.set_kernel(Kernel::LeafScan);
//! sim.load(base, 12);          // one 12-byte point load
//! sim.exec(OpClass::FpAlu, 8); // distance math
//! let t = sim.totals();
//! assert_eq!(t.loads, 1);
//! assert!(TimingModel::a72_like().cycles(&t) > 0.0);
//! ```

#![forbid(unsafe_code)]

mod addr;
mod branch;
mod cache;
mod config;
mod counters;
mod energy;
mod engine;
mod hwcost;
mod stats;
mod timing;

pub use addr::AddressSpace;
pub use branch::Gshare;
pub use cache::{Cache, CacheStats, MemoryHierarchy};
pub use config::{CacheConfig, CpuConfig};
pub use counters::{Counters, Kernel, OpClass};
pub use energy::EnergyModel;
pub use engine::SimEngine;
pub use hwcost::{HwCostModel, UnitCost};
pub use stats::Distribution;
pub use timing::TimingModel;
