use crate::{Counters, OpClass};

/// McPAT-substitute energy model.
///
/// Energy is dynamic (per committed event, with per-class coefficients)
/// plus static (leakage power times runtime):
///
/// ```text
/// E = Σ_class ops(class) × e(class)
///   + accesses(L1) × e_L1 + accesses(L2) × e_L2 + accesses(DRAM) × e_DRAM
///   + P_static × t
/// ```
///
/// Coefficients are order-of-magnitude values for a 14 nm mobile-class
/// core (the paper scales its 32 nm McPAT output to 14 nm with the
/// Stillmaker equations); the static power matches Table V's 1.15 W.
/// The Bonsai FU coefficients are derived from Table V's synthesized
/// dynamic power (24 mW total for the new units — tiny per-op costs).
/// As with timing, the experiments report relative changes, which are
/// insensitive to the absolute scale.
///
/// # Examples
///
/// ```
/// use bonsai_sim::{Counters, EnergyModel, OpClass};
///
/// let mut c = Counters::default();
/// c.bump(OpClass::IntAlu, 1_000_000);
/// let e = EnergyModel::a72_like();
/// let joules = e.joules(&c, 0.001);
/// assert!(joules > 0.001 * 1.15); // at least the static share
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per scalar micro-op (decode + rename + ALU + commit), J.
    pub per_scalar_op: f64,
    /// Energy per 128-bit vector micro-op, J.
    pub per_vector_op: f64,
    /// Energy per Bonsai codec micro-op (compress/decompress pass), J.
    pub per_codec_op: f64,
    /// Energy per SQDWE vector micro-op (4 lanes + LUT lookup), J.
    pub per_sqdwe_op: f64,
    /// Energy per L1D access, J.
    pub per_l1_access: f64,
    /// Energy per L2 access, J.
    pub per_l2_access: f64,
    /// Energy per DRAM access, J.
    pub per_dram_access: f64,
    /// Leakage (static) power, W — Table V's 1.15 W.
    pub static_power: f64,
}

impl EnergyModel {
    /// Coefficients for the Table IV / Table V platform.
    pub fn a72_like() -> EnergyModel {
        EnergyModel {
            per_scalar_op: 20e-12,
            per_vector_op: 45e-12,
            per_codec_op: 18e-12,
            per_sqdwe_op: 30e-12,
            per_l1_access: 15e-12,
            per_l2_access: 90e-12,
            per_dram_access: 3_000e-12,
            static_power: 1.15,
        }
    }

    /// Dynamic energy of the events in `c`, in joules.
    pub fn dynamic_joules(&self, c: &Counters) -> f64 {
        let scalar = c.ops_of(OpClass::IntAlu)
            + c.ops_of(OpClass::FpAlu)
            + c.ops_of(OpClass::Load)
            + c.ops_of(OpClass::Store)
            + c.ops_of(OpClass::Branch);
        scalar as f64 * self.per_scalar_op
            + c.ops_of(OpClass::VecAlu) as f64 * self.per_vector_op
            + c.ops_of(OpClass::BonsaiCodec) as f64 * self.per_codec_op
            + c.ops_of(OpClass::BonsaiSqdwe) as f64 * self.per_sqdwe_op
            + c.l1_accesses as f64 * self.per_l1_access
            + c.l2_accesses as f64 * self.per_l2_access
            + c.dram_accesses as f64 * self.per_dram_access
    }

    /// Total energy for the events in `c` over a runtime of `seconds`.
    pub fn joules(&self, c: &Counters, seconds: f64) -> f64 {
        self.dynamic_joules(c) + self.static_power * seconds
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::a72_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_share_scales_with_time() {
        let e = EnergyModel::a72_like();
        let c = Counters::default();
        assert!((e.joules(&c, 2.0) - 2.3).abs() < 1e-12);
    }

    #[test]
    fn dram_dominates_cache_per_access() {
        let e = EnergyModel::a72_like();
        assert!(e.per_dram_access > 10.0 * e.per_l2_access);
        assert!(e.per_l2_access > 2.0 * e.per_l1_access);
    }

    #[test]
    fn fewer_events_cost_less() {
        let e = EnergyModel::a72_like();
        let mut big = Counters::default();
        big.bump(OpClass::IntAlu, 1000);
        big.l1_accesses = 500;
        let mut small = Counters::default();
        small.bump(OpClass::IntAlu, 800);
        small.l1_accesses = 400;
        assert!(e.dynamic_joules(&small) < e.dynamic_joules(&big));
    }

    #[test]
    fn bonsai_op_classes_are_billed() {
        let e = EnergyModel::a72_like();
        let mut c = Counters::default();
        c.bump(OpClass::BonsaiCodec, 10);
        c.bump(OpClass::BonsaiSqdwe, 20);
        let expect = 10.0 * e.per_codec_op + 20.0 * e.per_sqdwe_op;
        assert!((e.dynamic_joules(&c) - expect).abs() < 1e-18);
    }
}
