//! The Table V hardware-cost model.
//!
//! The paper synthesizes Verilog for the two new hardware blocks
//! (compression/decompression unit, 4× square-of-differences FUs) with
//! Synopsys Design Compiler at 14 nm and scales the McPAT baseline CPU
//! from 32 nm to 14 nm. Synthesis cannot run offline, so the block-level
//! results are **constants taken from the paper's Table V**; this module
//! reproduces the table's derived quantities (totals and relative
//! changes), which is what the area/power experiment regenerates.

/// Area and power of one hardware block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitCost {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Dynamic power in W.
    pub dynamic_w: f64,
    /// Static (leakage) power in W.
    pub static_w: f64,
}

impl UnitCost {
    /// Sum of two block costs.
    pub fn plus(self, other: UnitCost) -> UnitCost {
        UnitCost {
            area_mm2: self.area_mm2 + other.area_mm2,
            dynamic_w: self.dynamic_w + other.dynamic_w,
            static_w: self.static_w + other.static_w,
        }
    }
}

/// The Table V cost model: baseline processor vs. the added Bonsai units.
///
/// # Examples
///
/// ```
/// use bonsai_sim::HwCostModel;
///
/// let hw = HwCostModel::table5();
/// let rel = hw.relative_area_increase();
/// assert!((rel - 0.0036).abs() < 0.0002); // the paper's +0.36 %
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HwCostModel {
    /// The baseline processor including L2 (McPAT, scaled to 14 nm).
    pub processor: UnitCost,
    /// The compression/decompression unit (ZipPts buffer + logic).
    pub codec_unit: UnitCost,
    /// The four `(A−B′)²`-with-error FUs.
    pub sqdwe_units: UnitCost,
}

impl HwCostModel {
    /// The constants of the paper's Table V.
    pub fn table5() -> HwCostModel {
        HwCostModel {
            processor: UnitCost {
                area_mm2: 14.26,
                dynamic_w: 1.86,
                static_w: 1.15,
            },
            codec_unit: UnitCost {
                area_mm2: 0.0191,
                dynamic_w: 0.0095,
                static_w: 6.29e-6,
            },
            sqdwe_units: UnitCost {
                area_mm2: 0.0320,
                dynamic_w: 0.0144,
                static_w: 4.55e-6,
            },
        }
    }

    /// Total cost of the added K-D Bonsai hardware.
    pub fn bonsai_total(&self) -> UnitCost {
        self.codec_unit.plus(self.sqdwe_units)
    }

    /// Relative area increase over the baseline processor.
    pub fn relative_area_increase(&self) -> f64 {
        self.bonsai_total().area_mm2 / self.processor.area_mm2
    }

    /// Relative dynamic-power increase over the baseline processor.
    pub fn relative_dynamic_increase(&self) -> f64 {
        self.bonsai_total().dynamic_w / self.processor.dynamic_w
    }

    /// Relative static-power increase over the baseline processor.
    pub fn relative_static_increase(&self) -> f64 {
        self.bonsai_total().static_w / self.processor.static_w
    }
}

impl Default for HwCostModel {
    fn default() -> HwCostModel {
        HwCostModel::table5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table5() {
        let hw = HwCostModel::table5();
        let total = hw.bonsai_total();
        assert!((total.area_mm2 - 0.0511).abs() < 1e-9);
        assert!((total.dynamic_w - 0.0239).abs() < 2e-4); // paper rounds to 0.0240
        assert!((total.static_w - 1.084e-5).abs() < 1e-8);
    }

    #[test]
    fn relative_changes_match_table5() {
        let hw = HwCostModel::table5();
        assert!((hw.relative_area_increase() - 0.0036).abs() < 1e-4);
        assert!((hw.relative_dynamic_increase() - 0.0129).abs() < 1e-3);
        assert!(hw.relative_static_increase() < 1e-4); // "0.001 %"
    }
}
