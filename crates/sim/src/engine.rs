use crate::{AddressSpace, Counters, CpuConfig, Gshare, Kernel, MemoryHierarchy, OpClass};

/// The central event sink of the performance model.
///
/// Instrumented algorithms hold a `&mut SimEngine` and report committed
/// micro-ops, memory references, and branch outcomes as they execute.
/// The engine routes memory references through the cache hierarchy and
/// branches through the predictor, attributing all counts to the
/// currently active [`Kernel`].
///
/// A disabled engine ([`SimEngine::disabled`]) turns every report into a
/// cheap no-op so the same library code can run un-instrumented (library
/// users who just want a compressed k-d tree, examples, functional
/// tests).
///
/// # Examples
///
/// ```
/// use bonsai_sim::{CpuConfig, Kernel, OpClass, SimEngine};
///
/// let mut sim = SimEngine::new(&CpuConfig::a72_like());
/// let addr = sim.alloc(64, 64);
/// let prev = sim.set_kernel(Kernel::Traverse);
/// sim.load(addr, 8);
/// sim.branch(1, true);
/// sim.set_kernel(prev);
/// assert_eq!(sim.kernel_counters(Kernel::Traverse).loads, 1);
/// assert_eq!(sim.totals().branches, 1);
/// ```
#[derive(Debug)]
pub struct SimEngine {
    enabled: bool,
    kernel: Kernel,
    counters: [Counters; Kernel::COUNT],
    hierarchy: MemoryHierarchy,
    predictor: Gshare,
    space: AddressSpace,
}

/// Gshare index bits: 4 K counters, a mid-size predictor appropriate for
/// the modelled A72-class core.
const GSHARE_BITS: u32 = 12;

impl SimEngine {
    /// Creates an enabled engine for the given CPU configuration.
    pub fn new(cfg: &CpuConfig) -> SimEngine {
        SimEngine {
            enabled: true,
            kernel: Kernel::Other,
            counters: [Counters::default(); Kernel::COUNT],
            hierarchy: MemoryHierarchy::new(cfg),
            predictor: Gshare::new(GSHARE_BITS),
            space: AddressSpace::new(),
        }
    }

    /// Creates an engine whose reporting methods are no-ops.
    ///
    /// Allocation still works (addresses must stay unique so data layout
    /// code is oblivious to the mode).
    pub fn disabled() -> SimEngine {
        let mut engine = SimEngine::new(&CpuConfig::a72_like());
        engine.enabled = false;
        engine
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Reserves simulated memory; see [`AddressSpace::alloc`].
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        self.space.alloc(bytes, align)
    }

    /// Switches the kernel that subsequent events are attributed to and
    /// returns the previous one (restore it when leaving the phase).
    pub fn set_kernel(&mut self, kernel: Kernel) -> Kernel {
        std::mem::replace(&mut self.kernel, kernel)
    }

    /// The currently active kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Reports `n` committed micro-ops of class `class`.
    #[inline]
    pub fn exec(&mut self, class: OpClass, n: u64) {
        if self.enabled {
            self.counters[self.kernel as usize].bump(class, n);
        }
    }

    /// Reports a load micro-op of `bytes` useful bytes at `addr`,
    /// probing the cache hierarchy.
    #[inline]
    pub fn load(&mut self, addr: u64, bytes: u32) {
        if !self.enabled {
            return;
        }
        let c = &mut self.counters[self.kernel as usize];
        c.bump(OpClass::Load, 1);
        c.loaded_bytes += bytes as u64;
        let out = self.hierarchy.access(addr, bytes);
        let c = &mut self.counters[self.kernel as usize];
        c.l1_accesses += out.l1_accesses;
        c.l1_misses += out.l1_misses;
        c.l2_accesses += out.l2_accesses;
        c.l2_misses += out.l2_misses;
        c.dram_accesses += out.dram_accesses;
        c.l2_hits_covered += out.l2_hits_covered;
        c.dram_covered += out.dram_covered;
    }

    /// Reports a store micro-op of `bytes` useful bytes at `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, bytes: u32) {
        if !self.enabled {
            return;
        }
        let c = &mut self.counters[self.kernel as usize];
        c.bump(OpClass::Store, 1);
        c.stored_bytes += bytes as u64;
        let out = self.hierarchy.access(addr, bytes);
        let c = &mut self.counters[self.kernel as usize];
        c.l1_accesses += out.l1_accesses;
        c.l1_misses += out.l1_misses;
        c.l2_accesses += out.l2_accesses;
        c.l2_misses += out.l2_misses;
        c.dram_accesses += out.dram_accesses;
        c.l2_hits_covered += out.l2_hits_covered;
        c.dram_covered += out.dram_covered;
    }

    /// Reports a conditional branch at static site `site` with outcome
    /// `taken`.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) {
        if !self.enabled {
            return;
        }
        let correct = self.predictor.predict_and_update(site, taken);
        let c = &mut self.counters[self.kernel as usize];
        c.bump(OpClass::Branch, 1);
        if !correct {
            c.mispredicts += 1;
        }
    }

    /// The counters attributed to one kernel.
    pub fn kernel_counters(&self, kernel: Kernel) -> &Counters {
        &self.counters[kernel as usize]
    }

    /// The sum of counters over a set of kernels.
    pub fn sum_counters(&self, kernels: &[Kernel]) -> Counters {
        let mut total = Counters::default();
        for &k in kernels {
            total += self.counters[k as usize];
        }
        total
    }

    /// The sum of counters over all kernels.
    pub fn totals(&self) -> Counters {
        self.sum_counters(&Kernel::ALL)
    }

    /// Resets all counters (cache and predictor state are kept warm, as
    /// between frames of a continuously running pipeline).
    pub fn reset_counters(&mut self) {
        self.counters = [Counters::default(); Kernel::COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_attribute_to_active_kernel() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        sim.set_kernel(Kernel::Build);
        sim.exec(OpClass::IntAlu, 10);
        let prev = sim.set_kernel(Kernel::LeafScan);
        assert_eq!(prev, Kernel::Build);
        sim.exec(OpClass::FpAlu, 5);
        assert_eq!(
            sim.kernel_counters(Kernel::Build).ops_of(OpClass::IntAlu),
            10
        );
        assert_eq!(
            sim.kernel_counters(Kernel::LeafScan).ops_of(OpClass::FpAlu),
            5
        );
        assert_eq!(sim.kernel_counters(Kernel::Build).ops_of(OpClass::FpAlu), 0);
        assert_eq!(sim.totals().micro_ops(), 15);
    }

    #[test]
    fn loads_drive_the_hierarchy() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let a = sim.alloc(128, 64);
        sim.load(a, 12);
        sim.load(a, 12);
        let t = sim.totals();
        assert_eq!(t.loads, 2);
        assert_eq!(t.loaded_bytes, 24);
        assert_eq!(t.l1_accesses, 2);
        assert_eq!(t.l1_misses, 1);
        assert_eq!(t.dram_accesses, 1);
    }

    #[test]
    fn disabled_engine_records_nothing_but_still_allocates() {
        let mut sim = SimEngine::disabled();
        let a = sim.alloc(64, 64);
        let b = sim.alloc(64, 64);
        assert_ne!(a, b);
        sim.load(a, 8);
        sim.store(b, 8);
        sim.exec(OpClass::VecAlu, 100);
        sim.branch(1, true);
        assert_eq!(sim.totals(), Counters::default());
    }

    #[test]
    fn sum_counters_over_groups() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        sim.set_kernel(Kernel::Traverse);
        sim.exec(OpClass::IntAlu, 3);
        sim.set_kernel(Kernel::LeafScan);
        sim.exec(OpClass::IntAlu, 4);
        sim.set_kernel(Kernel::Preprocess);
        sim.exec(OpClass::IntAlu, 90);
        let rs = sim.sum_counters(&Kernel::RADIUS_SEARCH);
        assert_eq!(rs.micro_ops(), 7);
    }

    #[test]
    fn reset_clears_counters_only() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let a = sim.alloc(64, 64);
        sim.load(a, 4);
        sim.reset_counters();
        assert_eq!(sim.totals(), Counters::default());
        // Cache stays warm: the same line now hits.
        sim.load(a, 4);
        assert_eq!(sim.totals().l1_misses, 0);
    }

    #[test]
    fn branches_count_mispredicts() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        for i in 0..100 {
            sim.branch(9, i % 2 == 0);
        }
        let t = sim.totals();
        assert_eq!(t.branches, 100);
        assert!(t.mispredicts < 100);
    }
}
