/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use bonsai_sim::CacheConfig;
///
/// let l1 = CacheConfig::new(32 * 1024, 2, 64);
/// assert_eq!(l1.num_sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent (capacity not divisible
    /// into `associativity` ways of power-of-two lines).
    pub fn new(size_bytes: u64, associativity: u32, line_bytes: u32) -> CacheConfig {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(associativity > 0, "associativity must be positive");
        let cfg = CacheConfig {
            size_bytes,
            associativity,
            line_bytes,
        };
        let sets = cfg.num_sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two, got {sets}"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.associativity as u64 * self.line_bytes as u64)
    }
}

/// The simulated CPU configuration — the paper's Table IV.
///
/// `a72_like()` reproduces the table: an out-of-order ARMv8 at 3 GHz,
/// fetch width 3, issue width 8, NEON 128-bit SIMD, 32 KB 2-way L1D,
/// 1 MB 16-way L2, DDR3-1600 main memory.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// Front-end fetch width (instructions per cycle).
    pub fetch_width: u32,
    /// Issue width (micro-ops per cycle).
    pub issue_width: u32,
    /// Number of load/store ports.
    pub mem_ports: u32,
    /// SIMD width in bits (128 for NEON).
    pub simd_bits: u32,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
}

impl CpuConfig {
    /// The Table IV baseline: OoO ARM v8 64-bit @ 3 GHz, 32 KB 2-way L1D,
    /// 1 MB 16-way L2, 64 B lines, DDR3-1600.
    pub fn a72_like() -> CpuConfig {
        CpuConfig {
            freq_hz: 3.0e9,
            fetch_width: 3,
            issue_width: 8,
            mem_ports: 2,
            simd_bits: 128,
            l1d: CacheConfig::new(32 * 1024, 2, 64),
            l2: CacheConfig::new(1024 * 1024, 16, 64),
        }
    }

    /// Number of 32-bit SIMD lanes (4 for NEON) — the lane count of the
    /// Bonsai square-of-differences vector FU group (Figure 8).
    pub fn simd_lanes_f32(&self) -> u32 {
        self.simd_bits / 32
    }
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig::a72_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_geometry() {
        let cfg = CpuConfig::a72_like();
        assert_eq!(cfg.l1d.num_sets(), 256);
        assert_eq!(cfg.l2.num_sets(), 1024);
        assert_eq!(cfg.simd_lanes_f32(), 4);
        assert_eq!(cfg.freq_hz, 3.0e9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        CacheConfig::new(32 * 1024, 2, 48);
    }

    #[test]
    #[should_panic(expected = "sets must be a power of two")]
    fn inconsistent_geometry_rejected() {
        CacheConfig::new(48 * 1024, 5, 64);
    }
}
