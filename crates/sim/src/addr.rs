/// A bump allocator for the simulated data address space.
///
/// Instrumented data structures (the point array, the k-d tree node pool,
/// the `cmprsd_strct_array`, …) reserve address ranges here so that the
/// cache hierarchy sees realistic layouts: contiguous compressed leaves
/// versus index-scattered raw points is precisely the locality difference
/// K-D Bonsai exploits.
///
/// Addresses are virtual = physical (the paper runs one pinned task), and
/// nothing is ever freed — each simulated frame builds a fresh
/// [`AddressSpace`].
///
/// # Examples
///
/// ```
/// use bonsai_sim::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let a = space.alloc(100, 64);
/// let b = space.alloc(16, 16);
/// assert_eq!(a % 64, 0);
/// assert!(b >= a + 100);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    allocated: u64,
}

/// Data segment base. Non-zero so that address arithmetic bugs (absolute
/// vs. relative) surface as obviously wrong addresses in tests.
const BASE: u64 = 0x1000_0000;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            next: BASE,
            allocated: 0,
        }
    }

    /// Reserves `bytes` bytes aligned to `align` and returns the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        self.allocated += bytes;
        base
    }

    /// Total bytes handed out (excluding alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }
}

impl Default for AddressSpace {
    fn default() -> AddressSpace {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut s = AddressSpace::new();
        let a = s.alloc(10, 8);
        let b = s.alloc(100, 64);
        let c = s.alloc(1, 1);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(c >= b + 100);
        assert_eq!(s.allocated_bytes(), 111);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_panics() {
        AddressSpace::new().alloc(8, 3);
    }

    #[test]
    fn base_is_nonzero() {
        let mut s = AddressSpace::new();
        assert!(s.alloc(1, 1) >= 0x1000_0000);
    }
}
