use bonsai_floatfmt::Half;
use bonsai_geom::Point3;
use bonsai_isa::Machine;
use bonsai_kdtree::{KdTree, KdTreeConfig, Neighbor, Node, SearchScratch, SearchStats};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::directory::CompressedDirectory;
use crate::processor::BonsaiLeafProcessor;

/// Leaf-contiguous SoA of the *f16-approximate* coordinates plus their
/// f16 exponent fields, baked at build time: slot `i` mirrors the
/// tree's `vind()[i]` slot, with each coordinate already decoded to the
/// `f32` value `LDDCP` would materialize in a vector register. The fast
/// (uninstrumented) compressed scan sweeps these rows linearly instead
/// of running the instruction-level decode per leaf visit.
///
/// The rows mirror the tree's lane-padded layout too: every leaf's
/// padding slots hold the `+∞` sentinel
/// ([`PAD_COORD`](bonsai_kdtree::simd::PAD_COORD)), so the SIMD shell
/// sweep can load whole lane groups; the sentinel lanes are clipped
/// before classification (their error terms are non-finite).
#[derive(Debug, Clone, Default)]
pub(crate) struct ApproxSoa {
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    pub z: Vec<f32>,
    /// f16 exponent fields, the `part_error_mem` LUT keys (Eq. 9).
    pub ex: Vec<u8>,
    pub ey: Vec<u8>,
    pub ez: Vec<u8>,
}

impl ApproxSoa {
    fn bake(tree: &KdTree) -> ApproxSoa {
        let n = tree.vind().len();
        let mut soa = ApproxSoa {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            ex: Vec::with_capacity(n),
            ey: Vec::with_capacity(n),
            ez: Vec::with_capacity(n),
        };
        for &idx in tree.vind() {
            if idx == bonsai_kdtree::simd::PAD_SLOT {
                soa.x.push(bonsai_kdtree::simd::PAD_COORD);
                soa.y.push(bonsai_kdtree::simd::PAD_COORD);
                soa.z.push(bonsai_kdtree::simd::PAD_COORD);
                soa.ex.push(0);
                soa.ey.push(0);
                soa.ez.push(0);
                continue;
            }
            let p = tree.points()[idx as usize];
            let hx = Half::from_f32(p.x);
            let hy = Half::from_f32(p.y);
            let hz = Half::from_f32(p.z);
            soa.x.push(hx.to_f32());
            soa.y.push(hy.to_f32());
            soa.z.push(hz.to_f32());
            soa.ex.push(hx.exponent_field());
            soa.ey.push(hy.exponent_field());
            soa.ez.push(hz.exponent_field());
        }
        soa
    }

    /// Grows the rows to cover `n` slots (new slots hold the padding
    /// sentinel until their leaf is re-baked). Never shrinks.
    fn ensure_slots(&mut self, n: usize) {
        if n > self.x.len() {
            self.x.resize(n, bonsai_kdtree::simd::PAD_COORD);
            self.y.resize(n, bonsai_kdtree::simd::PAD_COORD);
            self.z.resize(n, bonsai_kdtree::simd::PAD_COORD);
            self.ex.resize(n, 0);
            self.ey.resize(n, 0);
            self.ez.resize(n, 0);
        }
    }

    /// Re-bakes one slot from its exact `f32` point.
    fn set_slot(&mut self, i: usize, p: Point3) {
        let hx = Half::from_f32(p.x);
        let hy = Half::from_f32(p.y);
        let hz = Half::from_f32(p.z);
        self.x[i] = hx.to_f32();
        self.y[i] = hy.to_f32();
        self.z[i] = hz.to_f32();
        self.ex[i] = hx.exponent_field();
        self.ey[i] = hy.exponent_field();
        self.ez[i] = hz.exponent_field();
    }

    /// Writes the padding sentinel into slot `i` (a vacated or padded
    /// tail slot of a re-baked leaf).
    fn pad_slot(&mut self, i: usize) {
        self.x[i] = bonsai_kdtree::simd::PAD_COORD;
        self.y[i] = bonsai_kdtree::simd::PAD_COORD;
        self.z[i] = bonsai_kdtree::simd::PAD_COORD;
        self.ex[i] = 0;
        self.ey[i] = 0;
        self.ez[i] = 0;
    }
}

/// A k-d tree whose leaves carry Bonsai-compressed copies of their
/// points.
///
/// Construction builds the PCL-style tree, then walks its leaves and
/// compresses each through the Bonsai instruction sequence (`LDSPZPB` per
/// point, `CPRZPB`, `STZPB`), filling the [`CompressedDirectory`]. The
/// compression work is charged to the `Compress` kernel — the paper's
/// build-time overhead that the ~52 search visits per leaf amortize.
///
/// See the [crate docs](crate) for an end-to-end example.
///
/// `Clone` is deliberate: the epoch publication scheme
/// ([`EpochPublisher`](crate::EpochPublisher)) builds the next epoch's
/// tree off to the side as a deep copy while readers keep scanning the
/// published one.
#[derive(Debug, Clone)]
pub struct BonsaiTree {
    tree: KdTree,
    directory: CompressedDirectory,
    approx: ApproxSoa,
}

/// Aggregate compression statistics of a built tree (Sections III-A and
/// V-B numbers).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompressionStats {
    /// Number of compressed leaves.
    pub leaves: u32,
    /// Total points stored in leaves.
    pub points: u64,
    /// Slice-padded bytes of the `cmprsd_strct_array`.
    pub compressed_bytes: u64,
    /// Useful baseline bytes for the same points (12 B per point).
    pub baseline_bytes: u64,
    /// Leaves whose x coordinate shares one `<sign, exp>`.
    pub x_compressed: u32,
    /// Leaves whose y coordinate shares one `<sign, exp>`.
    pub y_compressed: u32,
    /// Leaves whose z coordinate shares one `<sign, exp>`.
    pub z_compressed: u32,
}

impl CompressionStats {
    /// Compressed size as a fraction of the baseline point bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.baseline_bytes == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 / self.baseline_bytes as f64
        }
    }

    /// Fraction of leaves with a uniform `<sign, exp>` on the given
    /// coordinate (0 = x, 1 = y, 2 = z) — the paper's 78 % / 83 %
    /// observation.
    pub fn uniform_fraction(&self, coord: usize) -> f64 {
        if self.leaves == 0 {
            return 0.0;
        }
        let n = match coord {
            0 => self.x_compressed,
            1 => self.y_compressed,
            2 => self.z_compressed,
            // lint: allow(panic-free-serving) — stats accessor API
            // misuse (coord is 0..3 by its doc contract), not a
            // serving-path input condition.
            _ => panic!("coordinate index {coord} out of range"),
        };
        n as f64 / self.leaves as f64
    }
}

impl BonsaiTree {
    /// Builds the tree and compresses every leaf.
    ///
    /// Tree construction charges the `Build` kernel; leaf compression
    /// charges `Compress`.
    pub fn build(points: Vec<Point3>, cfg: KdTreeConfig, sim: &mut SimEngine) -> BonsaiTree {
        let tree = KdTree::build(points, cfg, sim);
        BonsaiTree::compress_whole(tree, sim)
    }

    /// [`build`](BonsaiTree::build) with the tree construction fanned
    /// out across scoped worker threads (see
    /// [`KdTree::build_parallel`]); the compression pass is unchanged.
    /// Uninstrumented — no simulator events are recorded.
    pub fn build_parallel(points: Vec<Point3>, cfg: KdTreeConfig, threads: usize) -> BonsaiTree {
        let tree = KdTree::build_parallel(points, cfg, threads);
        BonsaiTree::compress_whole(tree, &mut SimEngine::disabled())
    }

    fn compress_whole(tree: KdTree, sim: &mut SimEngine) -> BonsaiTree {
        let mut directory = CompressedDirectory::new(sim, tree.nodes().len());
        let mut machine = Machine::new();
        let prev = sim.set_kernel(Kernel::Compress);
        for id in 0..tree.nodes().len() {
            let Node::Leaf { start, count } = tree.nodes()[id] else {
                continue;
            };
            compress_leaf_structure(
                sim,
                &mut machine,
                &tree,
                &mut directory,
                id as u32,
                start,
                count,
                false,
            );
        }
        sim.set_kernel(prev);
        let approx = ApproxSoa::bake(&tree);
        BonsaiTree {
            tree,
            directory,
            approx,
        }
    }

    /// Inserts a point (see [`KdTree::insert`]), returning its new
    /// cloud index, or `None` for a non-finite point. The touched
    /// leaf's compressed structure and f16 rows are **not** re-baked
    /// here — they are marked dirty and re-compressed once by the next
    /// [`commit`](BonsaiTree::commit), so a burst of mutations pays one
    /// re-bake per touched leaf instead of one per mutation.
    pub fn insert(&mut self, sim: &mut SimEngine, p: Point3) -> Option<u32> {
        self.tree.insert(sim, p)
    }

    /// Deletes point `idx` (see [`KdTree::delete`]); `false` is a
    /// constant-time no-op. Like [`insert`](BonsaiTree::insert), the
    /// re-bake of the touched leaf is deferred to
    /// [`commit`](BonsaiTree::commit).
    pub fn delete(&mut self, sim: &mut SimEngine, idx: u32) -> bool {
        self.tree.delete(sim, idx)
    }

    /// Whether mutations are pending a [`commit`](BonsaiTree::commit).
    /// Searching while pending is a contract violation — the
    /// compressed search entry points and the
    /// [`directory`](BonsaiTree::directory) accessor panic on it, in
    /// release builds too, because the compressed structures of dirty
    /// leaves still describe their pre-mutation points and would be
    /// served silently otherwise.
    pub fn has_pending_rebake(&self) -> bool {
        self.tree.has_dirty_nodes()
    }

    /// Re-bakes every dirty leaf — and only the dirty leaves: their
    /// f16-approximate SoA rows are recomputed and their compressed
    /// structures re-encoded (`LDSPZPB`/`CPRZPB`/`STZPB`, charged to
    /// the `Compress` kernel); directory entries of nodes that stopped
    /// being live leaves are cleared. Untouched leaves keep their baked
    /// bytes. Returns the number of leaves re-compressed.
    pub fn commit(&mut self, sim: &mut SimEngine) -> usize {
        if !self.tree.has_dirty_nodes() {
            return 0;
        }
        let dirty = self.tree.drain_dirty_nodes();
        self.approx.ensure_slots(self.tree.vind().len());
        self.directory.ensure_nodes(self.tree.nodes().len());
        let mut machine = Machine::new();
        let prev = sim.set_kernel(Kernel::Compress);
        let mut rebaked = 0;
        for id in dirty {
            match self.tree.nodes()[id as usize] {
                Node::Leaf { start, count } if count > 0 => {
                    for i in start as usize..(start + count) as usize {
                        let idx = self.tree.vind()[i];
                        self.approx.set_slot(i, self.tree.points()[idx as usize]);
                    }
                    // Re-sentinel the lane-padding tail: deletions may
                    // have shrunk the leaf, leaving stale f16 rows a
                    // SIMD lane group would otherwise load.
                    let fp = self.tree.leaf_slot_footprint(id) as usize;
                    for i in (start + count) as usize..start as usize + fp {
                        self.approx.pad_slot(i);
                    }
                    compress_leaf_structure(
                        sim,
                        &mut machine,
                        &self.tree,
                        &mut self.directory,
                        id,
                        start,
                        count,
                        true,
                    );
                    rebaked += 1;
                }
                Node::Leaf { start, .. } => {
                    // A hollowed-out (count = 0) leaf owns no
                    // compressed structure, but it still owns its slot
                    // footprint — re-sentinel it so the f16 rows never
                    // carry stale points under a live leaf.
                    let fp = self.tree.leaf_slot_footprint(id) as usize;
                    for i in start as usize..start as usize + fp {
                        self.approx.pad_slot(i);
                    }
                    self.directory.clear(id);
                }
                // Retired slots and leaf→interior splits no longer own
                // a compressed structure (their abandoned slot ranges
                // are garbage no sweep can reach).
                Node::Interior { .. } => self.directory.clear(id),
            }
        }
        sim.set_kernel(prev);
        rebaked
    }

    /// Applies a frame diff in one call: deletes `removed` (dead
    /// indices are skipped), inserts `added` (non-finite points are
    /// skipped), then [`commit`](BonsaiTree::commit)s the touched
    /// leaves. Returns the new cloud indices of the accepted inserts,
    /// in `added` order.
    pub fn update(&mut self, sim: &mut SimEngine, added: &[Point3], removed: &[u32]) -> Vec<u32> {
        for &idx in removed {
            self.delete(sim, idx);
        }
        let inserted = added.iter().filter_map(|&p| self.insert(sim, p)).collect();
        self.commit(sim);
        inserted
    }

    /// Compacts the tree's fragmented storage and replays the move
    /// through the compressed layers: the underlying
    /// [`KdTree::compact`] repacks `vind`/SoA slots and the node pool,
    /// then the f16-approximate rows are permuted through the slot map
    /// and the [`CompressedDirectory`] through the node map. Baked
    /// bytes only **move** — no leaf is re-encoded — so searches,
    /// their order and every
    /// [`SearchStats`](bonsai_kdtree::SearchStats) counter are
    /// bit-identical before and after in all three modes, while
    /// `garbage_slots()` drops to zero, the directory sheds the bytes
    /// its incremental `replace` calls abandoned, and the lane-padding
    /// invariant holds. Returns the number of `vind` slots reclaimed.
    ///
    /// Dead *points* keep their slots (cloud indices must stay stable
    /// for reported neighbors); the shard router's rolling
    /// [`rebuild_shard`](crate::ShardRouter::rebuild_shard) reclaims
    /// those, because it owns the local→global index translation.
    ///
    /// # Panics
    ///
    /// Panics when mutations are pending a
    /// [`commit`](BonsaiTree::commit): compacting around stale
    /// directory structures would bake the staleness in.
    pub fn compact(&mut self, sim: &mut SimEngine) -> usize {
        // lint: allow(debug-assert-discipline) — stale-serving guard:
        // serving pre-mutation structures would silently return wrong
        // neighbors, and the check is one Vec::is_empty, so it is
        // deliberately enforced in release builds (PR 3 hardening).
        assert!(
            !self.tree.has_dirty_nodes(),
            "compacting a BonsaiTree with uncommitted mutations; call commit() first"
        );
        let old_slots = self.tree.vind().len();
        let remap = self.tree.compact(sim);
        let new_slots = self.tree.vind().len();

        // Permute the f16 rows: the bits move with their slots, nothing
        // is re-quantized, so the approximate coordinates (and thus
        // shell classifications) cannot drift.
        let mut approx = ApproxSoa {
            x: vec![bonsai_kdtree::simd::PAD_COORD; new_slots],
            y: vec![bonsai_kdtree::simd::PAD_COORD; new_slots],
            z: vec![bonsai_kdtree::simd::PAD_COORD; new_slots],
            ex: vec![0; new_slots],
            ey: vec![0; new_slots],
            ez: vec![0; new_slots],
        };
        for (old, &new) in remap.slot_map.iter().enumerate() {
            if new == bonsai_kdtree::CompactRemap::DROPPED || old >= self.approx.x.len() {
                continue;
            }
            let new = new as usize;
            approx.x[new] = self.approx.x[old];
            approx.y[new] = self.approx.y[old];
            approx.z[new] = self.approx.z[old];
            approx.ex[new] = self.approx.ex[old];
            approx.ey[new] = self.approx.ey[old];
            approx.ez[new] = self.approx.ez[old];
        }
        self.approx = approx;
        self.directory
            .compact_remap(&remap.node_map, self.tree.nodes().len());
        old_slots - new_slots
    }

    /// Host-side memory footprint, in bytes: the underlying tree's
    /// [`resident_bytes`](KdTree::resident_bytes) plus the f16 rows and
    /// the compressed directory (including its garbage bytes).
    pub fn resident_bytes(&self) -> u64 {
        self.tree.resident_bytes()
            + self.approx.x.len() as u64 * (3 * 4 + 3)
            + self.directory.total_bytes() as u64
    }

    /// The underlying k-d tree (baseline searches, structure access).
    pub fn kd_tree(&self) -> &KdTree {
        &self.tree
    }

    /// The compressed-structure directory.
    ///
    /// # Panics
    ///
    /// Panics when mutations are pending a
    /// [`commit`](BonsaiTree::commit) — dirty leaves' structures still
    /// encode their pre-mutation points, so handing the directory to a
    /// leaf processor would silently produce stale results.
    pub fn directory(&self) -> &CompressedDirectory {
        // lint: allow(debug-assert-discipline) — stale-serving guard:
        // serving pre-mutation structures would silently return wrong
        // neighbors, and the check is one Vec::is_empty, so it is
        // deliberately enforced in release builds (PR 3 hardening).
        assert!(
            !self.tree.has_dirty_nodes(),
            "reading a BonsaiTree directory with uncommitted mutations; call commit() first"
        );
        &self.directory
    }

    /// The baked f16-approximate SoA rows (fast-scan substrate).
    ///
    /// # Panics
    ///
    /// Panics when mutations are pending a
    /// [`commit`](BonsaiTree::commit): the rows still describe the
    /// pre-mutation points, and silently serving them would return
    /// stale neighbor sets. The check is one `Vec::is_empty`, so it is
    /// enforced in release builds too.
    pub(crate) fn approx_soa(&self) -> &ApproxSoa {
        // lint: allow(debug-assert-discipline) — stale-serving guard:
        // serving pre-mutation structures would silently return wrong
        // neighbors, and the check is one Vec::is_empty, so it is
        // deliberately enforced in release builds (PR 3 hardening).
        assert!(
            !self.tree.has_dirty_nodes(),
            "searching a BonsaiTree with uncommitted mutations; call commit() first"
        );
        &self.approx
    }

    /// Radius search over compressed leaves (exact membership; see
    /// [`BonsaiLeafProcessor`]).
    pub fn radius_search(
        &self,
        sim: &mut SimEngine,
        machine: &mut Machine,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        // lint: allow(debug-assert-discipline) — stale-serving guard:
        // serving pre-mutation structures would silently return wrong
        // neighbors, and the check is one Vec::is_empty, so it is
        // deliberately enforced in release builds (PR 3 hardening).
        assert!(
            !self.tree.has_dirty_nodes(),
            "searching a BonsaiTree with uncommitted mutations; call commit() first"
        );
        let mut proc = BonsaiLeafProcessor::new(&self.directory, machine);
        self.tree
            .radius_search(sim, &mut proc, query, radius, out, stats);
    }

    /// [`radius_search`](BonsaiTree::radius_search) with a caller-owned
    /// [`SearchScratch`] — allocation-free once warm.
    #[allow(clippy::too_many_arguments)] // mirrors radius_search + scratch
    pub fn radius_search_scratch(
        &self,
        sim: &mut SimEngine,
        machine: &mut Machine,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) {
        // lint: allow(debug-assert-discipline) — stale-serving guard:
        // serving pre-mutation structures would silently return wrong
        // neighbors, and the check is one Vec::is_empty, so it is
        // deliberately enforced in release builds (PR 3 hardening).
        assert!(
            !self.tree.has_dirty_nodes(),
            "searching a BonsaiTree with uncommitted mutations; call commit() first"
        );
        let mut proc = BonsaiLeafProcessor::new(&self.directory, machine);
        self.tree
            .radius_search_scratch(sim, &mut proc, query, radius, out, stats, scratch);
    }

    /// Convenience: uninstrumented compressed radius search.
    pub fn radius_search_simple(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let mut sim = SimEngine::disabled();
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        self.radius_search(&mut sim, &mut machine, query, radius, &mut out, &mut stats);
        out
    }

    /// Validates the lane-padding invariant on the tree **and** its
    /// f16 rows: the underlying [`KdTree::assert_lane_padding`] holds,
    /// the approximate rows span every `vind` slot, and each leaf's
    /// padding tail holds the `+∞` sentinel there too. A test/debug
    /// aid (callable with a pending commit — the padding contract
    /// covers the committed prefix of the rows, which mutation only
    /// extends).
    ///
    /// # Panics
    ///
    /// Panics describing the first violation found.
    pub fn assert_lane_padding(&self) {
        self.tree.assert_lane_padding();
        let slots = self.tree.vind().len();
        // lint: allow(debug-assert-discipline) — documented panicking
        // audit helper: reporting the first violation via panic is its
        // API, in release builds too.
        assert!(
            self.approx.x.len() >= slots || self.tree.has_dirty_nodes(),
            "f16 rows cover {} of {slots} committed slots",
            self.approx.x.len()
        );
        if self.tree.has_dirty_nodes() {
            // Dirty leaves' rows are stale by design until commit.
            return;
        }
        for (id, node) in self.tree.nodes().iter().enumerate() {
            let Node::Leaf { start, count } = *node else {
                continue;
            };
            let fp = self.tree.leaf_slot_footprint(id as u32) as usize;
            for i in start as usize + count as usize..start as usize + fp {
                // lint: allow(debug-assert-discipline) — documented
                // panicking audit helper; see above.
                assert!(
                    self.approx.x[i] == bonsai_kdtree::simd::PAD_COORD
                        && self.approx.y[i] == bonsai_kdtree::simd::PAD_COORD
                        && self.approx.z[i] == bonsai_kdtree::simd::PAD_COORD,
                    "leaf {id} slot {i}: f16 rows not padded"
                );
            }
        }
    }

    /// Aggregate compression statistics.
    pub fn compression_stats(&self) -> CompressionStats {
        let mut s = CompressionStats::default();
        for (_, r) in self.directory.refs() {
            s.leaves += 1;
            s.points += r.num_pts as u64;
            s.compressed_bytes += r.padded_len() as u64;
            s.baseline_bytes += r.num_pts as u64 * 12;
            if r.flags.x {
                s.x_compressed += 1;
            }
            if r.flags.y {
                s.y_compressed += 1;
            }
            if r.flags.z {
                s.z_compressed += 1;
            }
        }
        s
    }
}

/// Deterministic fault-injection hooks for the chaos test suite: each
/// corrupts one structure the auditor certifies, and returns `false`
/// when the tree offers no applicable site. Never compiled into
/// default builds.
#[cfg(feature = "chaos")]
impl BonsaiTree {
    /// Duplicates a `vind` entry inside one leaf (see
    /// [`KdTree::chaos_duplicate_vind`]).
    pub fn chaos_duplicate_vind(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> bool {
        self.tree.chaos_duplicate_vind(rng)
    }

    /// Skews one interior divider past its split value (see
    /// [`KdTree::chaos_skew_divider`]).
    pub fn chaos_skew_divider(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> bool {
        self.tree.chaos_skew_divider(rng)
    }

    /// Skews the garbage-slot counter (see
    /// [`KdTree::chaos_skew_garbage`]).
    pub fn chaos_skew_garbage(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> bool {
        self.tree.chaos_skew_garbage(rng)
    }

    /// Flips the low mantissa bit of one live slot's f16-approximate
    /// row — the audit's bit-compare against the point's true f16
    /// decode catches it.
    pub fn chaos_flip_f16(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> bool {
        if self.tree.has_dirty_nodes() {
            return false;
        }
        let mut slots: Vec<usize> = Vec::new();
        for node in self.tree.nodes() {
            let Node::Leaf { start, count } = *node else {
                continue;
            };
            for i in start as usize..(start + count) as usize {
                if i < self.approx.x.len() {
                    slots.push(i);
                }
            }
        }
        if slots.is_empty() {
            return false;
        }
        let i = slots[rng.below(slots.len())];
        match rng.below(3) {
            0 => self.approx.x[i] = f32::from_bits(self.approx.x[i].to_bits() ^ 1),
            1 => self.approx.y[i] = f32::from_bits(self.approx.y[i].to_bits() ^ 1),
            _ => self.approx.z[i] = f32::from_bits(self.approx.z[i].to_bits() ^ 1),
        }
        true
    }

    /// Redirects one compressed-directory reference past the byte
    /// array (see `CompressedDirectory::chaos_corrupt_ref`).
    pub fn chaos_truncate_directory(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> bool {
        if self.tree.has_dirty_nodes() {
            return false;
        }
        self.directory.chaos_corrupt_ref(rng.next_u64() as usize)
    }
}

/// The Bonsai compress-instruction sequence over one leaf: `LDSPZPB`
/// each point into the ZipPts buffer (one vind load to find it, then
/// the point load inside the instruction), `CPRZPB`, `STZPB` into the
/// directory's next free slice, then the leaf-field/next-free update.
/// Shared by the build-time whole-tree pass (`replace == false`) and
/// the incremental per-dirty-leaf re-bake (`replace == true`).
#[allow(clippy::too_many_arguments)] // the flattened compression state
fn compress_leaf_structure(
    sim: &mut SimEngine,
    machine: &mut Machine,
    tree: &KdTree,
    directory: &mut CompressedDirectory,
    id: u32,
    start: u32,
    count: u32,
    replace: bool,
) {
    for (slot, i) in (start..start + count).enumerate() {
        sim.load(tree.vind_entry_addr(i), 4);
        sim.exec(OpClass::IntAlu, 2);
        let idx = tree.vind()[i as usize];
        machine.ldspzpb(
            sim,
            slot,
            tree.point_addr(idx),
            tree.points()[idx as usize].to_array(),
        );
    }
    machine.cprzpb(sim, count as usize);
    let addr = directory.next_addr();
    let compressed = machine.stzpb(sim, addr);
    let placed = if replace {
        directory.replace(id, &compressed)
    } else {
        directory.insert(id, &compressed)
    };
    debug_assert_eq!(placed, addr);
    // Update the leaf's (union-reused) fields and the next-free index.
    sim.exec(OpClass::IntAlu, 4);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_floatfmt::Half;
    use bonsai_isa::codec;

    fn urban_like_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                // Clustered surfaces at various ranges, like LiDAR returns.
                let cluster = (next() * 12.0).floor();
                let cx = (cluster - 6.0) * 15.0;
                Point3::new(cx + next() * 3.0, (next() - 0.5) * 60.0, next() * 2.5)
            })
            .collect()
    }

    #[test]
    fn every_leaf_gets_a_structure() {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(urban_like_cloud(2000, 1), KdTreeConfig::default(), &mut sim);
        let leaves = tree.kd_tree().build_stats().num_leaves;
        let stats = tree.compression_stats();
        assert_eq!(stats.leaves, leaves);
        assert_eq!(stats.points, 2000);
    }

    #[test]
    fn directory_structures_decode_to_the_leaf_points() {
        let mut sim = SimEngine::disabled();
        let cloud = urban_like_cloud(500, 2);
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for (id, node) in tree.kd_tree().nodes().iter().enumerate() {
            let Node::Leaf { start, count } = node else {
                continue;
            };
            let r = tree.directory().leaf_ref(id as u32).unwrap();
            let mut decoded = [[0u16; 3]; 16];
            codec::decompress(
                tree.directory().bytes_of(id as u32),
                r.num_pts as usize,
                &mut decoded,
            );
            for (slot, i) in (*start..start + count).enumerate() {
                let idx = tree.kd_tree().vind()[i as usize] as usize;
                let p = cloud[idx];
                for c in 0..3 {
                    assert_eq!(
                        decoded[slot][c],
                        Half::from_f32(p[c]).to_bits(),
                        "leaf {id} slot {slot} coord {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn compression_ratio_is_paper_scale() {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(
            urban_like_cloud(20_000, 3),
            KdTreeConfig::default(),
            &mut sim,
        );
        let stats = tree.compression_stats();
        let ratio = stats.compression_ratio();
        // Fully-compressible leaves reach 64/180 ≈ 0.356; mixed clouds sit
        // a bit above. The paper's frame-1 figure is ~0.37.
        assert!(ratio > 0.3 && ratio < 0.6, "ratio {ratio}");
        // Most leaves compress on most coordinates for clustered data.
        assert!(
            stats.uniform_fraction(0) > 0.5,
            "x {}",
            stats.uniform_fraction(0)
        );
    }

    #[test]
    fn build_charges_compress_kernel() {
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        BonsaiTree::build(urban_like_cloud(1000, 4), KdTreeConfig::default(), &mut sim);
        let comp = *sim.kernel_counters(Kernel::Compress);
        assert!(
            comp.ops_of(OpClass::BonsaiCodec) > 0,
            "LDSPZPB/CPRZPB charged"
        );
        assert!(comp.stores > 0, "STZPB slice stores charged");
        assert!(sim.kernel_counters(Kernel::Build).micro_ops() > 0);
    }

    /// Incremental mutations + commit must reproduce a from-scratch
    /// build over the live points bit-for-bit (sorted; index remapped).
    #[test]
    fn incremental_updates_match_fresh_build_bit_for_bit() {
        let cloud = urban_like_cloud(2500, 7);
        let mut sim = SimEngine::disabled();
        let mut tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let added = urban_like_cloud(300, 8);
        let removed: Vec<u32> = (0..300u32).map(|i| i * 7 % 2500).collect();
        let inserted = tree.update(&mut sim, &added, &removed);
        assert_eq!(inserted.len(), 300);
        assert!(!tree.has_pending_rebake());

        let live: Vec<u32> = tree.kd_tree().live_indices().collect();
        let live_pts: Vec<Point3> = live
            .iter()
            .map(|&i| tree.kd_tree().points()[i as usize])
            .collect();
        let fresh = BonsaiTree::build(live_pts, KdTreeConfig::default(), &mut sim);
        for (qi, q) in urban_like_cloud(20, 9).into_iter().enumerate() {
            let mut got: Vec<(u32, u32)> = tree
                .radius_search_simple(q, 1.5)
                .iter()
                .map(|n| (n.index, n.dist_sq.to_bits()))
                .collect();
            got.sort_unstable();
            let mut expect: Vec<(u32, u32)> = fresh
                .radius_search_simple(q, 1.5)
                .iter()
                .map(|n| (live[n.index as usize], n.dist_sq.to_bits()))
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "query {qi}");
        }
    }

    /// The lazy re-bake touches only dirty leaves: a single insert
    /// re-compresses a handful of leaves, not the whole tree.
    #[test]
    fn commit_rebakes_only_touched_leaves() {
        let mut sim = SimEngine::disabled();
        let mut tree =
            BonsaiTree::build(urban_like_cloud(5000, 3), KdTreeConfig::default(), &mut sim);
        let total_leaves = tree.kd_tree().build_stats().num_leaves as usize;
        tree.insert(&mut sim, Point3::new(1.0, 2.0, 1.0)).unwrap();
        assert!(tree.has_pending_rebake());
        let rebaked = tree.commit(&mut sim);
        assert!(rebaked >= 1);
        assert!(
            rebaked < total_leaves / 10,
            "rebaked {rebaked} of {total_leaves} leaves"
        );
        assert_eq!(tree.commit(&mut sim), 0, "clean commit is free");
    }

    /// Directory structures of mutated leaves decode to the mutated
    /// points (the build-time decode invariant survives churn).
    #[test]
    fn mutated_directory_structures_stay_decodable() {
        let mut sim = SimEngine::disabled();
        let cloud = urban_like_cloud(600, 5);
        let mut tree = BonsaiTree::build(cloud, KdTreeConfig::default(), &mut sim);
        for i in 0..200u32 {
            tree.delete(&mut sim, i * 3 % 600);
        }
        let added = urban_like_cloud(120, 6);
        for &p in &added {
            tree.insert(&mut sim, p).unwrap();
        }
        tree.commit(&mut sim);
        for (id, node) in tree.kd_tree().nodes().iter().enumerate() {
            let Node::Leaf { start, count } = *node else {
                continue;
            };
            if count == 0 {
                continue;
            }
            let Some(r) = tree.directory().leaf_ref(id as u32) else {
                // Retired pool slots are empty leaves and were skipped
                // above; a live leaf must own a structure.
                panic!("live leaf {id} has no structure");
            };
            assert_eq!(r.num_pts as u32, count, "leaf {id}");
            let mut decoded = [[0u16; 3]; 16];
            codec::decompress(
                tree.directory().bytes_of(id as u32),
                count as usize,
                &mut decoded,
            );
            for (slot, i) in (start..start + count).enumerate() {
                let idx = tree.kd_tree().vind()[i as usize] as usize;
                let p = tree.kd_tree().points()[idx];
                for c in 0..3 {
                    assert_eq!(
                        decoded[slot][c],
                        Half::from_f32(p[c]).to_bits(),
                        "leaf {id} slot {slot} coord {c}"
                    );
                }
            }
        }
    }

    /// Churns a compressed tree until it fragments.
    fn churned_bonsai(n: usize, seed: u64) -> BonsaiTree {
        let mut sim = SimEngine::disabled();
        let mut tree =
            BonsaiTree::build(urban_like_cloud(n, seed), KdTreeConfig::default(), &mut sim);
        let extra = urban_like_cloud(n, seed + 1);
        for round in 0..4usize {
            for k in 0..n / 8 {
                tree.delete(&mut sim, ((round * 13 + k * 7) % n) as u32);
            }
            for k in 0..n / 8 {
                tree.insert(&mut sim, extra[(round * n / 8 + k) % extra.len()])
                    .unwrap();
            }
            tree.commit(&mut sim);
        }
        tree
    }

    /// The tentpole contract: compaction reclaims every garbage slot
    /// and the directory's abandoned bytes while keeping compressed
    /// searches (hits, order, stats) bit-identical.
    #[test]
    fn compact_is_invisible_to_compressed_searches() {
        let mut tree = churned_bonsai(1800, 21);
        assert!(tree.kd_tree().garbage_slots() > 0, "churn never fragmented");
        let dir_bytes_before = tree.directory().total_bytes();
        let queries = urban_like_cloud(40, 23);

        let mut sim = SimEngine::disabled();
        let mut machine = Machine::new();
        let mut before = Vec::new();
        for &q in &queries {
            let mut out = Vec::new();
            let mut stats = bonsai_kdtree::SearchStats::default();
            tree.radius_search(&mut sim, &mut machine, q, 1.5, &mut out, &mut stats);
            before.push((out, stats));
        }

        let reclaimed = tree.compact(&mut sim);
        assert!(reclaimed > 0);
        assert_eq!(tree.kd_tree().garbage_slots(), 0);
        assert!(
            tree.directory().total_bytes() < dir_bytes_before,
            "directory kept its replace() garbage"
        );
        tree.assert_lane_padding();

        for (qi, &q) in queries.iter().enumerate() {
            let mut out = Vec::new();
            let mut stats = bonsai_kdtree::SearchStats::default();
            tree.radius_search(&mut sim, &mut machine, q, 1.5, &mut out, &mut stats);
            assert_eq!(out, before[qi].0, "query {qi}: hits moved");
            assert_eq!(stats, before[qi].1, "query {qi}: stats moved");
        }
    }

    /// Directory structures still decode to their leaves' exact points
    /// after the repack (bytes moved, never re-encoded).
    #[test]
    fn compacted_directory_structures_stay_decodable() {
        let mut tree = churned_bonsai(700, 31);
        let mut sim = SimEngine::disabled();
        tree.compact(&mut sim);
        for (id, node) in tree.kd_tree().nodes().iter().enumerate() {
            let Node::Leaf { start, count } = *node else {
                continue;
            };
            if count == 0 {
                continue;
            }
            let r = tree
                .directory()
                .leaf_ref(id as u32)
                .expect("live leaf lost its structure in the repack");
            assert_eq!(r.num_pts as u32, count, "leaf {id}");
            let mut decoded = [[0u16; 3]; 16];
            codec::decompress(
                tree.directory().bytes_of(id as u32),
                count as usize,
                &mut decoded,
            );
            for (slot, i) in (start..start + count).enumerate() {
                let idx = tree.kd_tree().vind()[i as usize] as usize;
                let p = tree.kd_tree().points()[idx];
                for c in 0..3 {
                    assert_eq!(
                        decoded[slot][c],
                        Half::from_f32(p[c]).to_bits(),
                        "leaf {id} slot {slot} coord {c}"
                    );
                }
            }
        }
        // The compacted tree keeps mutating + committing cleanly.
        tree.insert(&mut sim, Point3::new(0.5, 0.5, 0.5)).unwrap();
        tree.commit(&mut sim);
        tree.assert_lane_padding();
    }

    #[test]
    #[should_panic(expected = "uncommitted mutations")]
    fn compact_with_pending_commit_panics() {
        let mut sim = SimEngine::disabled();
        let mut tree =
            BonsaiTree::build(urban_like_cloud(200, 9), KdTreeConfig::default(), &mut sim);
        tree.insert(&mut sim, Point3::new(1.0, 1.0, 1.0)).unwrap();
        tree.compact(&mut sim);
    }

    #[test]
    fn compression_stats_uniform_fraction_bounds() {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(urban_like_cloud(800, 5), KdTreeConfig::default(), &mut sim);
        let s = tree.compression_stats();
        for c in 0..3 {
            let f = s.uniform_fraction(c);
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(CompressionStats::default().uniform_fraction(0), 0.0);
        assert_eq!(CompressionStats::default().compression_ratio(), 0.0);
    }
}
