use bonsai_floatfmt::Half;
use bonsai_geom::Point3;
use bonsai_isa::Machine;
use bonsai_kdtree::{KdTree, KdTreeConfig, Neighbor, Node, SearchScratch, SearchStats};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::directory::CompressedDirectory;
use crate::processor::BonsaiLeafProcessor;

/// Leaf-contiguous SoA of the *f16-approximate* coordinates plus their
/// f16 exponent fields, baked at build time: slot `i` mirrors the
/// tree's `vind()[i]` slot, with each coordinate already decoded to the
/// `f32` value `LDDCP` would materialize in a vector register. The fast
/// (uninstrumented) compressed scan sweeps these rows linearly instead
/// of running the instruction-level decode per leaf visit.
#[derive(Debug, Clone, Default)]
pub(crate) struct ApproxSoa {
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    pub z: Vec<f32>,
    /// f16 exponent fields, the `part_error_mem` LUT keys (Eq. 9).
    pub ex: Vec<u8>,
    pub ey: Vec<u8>,
    pub ez: Vec<u8>,
}

impl ApproxSoa {
    fn bake(tree: &KdTree) -> ApproxSoa {
        let n = tree.vind().len();
        let mut soa = ApproxSoa {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            ex: Vec::with_capacity(n),
            ey: Vec::with_capacity(n),
            ez: Vec::with_capacity(n),
        };
        for &idx in tree.vind() {
            let p = tree.points()[idx as usize];
            let hx = Half::from_f32(p.x);
            let hy = Half::from_f32(p.y);
            let hz = Half::from_f32(p.z);
            soa.x.push(hx.to_f32());
            soa.y.push(hy.to_f32());
            soa.z.push(hz.to_f32());
            soa.ex.push(hx.exponent_field());
            soa.ey.push(hy.exponent_field());
            soa.ez.push(hz.exponent_field());
        }
        soa
    }
}

/// A k-d tree whose leaves carry Bonsai-compressed copies of their
/// points.
///
/// Construction builds the PCL-style tree, then walks its leaves and
/// compresses each through the Bonsai instruction sequence (`LDSPZPB` per
/// point, `CPRZPB`, `STZPB`), filling the [`CompressedDirectory`]. The
/// compression work is charged to the `Compress` kernel — the paper's
/// build-time overhead that the ~52 search visits per leaf amortize.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct BonsaiTree {
    tree: KdTree,
    directory: CompressedDirectory,
    approx: ApproxSoa,
}

/// Aggregate compression statistics of a built tree (Sections III-A and
/// V-B numbers).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompressionStats {
    /// Number of compressed leaves.
    pub leaves: u32,
    /// Total points stored in leaves.
    pub points: u64,
    /// Slice-padded bytes of the `cmprsd_strct_array`.
    pub compressed_bytes: u64,
    /// Useful baseline bytes for the same points (12 B per point).
    pub baseline_bytes: u64,
    /// Leaves whose x coordinate shares one `<sign, exp>`.
    pub x_compressed: u32,
    /// Leaves whose y coordinate shares one `<sign, exp>`.
    pub y_compressed: u32,
    /// Leaves whose z coordinate shares one `<sign, exp>`.
    pub z_compressed: u32,
}

impl CompressionStats {
    /// Compressed size as a fraction of the baseline point bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.baseline_bytes == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 / self.baseline_bytes as f64
        }
    }

    /// Fraction of leaves with a uniform `<sign, exp>` on the given
    /// coordinate (0 = x, 1 = y, 2 = z) — the paper's 78 % / 83 %
    /// observation.
    pub fn uniform_fraction(&self, coord: usize) -> f64 {
        if self.leaves == 0 {
            return 0.0;
        }
        let n = match coord {
            0 => self.x_compressed,
            1 => self.y_compressed,
            2 => self.z_compressed,
            _ => panic!("coordinate index {coord} out of range"),
        };
        n as f64 / self.leaves as f64
    }
}

impl BonsaiTree {
    /// Builds the tree and compresses every leaf.
    ///
    /// Tree construction charges the `Build` kernel; leaf compression
    /// charges `Compress`.
    pub fn build(points: Vec<Point3>, cfg: KdTreeConfig, sim: &mut SimEngine) -> BonsaiTree {
        let tree = KdTree::build(points, cfg, sim);
        let mut directory = CompressedDirectory::new(sim, tree.nodes().len());
        let mut machine = Machine::new();
        let prev = sim.set_kernel(Kernel::Compress);
        for id in 0..tree.nodes().len() {
            let Node::Leaf { start, count } = tree.nodes()[id] else {
                continue;
            };
            // LDSPZPB each leaf point into the ZipPts buffer (one vind
            // load to find it, then the point load inside the
            // instruction).
            for (slot, i) in (start..start + count).enumerate() {
                sim.load(tree.vind_entry_addr(i), 4);
                sim.exec(OpClass::IntAlu, 2);
                let idx = tree.vind()[i as usize];
                machine.ldspzpb(
                    sim,
                    slot,
                    tree.point_addr(idx),
                    tree.points()[idx as usize].to_array(),
                );
            }
            machine.cprzpb(sim, count as usize);
            let addr = directory.next_addr();
            let compressed = machine.stzpb(sim, addr);
            let placed = directory.insert(id as u32, &compressed);
            debug_assert_eq!(placed, addr);
            // Update the leaf's (union-reused) fields and the next-free
            // index.
            sim.exec(OpClass::IntAlu, 4);
        }
        sim.set_kernel(prev);
        let approx = ApproxSoa::bake(&tree);
        BonsaiTree {
            tree,
            directory,
            approx,
        }
    }

    /// The underlying k-d tree (baseline searches, structure access).
    pub fn kd_tree(&self) -> &KdTree {
        &self.tree
    }

    /// The compressed-structure directory.
    pub fn directory(&self) -> &CompressedDirectory {
        &self.directory
    }

    /// The baked f16-approximate SoA rows (fast-scan substrate).
    pub(crate) fn approx_soa(&self) -> &ApproxSoa {
        &self.approx
    }

    /// Radius search over compressed leaves (exact membership; see
    /// [`BonsaiLeafProcessor`]).
    pub fn radius_search(
        &self,
        sim: &mut SimEngine,
        machine: &mut Machine,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let mut proc = BonsaiLeafProcessor::new(&self.directory, machine);
        self.tree
            .radius_search(sim, &mut proc, query, radius, out, stats);
    }

    /// [`radius_search`](BonsaiTree::radius_search) with a caller-owned
    /// [`SearchScratch`] — allocation-free once warm.
    #[allow(clippy::too_many_arguments)] // mirrors radius_search + scratch
    pub fn radius_search_scratch(
        &self,
        sim: &mut SimEngine,
        machine: &mut Machine,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) {
        let mut proc = BonsaiLeafProcessor::new(&self.directory, machine);
        self.tree
            .radius_search_scratch(sim, &mut proc, query, radius, out, stats, scratch);
    }

    /// Convenience: uninstrumented compressed radius search.
    pub fn radius_search_simple(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let mut sim = SimEngine::disabled();
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        self.radius_search(&mut sim, &mut machine, query, radius, &mut out, &mut stats);
        out
    }

    /// Aggregate compression statistics.
    pub fn compression_stats(&self) -> CompressionStats {
        let mut s = CompressionStats::default();
        for (_, r) in self.directory.refs() {
            s.leaves += 1;
            s.points += r.num_pts as u64;
            s.compressed_bytes += r.padded_len() as u64;
            s.baseline_bytes += r.num_pts as u64 * 12;
            if r.flags.x {
                s.x_compressed += 1;
            }
            if r.flags.y {
                s.y_compressed += 1;
            }
            if r.flags.z {
                s.z_compressed += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_floatfmt::Half;
    use bonsai_isa::codec;

    fn urban_like_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                // Clustered surfaces at various ranges, like LiDAR returns.
                let cluster = (next() * 12.0).floor();
                let cx = (cluster - 6.0) * 15.0;
                Point3::new(cx + next() * 3.0, (next() - 0.5) * 60.0, next() * 2.5)
            })
            .collect()
    }

    #[test]
    fn every_leaf_gets_a_structure() {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(urban_like_cloud(2000, 1), KdTreeConfig::default(), &mut sim);
        let leaves = tree.kd_tree().build_stats().num_leaves;
        let stats = tree.compression_stats();
        assert_eq!(stats.leaves, leaves);
        assert_eq!(stats.points, 2000);
    }

    #[test]
    fn directory_structures_decode_to_the_leaf_points() {
        let mut sim = SimEngine::disabled();
        let cloud = urban_like_cloud(500, 2);
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for (id, node) in tree.kd_tree().nodes().iter().enumerate() {
            let Node::Leaf { start, count } = node else {
                continue;
            };
            let r = tree.directory().leaf_ref(id as u32).unwrap();
            let mut decoded = [[0u16; 3]; 16];
            codec::decompress(
                tree.directory().bytes_of(id as u32),
                r.num_pts as usize,
                &mut decoded,
            );
            for (slot, i) in (*start..start + count).enumerate() {
                let idx = tree.kd_tree().vind()[i as usize] as usize;
                let p = cloud[idx];
                for c in 0..3 {
                    assert_eq!(
                        decoded[slot][c],
                        Half::from_f32(p[c]).to_bits(),
                        "leaf {id} slot {slot} coord {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn compression_ratio_is_paper_scale() {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(
            urban_like_cloud(20_000, 3),
            KdTreeConfig::default(),
            &mut sim,
        );
        let stats = tree.compression_stats();
        let ratio = stats.compression_ratio();
        // Fully-compressible leaves reach 64/180 ≈ 0.356; mixed clouds sit
        // a bit above. The paper's frame-1 figure is ~0.37.
        assert!(ratio > 0.3 && ratio < 0.6, "ratio {ratio}");
        // Most leaves compress on most coordinates for clustered data.
        assert!(
            stats.uniform_fraction(0) > 0.5,
            "x {}",
            stats.uniform_fraction(0)
        );
    }

    #[test]
    fn build_charges_compress_kernel() {
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        BonsaiTree::build(urban_like_cloud(1000, 4), KdTreeConfig::default(), &mut sim);
        let comp = *sim.kernel_counters(Kernel::Compress);
        assert!(
            comp.ops_of(OpClass::BonsaiCodec) > 0,
            "LDSPZPB/CPRZPB charged"
        );
        assert!(comp.stores > 0, "STZPB slice stores charged");
        assert!(sim.kernel_counters(Kernel::Build).micro_ops() > 0);
    }

    #[test]
    fn compression_stats_uniform_fraction_bounds() {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(urban_like_cloud(800, 5), KdTreeConfig::default(), &mut sim);
        let s = tree.compression_stats();
        for c in 0..3 {
            let f = s.uniform_fraction(c);
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(CompressionStats::default().uniform_fraction(0), 0.0);
        assert_eq!(CompressionStats::default().compression_ratio(), 0.0);
    }
}
