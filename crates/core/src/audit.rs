//! Deep invariant audit of the compressed layers.
//!
//! [`BonsaiTree::audit`] extends the underlying
//! [`KdTree::audit`](bonsai_kdtree::KdTree::audit) walk to the two
//! structures this crate adds on top of the tree:
//!
//! * **F16Mismatch** — every live slot's f16-approximate SoA row must
//!   be bit-identical to the f16 decode of its exact point (value *and*
//!   exponent field), and every padding slot must hold the `+∞`
//!   sentinel with a zero exponent.
//! * **DirectoryBytes** — every live leaf owns exactly one compressed
//!   structure whose reference is sound (slice-aligned offset, byte
//!   range inside the array, point count matching the leaf, header
//!   flags matching the recorded flags, recorded length matching the
//!   codec's size formula) and whose decoded coordinates are the f16
//!   bits of the leaf's points; no empty leaf, interior node or
//!   out-of-pool id holds a structure.
//!
//! Like the tree-level auditor, the walk never panics on corrupt
//! state: every reference is range-checked before its bytes are
//! touched, and the structure is only decoded once its recorded length
//! provably matches what the bit reader will consume.

use bonsai_floatfmt::Half;
use bonsai_isa::{codec, CoordFlags, MAX_POINTS, SLICE_BYTES};
use bonsai_kdtree::simd::{PAD_COORD, PAD_SLOT};
use bonsai_kdtree::{AuditViolation, Node, ViolationKind};

use crate::tree::BonsaiTree;

impl BonsaiTree {
    /// Deep invariant audit: the underlying tree's full invariant web
    /// (see [`KdTree::audit`](bonsai_kdtree::KdTree::audit)) plus the
    /// f16-approximate rows and the compressed directory. Returns every
    /// violation found — an empty vector certifies the tree. Never
    /// panics on corrupt state.
    ///
    /// With mutations pending a [`commit`](BonsaiTree::commit), only
    /// the tree walk runs: dirty leaves' rows and structures are stale
    /// *by design* until the commit re-bakes them.
    pub fn audit(&self) -> Vec<AuditViolation> {
        let mut out = self.kd_tree().audit();
        if self.has_pending_rebake() {
            return out;
        }
        let t = self.kd_tree();
        let soa = self.approx_soa();
        let dir = self.directory();
        let slots = t.vind().len();
        let row_len = soa
            .x
            .len()
            .min(soa.y.len())
            .min(soa.z.len())
            .min(soa.ex.len())
            .min(soa.ey.len())
            .min(soa.ez.len());
        if row_len < slots {
            out.push(AuditViolation::new(
                ViolationKind::F16Mismatch,
                format!("f16 rows cover {row_len} of {slots} slots"),
            ));
            return out;
        }
        if out.iter().any(|v| v.kind == ViolationKind::Structure) {
            // The meta table (and thus every leaf footprint) is
            // unsound; the per-leaf walk below would index on garbage.
            return out;
        }
        let mut decoded = [[0u16; 3]; MAX_POINTS];
        for (id, node) in t.nodes().iter().enumerate() {
            let id32 = id as u32;
            if let Node::Interior { .. } = node {
                if dir.leaf_ref(id32).is_some() {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::DirectoryBytes,
                            "interior node holds a compressed structure",
                        )
                        .at_node(id32),
                    );
                }
                continue;
            }
            let Node::Leaf { start, count } = *node else {
                continue;
            };
            let (s, c) = (start as usize, count as usize);
            let fp = t.leaf_slot_footprint(id32) as usize;
            if s.checked_add(fp).is_none_or(|end| end > slots) {
                continue; // the tree audit already reported the range
            }
            // f16 rows: live slots bit-match their points' f16 decode…
            for i in s..s + c {
                let idx = t.vind()[i];
                if idx == PAD_SLOT || (idx as usize) >= t.points().len() {
                    continue; // the tree audit already reported the slot
                }
                let p = t.points()[idx as usize];
                let h = [
                    Half::from_f32(p.x),
                    Half::from_f32(p.y),
                    Half::from_f32(p.z),
                ];
                let row = [soa.x[i], soa.y[i], soa.z[i]];
                let exp = [soa.ex[i], soa.ey[i], soa.ez[i]];
                for a in 0..3 {
                    if row[a].to_bits() != h[a].to_f32().to_bits()
                        || exp[a] != h[a].exponent_field()
                    {
                        out.push(
                            AuditViolation::new(
                                ViolationKind::F16Mismatch,
                                format!(
                                    "slot {i} axis {a}: f16 row is not the f16 decode of \
                                     point {idx}"
                                ),
                            )
                            .at_node(id32)
                            .at_index(i as u32),
                        );
                        break;
                    }
                }
            }
            // …and padding slots hold the sentinel.
            for i in s + c..s + fp {
                if soa.x[i] != PAD_COORD
                    || soa.y[i] != PAD_COORD
                    || soa.z[i] != PAD_COORD
                    || soa.ex[i] != 0
                    || soa.ey[i] != 0
                    || soa.ez[i] != 0
                {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::F16Mismatch,
                            format!("slot {i}: f16 rows of a padding slot lost the sentinel"),
                        )
                        .at_node(id32)
                        .at_index(i as u32),
                    );
                }
            }
            // Compressed structure: existence…
            let r = match dir.leaf_ref(id32) {
                Some(r) if c == 0 => {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::DirectoryBytes,
                            format!(
                                "empty leaf still holds a {}-point compressed structure",
                                r.num_pts
                            ),
                        )
                        .at_node(id32),
                    );
                    continue;
                }
                None if c > 0 => {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::DirectoryBytes,
                            format!("live {c}-point leaf has no compressed structure"),
                        )
                        .at_node(id32),
                    );
                    continue;
                }
                None => continue,
                Some(r) => r,
            };
            // …reference sanity (everything checked before any byte of
            // the structure is touched)…
            let mut sound = true;
            if r.num_pts as usize != c || c == 0 || c > MAX_POINTS {
                out.push(
                    AuditViolation::new(
                        ViolationKind::DirectoryBytes,
                        format!(
                            "structure encodes {} points but the leaf holds {c}",
                            r.num_pts
                        ),
                    )
                    .at_node(id32),
                );
                sound = false;
            }
            if !(r.offset as usize).is_multiple_of(SLICE_BYTES) {
                out.push(
                    AuditViolation::new(
                        ViolationKind::DirectoryBytes,
                        format!("structure offset {} is not slice-aligned", r.offset),
                    )
                    .at_node(id32),
                );
                sound = false;
            }
            if (r.offset as usize)
                .checked_add(r.padded_len())
                .is_none_or(|end| end > dir.total_bytes())
            {
                out.push(
                    AuditViolation::new(
                        ViolationKind::DirectoryBytes,
                        format!(
                            "structure bytes {}..+{} overrun the {}-byte array",
                            r.offset,
                            r.padded_len(),
                            dir.total_bytes()
                        ),
                    )
                    .at_node(id32),
                );
                sound = false;
            }
            if sound {
                let expected = codec::compressed_size_bits(r.num_pts as usize, r.flags).div_ceil(8);
                if r.len as usize != expected {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::DirectoryBytes,
                            format!(
                                "structure length {} does not match the codec's {expected} bytes \
                                 for {} points under its flags",
                                r.len, r.num_pts
                            ),
                        )
                        .at_node(id32),
                    );
                    sound = false;
                }
            }
            if sound {
                let bytes = dir.bytes_of(id32);
                let header = CoordFlags::from_bits(bytes[0] & 0b111);
                if header != r.flags {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::DirectoryBytes,
                            "structure header flags disagree with the recorded reference",
                        )
                        .at_node(id32),
                    );
                    sound = false;
                }
            }
            if !sound {
                continue;
            }
            // …and only now, a decode compare: the structure must hold
            // exactly the f16 bits of the leaf's points, in slot order.
            codec::decompress(dir.bytes_of(id32), c, &mut decoded);
            for (k, i) in (s..s + c).enumerate() {
                let idx = t.vind()[i];
                if idx == PAD_SLOT || (idx as usize) >= t.points().len() {
                    continue;
                }
                let p = t.points()[idx as usize];
                let want = [
                    Half::from_f32(p.x).to_bits(),
                    Half::from_f32(p.y).to_bits(),
                    Half::from_f32(p.z).to_bits(),
                ];
                if decoded[k] != want {
                    out.push(
                        AuditViolation::new(
                            ViolationKind::DirectoryBytes,
                            format!("decoded point {k} disagrees with the f16 bits of point {idx}"),
                        )
                        .at_node(id32)
                        .at_index(i as u32),
                    );
                }
            }
        }
        // Structures on ids past the node pool are unreachable garbage
        // with a live reference — flag them.
        for (leaf, _) in dir.refs() {
            if (leaf as usize) >= t.nodes().len() {
                out.push(
                    AuditViolation::new(
                        ViolationKind::DirectoryBytes,
                        format!(
                            "reference names node {leaf}, past the {}-node pool",
                            t.nodes().len()
                        ),
                    )
                    .at_node(leaf),
                );
            }
        }
        out
    }
}
