//! Epoch-based snapshot publication: immutable, `Arc`-shared index
//! snapshots that readers pin while writers build the next one off to
//! the side.
//!
//! The scheme is the ikd-Tree double-buffer idiom generalized: a
//! [`EpochPublisher`] owns the *current* epoch — an [`Epoch`] wrapping
//! an immutable snapshot value (a [`RouterSnapshot`](crate::RouterSnapshot),
//! a shared tree, anything `Send + Sync`) — and every in-flight search
//! [`pin`](EpochPublisher::pin)s the epoch it started on. Mutation
//! never touches a published epoch: the writer clones/rebuilds its own
//! working state, then [`publish`](EpochPublisher::publish)es the next
//! snapshot with one brief lock-held `Arc` swap. Readers therefore
//! never block on writer work (the lock is held only for the pointer
//! swap, never across a rebuild), and a pinned epoch stays exactly as
//! it was for as long as its `Arc` lives — searches against epoch N are
//! bit-identical to a stop-the-world engine frozen at epoch N.
//!
//! An epoch is **retired** when its last reader drops: the publisher
//! holds only `Weak` handles to past epochs, so retirement is the plain
//! `Arc` drop with no bookkeeping on the query path. Asking for a
//! retired epoch by id is a typed error
//! ([`QueryError::EpochRetired`]), never a panic — the serving boundary
//! convention of [`PipelineError`](../bonsai_cluster) carried down to
//! the snapshot layer.
//!
//! # Examples
//!
//! ```
//! use bonsai_core::EpochPublisher;
//!
//! let publisher = EpochPublisher::new(vec![1, 2, 3]);
//! let pinned = publisher.pin(); // a reader starts on epoch 0
//! publisher.publish(vec![4, 5, 6]); // writer swaps in epoch 1
//!
//! // The reader still sees exactly what it pinned…
//! assert_eq!(pinned.value(), &[1, 2, 3]);
//! assert_eq!(pinned.id(), 0);
//! // …while new readers get the fresh epoch.
//! assert_eq!(publisher.pin().value(), &[4, 5, 6]);
//!
//! // Retirement is the Arc drop; a retired epoch is a typed error.
//! drop(pinned);
//! assert!(publisher.try_pin_epoch(0).is_err());
//! ```

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError, Weak};

use bonsai_geom::Aabb;

/// A query-side snapshot-access failure, typed so serving layers can
/// distinguish "retry on the current epoch" from "the data is offline".
///
/// Matches the `PipelineError` convention from the cluster crate: every
/// condition a caller can trigger is a variant, not a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The requested epoch was retired: its last reader dropped and the
    /// publisher no longer holds it. Pin the current epoch instead.
    EpochRetired {
        /// The epoch id that is no longer available.
        epoch: u64,
    },
    /// The index cannot answer any query right now: every shard is
    /// quarantined pending a healing rebuild, so a search would cover
    /// none of the indexed space (an empty result would be silently
    /// wrong, not authoritative).
    NoCoverage {
        /// Bounding boxes of the offline regions.
        offline: Vec<Aabb>,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EpochRetired { epoch } => {
                write!(f, "epoch {epoch} was retired (its last reader dropped)")
            }
            QueryError::NoCoverage { offline } => write!(
                f,
                "no searchable coverage: all {} shard region(s) are quarantined",
                offline.len()
            ),
        }
    }
}

impl Error for QueryError {}

/// One published snapshot: an immutable value tagged with its epoch id.
///
/// Readers hold it through `Arc<Epoch<T>>`; the value is never mutated
/// after publication, so a pinned epoch is a consistent point-in-time
/// view for as long as the `Arc` lives.
#[derive(Debug)]
pub struct Epoch<T> {
    id: u64,
    value: T,
}

impl<T> Epoch<T> {
    /// This epoch's id: 0 for the publisher's initial value, +1 per
    /// publish.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The immutable snapshot value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

#[derive(Debug)]
struct PublisherState<T> {
    current: Arc<Epoch<T>>,
    /// `(id, weak)` of every epoch not yet known-retired, ascending by
    /// id. Weak handles only: retirement is the readers' `Arc` drop,
    /// and the dead entries are pruned on each publish/lookup.
    history: Vec<(u64, Weak<Epoch<T>>)>,
}

/// Publication point for [`Epoch`] snapshots: readers
/// [`pin`](EpochPublisher::pin), writers
/// [`publish`](EpochPublisher::publish). See the docs at the top of
/// `epoch.rs` for the scheme.
#[derive(Debug)]
pub struct EpochPublisher<T> {
    state: Mutex<PublisherState<T>>,
}

impl<T> EpochPublisher<T> {
    /// A publisher whose epoch 0 is `value`.
    pub fn new(value: T) -> EpochPublisher<T> {
        let current = Arc::new(Epoch { id: 0, value });
        let history = vec![(0, Arc::downgrade(&current))];
        EpochPublisher {
            state: Mutex::new(PublisherState { current, history }),
        }
    }

    /// Lock the publisher state. A poisoned lock is recovered, not
    /// propagated: the state is a pair of `Arc`s whose every transition
    /// is a complete assignment, so there is no torn intermediate a
    /// panicking thread could have left behind.
    fn locked(&self) -> std::sync::MutexGuard<'_, PublisherState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pins the current epoch: the returned `Arc` keeps that snapshot
    /// alive (and bit-stable) until dropped. Never blocks on writer
    /// work — the internal lock is only ever held for pointer swaps.
    pub fn pin(&self) -> Arc<Epoch<T>> {
        Arc::clone(&self.locked().current)
    }

    /// The current epoch id without pinning it.
    pub fn epoch(&self) -> u64 {
        self.locked().current.id
    }

    /// Publishes `value` as the next epoch and returns its id. The
    /// previous epoch stays alive exactly as long as readers still pin
    /// it; with no readers it retires immediately.
    ///
    /// Build `value` **before** calling — the swap itself is O(history)
    /// under the lock, so readers never stall behind a rebuild.
    pub fn publish(&self, value: T) -> u64 {
        let mut state = self.locked();
        let id = state.current.id + 1;
        let next = Arc::new(Epoch { id, value });
        state.history.push((id, Arc::downgrade(&next)));
        state.history.retain(|(_, w)| w.strong_count() > 0);
        state.current = next;
        id
    }

    /// Re-pins a specific epoch by id: the snapshot if any reader (or
    /// the publisher, for the current epoch) still holds it, else
    /// [`QueryError::EpochRetired`].
    ///
    /// This is the non-panicking accessor the serving layer exposes for
    /// "continue my session on the epoch I started on" semantics.
    pub fn try_pin_epoch(&self, id: u64) -> Result<Arc<Epoch<T>>, QueryError> {
        let state = self.locked();
        state
            .history
            .iter()
            .find(|(eid, _)| *eid == id)
            .and_then(|(_, w)| w.upgrade())
            .ok_or(QueryError::EpochRetired { epoch: id })
    }

    /// Ids of every epoch still alive (pinned by a reader, or current),
    /// ascending.
    pub fn live_epochs(&self) -> Vec<u64> {
        self.locked()
            .history
            .iter()
            .filter(|(_, w)| w.strong_count() > 0)
            .map(|(id, _)| *id)
            .collect()
    }

    /// How far the oldest still-pinned epoch lags the current one:
    /// `current − oldest_live`, 0 when no reader pins anything older
    /// than the current epoch. The staleness signal the adaptive
    /// sharding policy bounds topology changes on
    /// ([`ShardPolicy::max_epoch_lag`](crate::ShardPolicy::max_epoch_lag)):
    /// a reader that far behind is wedged or mid-recovery, and every
    /// split/merge widens the window it must catch up across.
    pub fn epoch_lag(&self) -> u64 {
        let state = self.locked();
        let current = state.current.id;
        state
            .history
            .iter()
            .filter(|(_, w)| w.strong_count() > 0)
            .map(|(id, _)| *id)
            .min()
            .map_or(0, |oldest| current - oldest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_readers_keep_their_pin() {
        let p = EpochPublisher::new(10u32);
        assert_eq!(p.epoch(), 0);
        let old = p.pin();
        assert_eq!(p.publish(20), 1);
        assert_eq!(p.publish(30), 2);
        assert_eq!(*old.value(), 10, "pinned epoch mutated under the reader");
        assert_eq!(*p.pin().value(), 30);
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn retired_epoch_is_a_typed_error_not_a_panic() {
        let p = EpochPublisher::new(1u32);
        let pinned = p.pin();
        p.publish(2);
        // Still pinned: re-pinnable by id.
        let again = p.try_pin_epoch(0).expect("epoch 0 is still pinned");
        assert_eq!(*again.value(), 1);
        drop(pinned);
        drop(again);
        assert!(matches!(
            p.try_pin_epoch(0),
            Err(QueryError::EpochRetired { epoch: 0 })
        ));
        // Unknown / future ids are the same typed error.
        assert!(matches!(
            p.try_pin_epoch(99),
            Err(QueryError::EpochRetired { epoch: 99 })
        ));
    }

    #[test]
    fn epoch_lag_follows_the_oldest_pin() {
        let p = EpochPublisher::new(0u32);
        assert_eq!(p.epoch_lag(), 0, "current epoch alone lags nothing");
        let e0 = p.pin();
        for v in 1..=5 {
            p.publish(v);
        }
        assert_eq!(p.epoch_lag(), 5, "epoch 0 is pinned five publishes back");
        let e3 = p.try_pin_epoch(5).expect("current epoch pins");
        drop(e0);
        assert_eq!(p.epoch_lag(), 0, "only the current epoch remains pinned");
        drop(e3);
        p.publish(6);
        assert_eq!(p.epoch_lag(), 0);
    }

    #[test]
    fn live_epochs_tracks_pins_and_prunes_retired() {
        let p = EpochPublisher::new(0u32);
        let e0 = p.pin();
        p.publish(1);
        let e1 = p.pin();
        p.publish(2);
        assert_eq!(p.live_epochs(), vec![0, 1, 2]);
        drop(e0);
        assert_eq!(p.live_epochs(), vec![1, 2]);
        drop(e1);
        // Publishing retires the unpinned previous epoch: with no
        // reader holding 2, the swap to 3 drops its last Arc.
        p.publish(3);
        assert_eq!(p.live_epochs(), vec![3]);
    }

    #[test]
    fn concurrent_pin_and_publish_never_tears() {
        let p = std::sync::Arc::new(EpochPublisher::new(vec![0u64; 64]));
        std::thread::scope(|s| {
            let writer = {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for i in 1..200u64 {
                        p.publish(vec![i; 64]);
                    }
                })
            };
            for _ in 0..4 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..500 {
                        let e = p.pin();
                        let v = e.value();
                        assert!(v.iter().all(|&x| x == v[0]), "epoch {} tore: {v:?}", e.id());
                    }
                });
            }
            writer.join().expect("writer panicked");
        });
    }
}
