//! Query-load-adaptive sharding: the policy layer that turns observed
//! per-shard search effort into online **split** / **merge** proposals.
//!
//! The sharded router partitions by median cut over point counts, which
//! balances *storage* but not *work*: an AD query stream hammers the
//! ego-vehicle's neighborhood, so one shard absorbs most of the
//! traversal while the far-field shards idle. This module closes the
//! loop. Every routed query already produces [`SearchStats`]-style
//! counters; the router accumulates them per shard ([`ShardLoad`],
//! identity-following `Arc`'d atomics so stale snapshots keep charging
//! the same shard), and [`ShardRouter::adapt_step`] folds the counter
//! deltas into a decaying per-shard load profile. A hot shard is split
//! along the plane chosen by a binned surface-area-heuristic sweep
//! ([`find_best_split_plane`]) — the BVH builder's
//! `cost = count × half_area(child)` objective with observed query
//! density standing in for ray density — and adjacent cold shards are
//! merged back. Both actions are targeted rebuilds through the same
//! machinery as `rebuild_shard`, so stable global indices, the
//! generation-tagged free list, quarantine state and epoch isolation
//! are preserved: a pinned pre-split epoch keeps answering from the old
//! topology, bit-identically, while new epochs see the rebalance.
//!
//! Every proposal that is *not* executed is recorded with a typed
//! [`RejectReason`] — quarantined shards (heal in progress) and routers
//! with pinned epochs lagging beyond [`ShardPolicy::max_epoch_lag`] are
//! never chosen for topology changes.
//!
//! [`SearchStats`]: bonsai_kdtree::SearchStats
//! [`ShardRouter::adapt_step`]: crate::ShardRouter::adapt_step

use std::sync::atomic::{AtomicU64, Ordering};

use bonsai_geom::{Aabb, Point3};

/// How many past decisions [`LoadReport::recent`] retains.
const DECISION_LOG: usize = 32;

/// Knobs for the adaptive split/merge policy, applied by
/// [`ShardRouter::adapt_step`](crate::ShardRouter::adapt_step).
///
/// The defaults are deliberately conservative: act only on a clear hot
/// spot, never on a shard that is small, quarantined, or visible to a
/// badly lagging pinned epoch, and change at most one thing per step so
/// each rebuild stays amortizable against the query stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPolicy {
    /// Per-step exponential decay applied to the load profile before
    /// folding in the newest window (0 = only the last window counts,
    /// 1 = never forget). Defaults to 0.5.
    pub decay: f64,
    /// A shard is split-hot when its decayed work exceeds this multiple
    /// of the mean per-shard work. Defaults to 2.0.
    pub split_ratio: f64,
    /// A shard is merge-cold when its decayed work is below this
    /// multiple of the mean per-shard work. Defaults to 0.25.
    pub merge_ratio: f64,
    /// Never split a shard holding fewer live points than this.
    /// Defaults to 256.
    pub min_split_points: usize,
    /// Never split past this many shard slots. Defaults to 32.
    pub max_shards: usize,
    /// Never merge below this many populated shards. Defaults to 2.
    pub min_shards: usize,
    /// Bin count for the SAH plane sweep. Defaults to 16.
    pub bins: usize,
    /// Topology changes are refused while the oldest live pinned epoch
    /// lags the current epoch by more than this many publishes: a
    /// reader that far behind is mid-recovery or wedged, and stacking a
    /// topology change on top only widens the window it must catch up
    /// across. Defaults to 8.
    pub max_epoch_lag: u64,
    /// Do nothing until the decayed profile has absorbed at least this
    /// many queries in total — prevents adapting to noise right after a
    /// build or rebalance. Defaults to 64.
    pub min_queries: f64,
    /// Per-populated-shard dispatch tax on split proposals, as a
    /// fraction of the no-split SAH cost. Every extra shard makes
    /// *every* routed query test one more bounding box, so a split must
    /// beat not just its own SAH cost but the fleet-wide dispatch
    /// overhead it adds: a candidate plane is accepted only when
    /// `split_cost < no_split_cost × (1 − dispatch_cost × populated)`.
    /// At the default 0.002 a split into the 64th shard must win by
    /// ~13% — the measured single-threaded dispatch overhead at that
    /// shard count — while splits among a handful of shards pay under
    /// 1%. Set to 0 to restore the untaxed sweep. Defaults to 0.002.
    pub dispatch_cost: f64,
    /// The load profile counts as *flat* when the hottest populated
    /// shard's work is at most this multiple of the mean — no shard is
    /// worth chasing, so topology should shrink toward cheap dispatch
    /// rather than hold a fine partition nobody needs. Defaults to
    /// 1.25.
    pub flat_ratio: f64,
    /// When the profile is flat and more than this many shards are
    /// populated, the nearest adaptable pair is merged even though
    /// neither is `merge_ratio`-cold — uniform load over many shards
    /// pays dispatch for nothing. Below this floor a flat profile is
    /// left alone. Defaults to 8.
    pub flat_floor: usize,
}

impl Default for ShardPolicy {
    fn default() -> ShardPolicy {
        ShardPolicy {
            decay: 0.5,
            split_ratio: 2.0,
            merge_ratio: 0.25,
            min_split_points: 256,
            max_shards: 32,
            min_shards: 2,
            bins: 16,
            max_epoch_lag: 8,
            min_queries: 64.0,
            dispatch_cost: 0.002,
            flat_ratio: 1.25,
            flat_floor: 8,
        }
    }
}

/// Per-shard cumulative search-effort counters, shared by identity.
///
/// The counters live behind an `Arc` inside each shard, so the
/// copy-on-write snapshots the router publishes keep charging the same
/// accumulator: queries served from a stale pinned epoch still inform
/// the live router's load profile. Relaxed ordering is sufficient —
/// the profile is a statistic, not a synchronization edge.
#[derive(Debug, Default)]
pub(crate) struct ShardLoad {
    queries: AtomicU64,
    nodes_visited: AtomicU64,
    points_inspected: AtomicU64,
}

impl ShardLoad {
    /// Charge one routed query's traversal effort to this shard.
    pub(crate) fn record(&self, nodes_visited: u64, points_inspected: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.nodes_visited
            .fetch_add(nodes_visited, Ordering::Relaxed);
        self.points_inspected
            .fetch_add(points_inspected, Ordering::Relaxed);
    }

    pub(crate) fn sample(&self) -> LoadSample {
        LoadSample {
            queries: self.queries.load(Ordering::Relaxed),
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            points_inspected: self.points_inspected.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of one shard's cumulative [`ShardLoad`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSample {
    /// Routed queries whose ball intersected this shard's box.
    pub queries: u64,
    /// Tree nodes visited inside this shard on behalf of those queries.
    pub nodes_visited: u64,
    /// Candidate points distance-tested inside this shard.
    pub points_inspected: u64,
}

impl LoadSample {
    /// Counter delta since `earlier`. A targeted rebuild outside
    /// `adapt_step` (rolling compaction, a heal) swaps in fresh
    /// counters; that reads as a counter going backwards, in which case
    /// the whole reading is the new baseline's window — not clamped to
    /// zero, which would swallow every window until the fresh counters
    /// caught up to the stale ones.
    fn delta(&self, earlier: LoadSample) -> LoadSample {
        if self.queries < earlier.queries
            || self.nodes_visited < earlier.nodes_visited
            || self.points_inspected < earlier.points_inspected
        {
            return *self;
        }
        LoadSample {
            queries: self.queries - earlier.queries,
            nodes_visited: self.nodes_visited - earlier.nodes_visited,
            points_inspected: self.points_inspected - earlier.points_inspected,
        }
    }
}

/// One shard's exponentially decayed load profile.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardLoadProfile {
    /// Decayed query count.
    pub queries: f64,
    /// Decayed node-visit count.
    pub nodes_visited: f64,
    /// Decayed point-inspection count.
    pub points_inspected: f64,
}

impl ShardLoadProfile {
    /// The scalar the policy ranks shards by: traversal plus sweep
    /// effort. Queries are not added in — a query that is pruned at the
    /// shard box costs nothing worth rebalancing over.
    pub fn work(&self) -> f64 {
        self.nodes_visited + self.points_inspected
    }

    fn absorb(&mut self, decay: f64, window: LoadSample) {
        self.queries = self.queries * decay + window.queries as f64;
        self.nodes_visited = self.nodes_visited * decay + window.nodes_visited as f64;
        self.points_inspected = self.points_inspected * decay + window.points_inspected as f64;
    }

    fn scaled(&self, s: f64) -> ShardLoadProfile {
        ShardLoadProfile {
            queries: self.queries * s,
            nodes_visited: self.nodes_visited * s,
            points_inspected: self.points_inspected * s,
        }
    }
}

/// Why a split/merge proposal was refused. Every variant is observable
/// through [`LoadReport::recent`] and counted in rejected-proposal
/// totals — a policy that silently does nothing is undebuggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The shard index does not exist.
    OutOfRange {
        /// The offending shard index.
        shard: usize,
    },
    /// The shard is quarantined: a heal/rebuild is in progress and its
    /// contents are not trustworthy enough to repartition.
    Quarantined {
        /// The quarantined shard.
        shard: usize,
    },
    /// A live pinned epoch lags the current epoch beyond the policy
    /// bound; topology changes wait until readers catch up.
    StalePins {
        /// Observed lag (current epoch − oldest live pinned epoch).
        epoch_lag: u64,
        /// The policy's `max_epoch_lag` bound that was exceeded.
        bound: u64,
    },
    /// The hot shard holds too few live points to be worth splitting.
    TooSmall {
        /// The shard that was proposed for splitting.
        shard: usize,
        /// Its live point count.
        points: usize,
    },
    /// Splitting would exceed the policy's `max_shards` slot budget.
    ShardLimit {
        /// Current shard slot count.
        shards: usize,
    },
    /// The SAH sweep found no plane cheaper than not splitting after
    /// the dispatch tax (e.g. all points coincide, or the gain is
    /// smaller than the per-query cost of one more shard box test), or
    /// the requested plane puts every live point on one side.
    NoGain {
        /// The shard that was proposed for splitting.
        shard: usize,
    },
    /// Merging was proposed but no pair of distinct, adaptable, cold
    /// shards exists (or merging would go below `min_shards`).
    NoColdPair,
    /// A merge of a shard with itself was requested.
    SameShard {
        /// The repeated shard index.
        shard: usize,
    },
}

/// One entry in the adaptive policy's decision log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptDecision {
    /// `shard` was split at `plane` on `axis`; the upper half landed in
    /// slot `sibling`.
    Split {
        /// Policy step at which the split executed.
        step: u64,
        /// The shard that was split (keeps the lower half).
        shard: usize,
        /// Slot that received the upper half.
        sibling: usize,
        /// Split axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// Split plane position along `axis`.
        plane: f32,
    },
    /// `emptied` was merged into `kept`; `emptied`'s slot becomes an
    /// empty shard (slots are stable, never removed).
    Merge {
        /// Policy step at which the merge executed.
        step: u64,
        /// Slot that received the union of both live sets.
        kept: usize,
        /// Slot that was emptied.
        emptied: usize,
    },
    /// A proposal was refused.
    Rejected {
        /// Policy step at which the proposal was refused.
        step: u64,
        /// Why it was refused.
        reason: RejectReason,
    },
}

/// What one [`adapt_step`](crate::ShardRouter::adapt_step) did:
/// executed topology changes plus every typed rejection. Feed it to
/// `bonsai-serve`'s `Server::record_adapt` to surface the counters in
/// `ServeMetrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptReport {
    /// Splits executed this step (0 or 1: one action per step).
    pub splits: u64,
    /// Merges executed this step (0 or 1).
    pub merges: u64,
    /// Proposals refused this step.
    pub rejected: u64,
    /// The step's decisions, in the order they were made.
    pub decisions: Vec<AdaptDecision>,
}

/// Point-in-time observability snapshot from
/// [`ShardRouter::load_report`](crate::ShardRouter::load_report).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Per-shard load, indexed by shard slot.
    pub shards: Vec<ShardLoadReport>,
    /// Splits executed over the router's lifetime.
    pub splits: u64,
    /// Merges executed over the router's lifetime.
    pub merges: u64,
    /// Proposals refused over the router's lifetime.
    pub rejected: u64,
    /// The most recent decisions, oldest first (bounded log).
    pub recent: Vec<AdaptDecision>,
}

/// One shard's row in a [`LoadReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardLoadReport {
    /// Decayed profile as of the last `adapt_step`.
    pub profile: ShardLoadProfile,
    /// Raw cumulative counters (including traffic since the last step).
    pub lifetime: LoadSample,
    /// Live points currently indexed in the shard.
    pub points: usize,
    /// Whether the shard is quarantined (excluded from adaptation).
    pub quarantined: bool,
}

/// Decayed profiles, cumulative counters and the decision log — the
/// router-private state behind the adaptive policy.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdaptState {
    /// Decayed per-shard profile, indexed by shard slot.
    pub(crate) profile: Vec<ShardLoadProfile>,
    /// Counter values at the end of the previous step, per slot.
    pub(crate) last: Vec<LoadSample>,
    /// Monotonic step counter (first `adapt_step` is step 1).
    pub(crate) step: u64,
    /// Lifetime executed splits.
    pub(crate) splits: u64,
    /// Lifetime executed merges.
    pub(crate) merges: u64,
    /// Lifetime rejected proposals.
    pub(crate) rejected: u64,
    /// Bounded decision log, oldest first.
    pub(crate) decisions: Vec<AdaptDecision>,
}

impl AdaptState {
    /// Grow the per-slot vectors to `n` slots (new slots start cold).
    pub(crate) fn ensure_slots(&mut self, n: usize) {
        if self.profile.len() < n {
            self.profile.resize(n, ShardLoadProfile::default());
            self.last.resize(n, LoadSample::default());
        }
    }

    pub(crate) fn log(&mut self, decision: AdaptDecision) {
        if self.decisions.len() == DECISION_LOG {
            self.decisions.remove(0);
        }
        self.decisions.push(decision);
    }

    /// Post-split bookkeeping: the parent's decayed profile is split
    /// evenly between the two children, and both slots restart their
    /// counter baseline at zero (the rebuild swapped in fresh
    /// counters).
    pub(crate) fn on_split(&mut self, shard: usize, sibling: usize) {
        self.ensure_slots(sibling + 1);
        let half = self.profile[shard].scaled(0.5);
        self.profile[shard] = half;
        self.profile[sibling] = half;
        self.last[shard] = LoadSample::default();
        self.last[sibling] = LoadSample::default();
    }

    /// Post-merge bookkeeping: the kept slot inherits both profiles,
    /// the emptied slot goes cold.
    pub(crate) fn on_merge(&mut self, kept: usize, emptied: usize) {
        self.ensure_slots(kept.max(emptied) + 1);
        let other = self.profile[emptied];
        let p = &mut self.profile[kept];
        p.queries += other.queries;
        p.nodes_visited += other.nodes_visited;
        p.points_inspected += other.points_inspected;
        self.profile[emptied] = ShardLoadProfile::default();
        self.last[kept] = LoadSample::default();
        self.last[emptied] = LoadSample::default();
    }

    /// Fold the newest counter window into the decayed profiles.
    pub(crate) fn absorb_window(&mut self, decay: f64, samples: &[LoadSample]) {
        self.ensure_slots(samples.len());
        for (i, &cur) in samples.iter().enumerate() {
            let window = cur.delta(self.last[i]);
            self.profile[i].absorb(decay, window);
            self.last[i] = cur;
        }
    }
}

/// Half surface area of a box — the SAH's cost weight. Degenerate
/// (inverted/empty) boxes cost zero.
fn half_area(aabb: &Aabb) -> f64 {
    let e = aabb.extent();
    if !(e.x >= 0.0 && e.y >= 0.0 && e.z >= 0.0) {
        return 0.0;
    }
    f64::from(e.x) * f64::from(e.y)
        + f64::from(e.y) * f64::from(e.z)
        + f64::from(e.z) * f64::from(e.x)
}

/// The winning plane of a binned SAH sweep over one shard's points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitPlane {
    /// Split axis (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Plane position: points with `p[axis] < position` go left.
    pub position: f32,
    /// SAH cost of the split: `nL·half_area(L) + nR·half_area(R)`.
    pub split_cost: f64,
    /// SAH cost of leaving the shard whole: `n·half_area(total)`.
    pub no_split_cost: f64,
}

/// Binned SAH sweep: for each axis, bucket the points into
/// `bins` equal-width bins and evaluate every bin boundary as a
/// candidate plane with cost `nL·half_area(boxL) + nR·half_area(boxR)`
/// over *tight* child boxes. Returns the cheapest plane that actually
/// separates the points, or `None` when no finite-extent axis exists
/// (all points coincide) or no candidate beats not splitting.
///
/// This is the BVH builder's triangle-count heuristic with points in
/// the role of primitives; the adaptive policy multiplies the result by
/// observed query density implicitly, by only sweeping shards the load
/// profile already marked hot.
pub fn find_best_split_plane(points: &[Point3], bins: usize) -> Option<SplitPlane> {
    find_best_split_plane_taxed(points, bins, 0.0)
}

/// [`find_best_split_plane`] with a dispatch tax: a candidate plane is
/// accepted only when its SAH cost beats `no_split_cost × (1 − tax)`,
/// so the split's traversal gain must also cover the router-level
/// overhead of testing one more shard box per query. `tax` is the
/// policy's `dispatch_cost × populated` (a tax ≥ 1 refuses every
/// split); the reported `split_cost`/`no_split_cost` stay untaxed so
/// observers compare raw SAH numbers.
pub fn find_best_split_plane_taxed(points: &[Point3], bins: usize, tax: f64) -> Option<SplitPlane> {
    let aabb = Aabb::from_points(points.iter().copied())?;
    let n = points.len();
    if n < 2 || bins < 2 {
        return None;
    }
    let no_split_cost = n as f64 * half_area(&aabb);
    let accept_below = no_split_cost * (1.0 - tax).max(0.0);
    let mut best: Option<SplitPlane> = None;
    for axis in 0..3usize {
        let lo = aabb.min[axis];
        let width = aabb.max[axis] - lo;
        if !width.is_finite() || width <= 0.0 {
            continue;
        }
        // Bucket counts and tight per-bin boxes.
        let mut counts = vec![0usize; bins];
        let mut boxes: Vec<Option<Aabb>> = vec![None; bins];
        let scale = bins as f32 / width;
        for &p in points {
            let b = (((p[axis] - lo) * scale) as usize).min(bins - 1);
            counts[b] += 1;
            match &mut boxes[b] {
                Some(bb) => bb.insert(p),
                slot => *slot = Some(Aabb::new(p, p)),
            }
        }
        // Sweep the bins - 1 interior boundaries: prefix pass collects
        // left cost, suffix pass right cost.
        let mut left_cost = vec![0.0f64; bins];
        let mut acc: Option<Aabb> = None;
        let mut cnt = 0usize;
        for b in 0..bins {
            if let Some(bb) = &boxes[b] {
                acc = Some(acc.map_or(*bb, |a| a.union(bb)));
                cnt += counts[b];
            }
            left_cost[b] = match &acc {
                Some(a) => cnt as f64 * half_area(a),
                None => 0.0,
            };
        }
        let mut acc: Option<Aabb> = None;
        let mut right = 0usize;
        let mut left = n;
        for b in (1..bins).rev() {
            if let Some(bb) = &boxes[b] {
                acc = Some(acc.map_or(*bb, |a| a.union(bb)));
                right += counts[b];
                left -= counts[b];
            }
            if left == 0 || right == 0 {
                continue;
            }
            let cost = left_cost[b - 1]
                + match &acc {
                    Some(a) => right as f64 * half_area(a),
                    None => 0.0,
                };
            if cost < accept_below && best.as_ref().is_none_or(|p| cost < p.split_cost) {
                best = Some(SplitPlane {
                    axis,
                    position: lo + width * (b as f32 / bins as f32),
                    split_cost: cost,
                    no_split_cost,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sah_plane_separates_two_blobs_on_the_right_axis() {
        let mut pts = Vec::new();
        for i in 0..50 {
            let o = (i % 10) as f32 * 0.05;
            pts.push(Point3::new(-10.0 + o, o, 0.5 + o));
            pts.push(Point3::new(10.0 + o, o, 0.5 + o));
        }
        let plane = find_best_split_plane(&pts, 16).expect("two blobs must split");
        assert_eq!(plane.axis, 0, "split must pick the separating axis");
        assert!(
            plane.position > -9.0 && plane.position < 10.0,
            "plane {} must fall between the blobs",
            plane.position
        );
        assert!(plane.split_cost < plane.no_split_cost);
        let left = pts.iter().filter(|p| p.x < plane.position).count();
        assert_eq!(left, 50, "plane must put one blob on each side");
    }

    #[test]
    fn sah_refuses_degenerate_inputs() {
        assert!(find_best_split_plane(&[], 16).is_none());
        assert!(find_best_split_plane(&[Point3::new(1.0, 2.0, 3.0)], 16).is_none());
        // Coincident points: no axis has extent, no plane separates.
        let same = vec![Point3::new(1.0, 2.0, 3.0); 40];
        assert!(find_best_split_plane(&same, 16).is_none());
        // Too few bins to form an interior boundary.
        let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(5.0, 0.0, 0.0)];
        assert!(find_best_split_plane(&pts, 1).is_none());
    }

    #[test]
    fn sah_cost_accounts_every_point_exactly_once() {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        let pts: Vec<Point3> = (0..500)
            .map(|_| Point3::new(next() * 30.0, next() * 8.0, next() * 2.0))
            .collect();
        let plane = find_best_split_plane(&pts, 16).expect("spread cloud splits");
        let left = pts
            .iter()
            .filter(|p| p[plane.axis] < plane.position)
            .count();
        let right = pts.len() - left;
        assert!(left > 0 && right > 0, "plane must be interior");
        // Uniform cloud: splitting on the longest axis halves the
        // dominant face, so the SAH must see a real gain.
        assert!(plane.split_cost < plane.no_split_cost);
        assert_eq!(plane.axis, 0, "x is the widest axis of this cloud");
    }

    #[test]
    fn dispatch_tax_vetoes_marginal_splits() {
        let mut pts = Vec::new();
        for i in 0..50 {
            let o = (i % 10) as f32 * 0.05;
            pts.push(Point3::new(-10.0 + o, o, 0.5 + o));
            pts.push(Point3::new(10.0 + o, o, 0.5 + o));
        }
        let untaxed = find_best_split_plane_taxed(&pts, 16, 0.0).expect("two blobs split");
        let gain = 1.0 - untaxed.split_cost / untaxed.no_split_cost;
        assert!(gain > 0.0 && gain < 1.0);
        // A tax below the winning plane's gain keeps it — with the
        // reported costs untaxed, identical to the plain sweep.
        let taxed = find_best_split_plane_taxed(&pts, 16, gain * 0.5).expect("survives tax");
        assert_eq!(taxed, untaxed);
        // A tax above the best gain refuses every plane; so does the
        // degenerate tax ≥ 1.
        assert!(find_best_split_plane_taxed(&pts, 16, gain * 1.01).is_none());
        assert!(find_best_split_plane_taxed(&pts, 16, 1.0).is_none());
        assert!(find_best_split_plane_taxed(&pts, 16, 7.5).is_none());
    }

    #[test]
    fn decayed_profile_tracks_windows_and_split_merge_bookkeeping() {
        let mut st = AdaptState::default();
        st.absorb_window(
            0.5,
            &[
                LoadSample {
                    queries: 10,
                    nodes_visited: 100,
                    points_inspected: 50,
                },
                LoadSample::default(),
            ],
        );
        assert_eq!(st.profile[0].work(), 150.0);
        assert_eq!(st.profile[1].work(), 0.0);
        // Second window: old work decays by 0.5, new delta folds in.
        st.absorb_window(
            0.5,
            &[
                LoadSample {
                    queries: 10,
                    nodes_visited: 140,
                    points_inspected: 70,
                },
                LoadSample::default(),
            ],
        );
        assert_eq!(st.profile[0].work(), 75.0 + 40.0 + 20.0);
        // A rebuild resets the counters; the saturating delta reads 0.
        st.absorb_window(0.5, &[LoadSample::default(), LoadSample::default()]);
        assert_eq!(st.profile[0].work(), 67.5);

        st.on_split(0, 1);
        assert_eq!(st.profile[0].work(), 33.75);
        assert_eq!(st.profile[0], st.profile[1]);
        st.on_merge(0, 1);
        assert_eq!(st.profile[0].work(), 67.5);
        assert_eq!(st.profile[1].work(), 0.0);
    }

    #[test]
    fn decision_log_is_bounded() {
        let mut st = AdaptState::default();
        for step in 0..(DECISION_LOG as u64 + 9) {
            st.log(AdaptDecision::Rejected {
                step,
                reason: RejectReason::NoColdPair,
            });
        }
        assert_eq!(st.decisions.len(), DECISION_LOG);
        match st.decisions[0] {
            AdaptDecision::Rejected { step, .. } => assert_eq!(step, 9),
            ref other => panic!("unexpected head {other:?}"),
        }
    }
}
