//! The batched, allocation-free radius-search front-end.
//!
//! [`RadiusSearchEngine`] answers radius queries over either an
//! uncompressed [`KdTree`] or a compressed [`BonsaiTree`] without
//! touching the event-based simulator: the traversal is the iterative
//! explicit-stack walk, leaf scans are linear sweeps over SoA rows
//! baked at build time, and the per-tree state (error-bound LUT,
//! scratch, result buffers) is created once and reused. With the
//! `parallel` feature, batches fan out over scoped `std::thread`
//! workers.
//!
//! Results are **identical** (values and order) to driving the
//! corresponding instrumented [`LeafProcessor`](bonsai_kdtree::
//! LeafProcessor) through [`KdTree::radius_search`] — property-tested
//! at the workspace root — and the [`SearchStats`] the engine produces
//! aggregate to the same totals.

use std::sync::Arc;

use bonsai_floatfmt::PartErrorMem;
use bonsai_geom::Point3;
use bonsai_kdtree::{KdTree, Neighbor, Node, NodeId, QueryBatch, SearchScratch, SearchStats};

use bonsai_kdtree::simd::LeafVisit;

use crate::simd::{classify_candidate, sweep_compressed_visited};
use crate::tree::{ApproxSoa, BonsaiTree};

/// Which leaf representation the engine scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineMode {
    /// Full-precision `f32` leaves (the paper's baseline).
    Baseline,
    /// Bonsai-compressed leaves: f16-approximate distances guarded by
    /// the uncertainty shell, with exact re-computation of
    /// inconclusive points — membership identical to baseline.
    Compressed,
}

/// A reusable, batch-oriented radius-search engine over one tree.
///
/// Create it once per tree and keep it for the tree's lifetime; every
/// search borrows the caller's scratch/batch buffers, so steady-state
/// queries allocate nothing.
///
/// The engine holds no per-tree derived state of its own (just the
/// 32-entry error-bound ROM), so it **stays valid across incremental
/// updates**: after `BonsaiTree::insert`/`delete` + `commit`, searches
/// see the mutated tree through the same SoA/directory references —
/// nothing is rebuilt. Borrow-wise this means dropping the engine
/// across the `&mut` mutation window and re-creating it, which is
/// free.
///
/// # Examples
///
/// ```
/// use bonsai_core::{BonsaiTree, RadiusSearchEngine};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::{KdTreeConfig, QueryBatch};
/// use bonsai_sim::SimEngine;
///
/// let cloud: Vec<Point3> =
///     (0..300).map(|i| Point3::new((i % 20) as f32 * 0.2, (i / 20) as f32 * 0.2, 1.0)).collect();
/// let mut sim = SimEngine::disabled();
/// let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
///
/// let engine = RadiusSearchEngine::bonsai(&tree);
/// let mut batch = QueryBatch::new();
/// engine.search_batch(&cloud[..32], 0.5, &mut batch);
/// assert_eq!(batch.num_queries(), 32);
/// assert!(batch.results(0).iter().any(|n| n.index == 0));
/// ```
#[derive(Debug)]
pub struct RadiusSearchEngine<'t> {
    handle: TreeHandle<'t>,
    lut: PartErrorMem,
}

/// How the engine holds its tree: borrowed for the classic
/// engine-per-tree usage (zero-cost, tied to the tree's lifetime) or
/// `Arc`-shared for epoch-published serving, where the engine itself
/// keeps the snapshot alive and is `'static` — free to move across the
/// serving threads of `bonsai-serve`.
#[derive(Debug)]
enum TreeHandle<'t> {
    Kd(&'t KdTree),
    Bonsai(&'t BonsaiTree),
    SharedKd(Arc<KdTree>),
    SharedBonsai(Arc<BonsaiTree>),
}

impl TreeHandle<'_> {
    fn kd(&self) -> &KdTree {
        match self {
            TreeHandle::Kd(t) => t,
            TreeHandle::Bonsai(b) => b.kd_tree(),
            TreeHandle::SharedKd(t) => t,
            TreeHandle::SharedBonsai(b) => b.kd_tree(),
        }
    }

    fn bonsai(&self) -> Option<&BonsaiTree> {
        match self {
            TreeHandle::Kd(_) | TreeHandle::SharedKd(_) => None,
            TreeHandle::Bonsai(b) => Some(b),
            TreeHandle::SharedBonsai(b) => Some(b),
        }
    }
}

impl<'t> RadiusSearchEngine<'t> {
    /// An engine scanning uncompressed `f32` leaves.
    pub fn baseline(tree: &'t KdTree) -> RadiusSearchEngine<'t> {
        RadiusSearchEngine {
            handle: TreeHandle::Kd(tree),
            lut: PartErrorMem::new(),
        }
    }

    /// An engine scanning Bonsai-compressed leaves (exact membership).
    pub fn bonsai(tree: &'t BonsaiTree) -> RadiusSearchEngine<'t> {
        RadiusSearchEngine {
            handle: TreeHandle::Bonsai(tree),
            lut: PartErrorMem::new(),
        }
    }

    /// An engine matching the software-codec strawman's results.
    ///
    /// The software codec computes the same approximate distances,
    /// error bounds and fallbacks as the hardware path — only its
    /// simulated cost differs — so the fast scan is shared with
    /// [`bonsai`](RadiusSearchEngine::bonsai).
    pub fn software_codec(tree: &'t BonsaiTree) -> RadiusSearchEngine<'t> {
        RadiusSearchEngine::bonsai(tree)
    }

    /// An engine co-owning an uncompressed tree snapshot: `'static`, so
    /// it can be pinned inside an [`Epoch`](crate::Epoch) and searched
    /// from any serving thread while mutation builds the next snapshot.
    /// Results are identical to [`baseline`](RadiusSearchEngine::baseline)
    /// over the same tree.
    pub fn shared_baseline(tree: Arc<KdTree>) -> RadiusSearchEngine<'static> {
        RadiusSearchEngine {
            handle: TreeHandle::SharedKd(tree),
            lut: PartErrorMem::new(),
        }
    }

    /// An engine co-owning a Bonsai-compressed tree snapshot (the
    /// `'static` twin of [`bonsai`](RadiusSearchEngine::bonsai)).
    pub fn shared_bonsai(tree: Arc<BonsaiTree>) -> RadiusSearchEngine<'static> {
        RadiusSearchEngine {
            handle: TreeHandle::SharedBonsai(tree),
            lut: PartErrorMem::new(),
        }
    }

    /// The `'static` twin of
    /// [`software_codec`](RadiusSearchEngine::software_codec).
    pub fn shared_software_codec(tree: Arc<BonsaiTree>) -> RadiusSearchEngine<'static> {
        RadiusSearchEngine::shared_bonsai(tree)
    }

    /// The leaf representation this engine scans.
    pub fn mode(&self) -> EngineMode {
        if self.handle.bonsai().is_some() {
            EngineMode::Compressed
        } else {
            EngineMode::Baseline
        }
    }

    /// The underlying k-d tree.
    pub fn tree(&self) -> &KdTree {
        self.handle.kd()
    }

    /// Answers one query, clearing `out` first. Allocation-free once
    /// `scratch` and `out` are warm.
    ///
    /// A non-positive or non-finite `radius` yields an empty result
    /// without visiting any node, in every mode.
    pub fn search_one(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        out.clear();
        self.search_append(query, radius, scratch, out, stats);
    }

    /// Answers every query in one call, filling `batch` (reset first).
    /// Per-query results are reachable through [`QueryBatch::results`];
    /// [`QueryBatch::stats`] aggregates the whole batch.
    pub fn search_batch(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        batch.reset();
        for &query in queries {
            batch.push_query(|scratch, out, stats| {
                self.search_append(query, radius, scratch, out, stats);
            });
        }
    }

    /// [`search_batch`](RadiusSearchEngine::search_batch) fanned out
    /// over scoped worker threads (`threads == 0` uses the machine's
    /// available parallelism). Results are merged in query order, so
    /// output and aggregate stats are identical to the sequential call.
    #[cfg(feature = "parallel")]
    pub fn search_batch_parallel(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
        threads: usize,
    ) {
        crate::fanout::search_batch_across_threads(queries, radius, batch, threads, |q, r, b| {
            self.search_batch(q, r, b)
        });
    }

    /// Runs only this engine's leaf-sweep kernel over one leaf,
    /// appending hits to `out` (not cleared) and counting the sweep's
    /// work into `stats` — the SIMD-or-scalar inner loop of
    /// [`search_one`](RadiusSearchEngine::search_one) without the
    /// traversal around it. Exposed for kernel-level tests; benches
    /// should prefer [`sweep_visited`](RadiusSearchEngine::sweep_visited),
    /// which amortizes the backend dispatch over a
    /// whole visit list the way the search paths do. `radius` is
    /// assumed searchable (the search entry points guard degenerate
    /// radii before any sweep runs).
    ///
    /// # Panics
    ///
    /// Panics when `leaf` is not a leaf node of the tree.
    pub fn sweep_leaf(
        &self,
        leaf: NodeId,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let Node::Leaf { start, count } = self.handle.kd().nodes()[leaf as usize] else {
            // lint: allow(panic-free-serving) — caller contract: the
            // traversal only ever hands leaf ids to a leaf sweep;
            // an interior id is a walker bug, not an input condition.
            panic!("sweep_leaf of interior node {leaf}");
        };
        self.sweep_visited(&[(leaf, start, count)], query, radius, out, stats);
    }

    /// Sweeps a collected visit list — `(leaf, start, count)` triples
    /// from [`KdTree::collect_leaves_in_radius`] (or hand-built over
    /// leaf nodes) — through this engine's leaf kernel: one backend
    /// dispatch covers every visit, exactly as the search entry points
    /// run it. Hits append to `out` in visit order; sweep work counts
    /// into `stats`. `radius` is assumed searchable.
    pub fn sweep_visited(
        &self,
        visited: &[LeafVisit],
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let r_sq = radius * radius;
        let tree = self.handle.kd();
        match self.handle.bonsai() {
            None => tree.sweep_leaf_visits(visited, query, r_sq, out, stats),
            Some(bonsai) => {
                sweep_visited_compressed(bonsai, tree, &self.lut, visited, query, r_sq, out, stats);
            }
        }
    }

    /// The shared per-query kernel: iterative traversal plus the
    /// mode's leaf scan, **appending** hits to `out` (not cleared —
    /// exactly the closure shape [`QueryBatch::push_query`] consumes,
    /// which is how the `bonsai-serve` executor drives one engine
    /// across a whole absorbed batch). Degenerate radii and non-finite
    /// query centers append nothing and count no work.
    pub fn search_append(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        append_hits(
            self.handle.kd(),
            self.handle.bonsai(),
            &self.lut,
            query,
            radius,
            scratch,
            out,
            stats,
        );
    }
}

/// The mode-dispatched per-query kernel, shared by
/// [`RadiusSearchEngine`] and the [`ShardRouter`](crate::ShardRouter):
/// iterative traversal of `tree` plus the baseline or compressed leaf
/// scan, appending hits to `out` (not cleared). Degenerate radii are
/// rejected inside the traversal and append nothing.
#[allow(clippy::too_many_arguments)] // the flattened engine state
pub(crate) fn append_hits(
    tree: &KdTree,
    bonsai: Option<&BonsaiTree>,
    lut: &PartErrorMem,
    query: Point3,
    radius: f32,
    scratch: &mut SearchScratch,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) {
    let r_sq = radius * radius;
    // Two-phase in both modes: collect the visited leaves, then sweep
    // them all through one backend dispatch.
    let mut visited = scratch.take_visited();
    tree.collect_leaves_in_radius(query, radius, scratch, stats, &mut visited);
    match bonsai {
        None => tree.sweep_leaf_visits(&visited, query, r_sq, out, stats),
        Some(bonsai) => {
            sweep_visited_compressed(bonsai, tree, lut, &visited, query, r_sq, out, stats);
        }
    }
    scratch.store_visited(visited);
}

/// The compressed mode's whole visit-list sweep: counts each visited
/// leaf's inspection work through its directory reference (deletions
/// can hollow a leaf out completely — it owns no compressed structure
/// and contributes nothing), then runs the classification sweep. The
/// single site both `RadiusSearchEngine::sweep_visited` and the search
/// paths go through, so the bench/test kernel can never drift from the
/// real searches.
#[allow(clippy::too_many_arguments)] // the flattened engine state
fn sweep_visited_compressed(
    bonsai: &BonsaiTree,
    tree: &KdTree,
    lut: &PartErrorMem,
    visited: &[LeafVisit],
    query: Point3,
    r_sq: f32,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) {
    let directory = bonsai.directory();
    for &(leaf, _, count) in visited {
        if count == 0 {
            continue;
        }
        // lint: allow(panic-free-serving) — baking invariant: every
        // non-empty leaf of a baked Bonsai tree has a directory entry.
        let leaf_ref = directory
            .leaf_ref(leaf)
            .expect("compressed engine requires a compressed leaf");
        debug_assert_eq!(leaf_ref.num_pts as u32, count);
        stats.points_inspected += count as u64;
        stats.point_bytes_loaded += leaf_ref.padded_len() as u64;
    }
    scan_compressed_visited(
        bonsai.approx_soa(),
        tree.vind(),
        tree.points(),
        lut,
        visited,
        query,
        r_sq,
        out,
        stats,
    );
}

/// The compressed (Bonsai/software-codec) sweep of a query's visit
/// list: the SIMD lane path when a gather-capable backend is active,
/// otherwise the scalar reference loop. Both evaluate, per point in
/// visit order then ascending slot order, the same f16-approximate
/// arithmetic as the SQDWE lanes — diff from the approximate
/// coordinate, squared distance and Eq. 11 error accumulated
/// x → y → z in `f32` — and run the identical LUT/shell/fallback tail
/// ([`classify_candidate`]), so membership, `dist_sq` bits, hit order
/// and [`SearchStats`] never depend on the backend.
#[allow(clippy::too_many_arguments)] // the flattened sweep state
pub(crate) fn scan_compressed_visited(
    approx: &ApproxSoa,
    vind: &[u32],
    points: &[Point3],
    lut: &PartErrorMem,
    visited: &[LeafVisit],
    query: Point3,
    r_sq: f32,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) {
    if sweep_compressed_visited(approx, vind, points, lut, visited, query, r_sq, out, stats) {
        return;
    }
    // Scalar reference path (also the no-`simd` build): slice windows
    // hoisted to one exact length per leaf so the loop body indexes
    // without bounds checks.
    for &(_, start, count) in visited {
        let (start, count) = (start as usize, count as usize);
        let ax = &approx.x[start..start + count];
        let ay = &approx.y[start..start + count];
        let az = &approx.z[start..start + count];
        let exw = &approx.ex[start..start + count];
        let eyw = &approx.ey[start..start + count];
        let ezw = &approx.ez[start..start + count];
        let vw = &vind[start..start + count];
        for i in 0..count {
            let dx = query.x - ax[i];
            let dy = query.y - ay[i];
            let dz = query.z - az[i];
            let d_sq = dx * dx + dy * dy + dz * dz;
            classify_candidate(
                d_sq,
                dx.abs(),
                dy.abs(),
                dz.abs(),
                exw[i],
                eyw[i],
                ezw[i],
                vw[i],
                points,
                lut,
                query,
                r_sq,
                out,
                stats,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_isa::Machine;
    use bonsai_kdtree::KdTreeConfig;
    use bonsai_sim::SimEngine;

    fn urban_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                let cluster = (next() * 12.0).floor();
                Point3::new(
                    (cluster - 6.0) * 15.0 + next() * 3.0,
                    (next() - 0.5) * 60.0,
                    next() * 2.5,
                )
            })
            .collect()
    }

    #[test]
    fn compressed_engine_matches_instrumented_processor_exactly() {
        let cloud = urban_cloud(3000, 1);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);
        let mut scratch = SearchScratch::new();
        let mut fast_out = Vec::new();
        let mut machine = Machine::new();
        let mut slow_out = Vec::new();
        for (qi, r) in [(0usize, 0.8f32), (500, 2.0), (1700, 0.3), (2999, 5.0)] {
            let mut fast_stats = SearchStats::default();
            let mut slow_stats = SearchStats::default();
            engine.search_one(cloud[qi], r, &mut scratch, &mut fast_out, &mut fast_stats);
            tree.radius_search(
                &mut sim,
                &mut machine,
                cloud[qi],
                r,
                &mut slow_out,
                &mut slow_stats,
            );
            assert_eq!(fast_out, slow_out, "query {qi} r {r}");
            assert_eq!(fast_stats, slow_stats, "stats for query {qi} r {r}");
        }
    }

    #[test]
    fn baseline_engine_matches_simple_search() {
        let cloud = urban_cloud(1200, 7);
        let mut sim = SimEngine::disabled();
        let tree = bonsai_kdtree::KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::baseline(&tree);
        assert_eq!(engine.mode(), EngineMode::Baseline);
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        for qi in [3usize, 400, 1199] {
            engine.search_one(cloud[qi], 1.2, &mut scratch, &mut out, &mut stats);
            assert_eq!(out, tree.radius_search_simple(cloud[qi], 1.2), "query {qi}");
        }
    }

    #[test]
    fn batch_matches_per_query_with_aggregated_stats() {
        let cloud = urban_cloud(2000, 3);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);
        let queries: Vec<Point3> = cloud.iter().step_by(11).copied().collect();

        let mut batch = QueryBatch::new();
        engine.search_batch(&queries, 1.0, &mut batch);
        assert_eq!(batch.num_queries(), queries.len());

        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut total = SearchStats::default();
        for (i, &q) in queries.iter().enumerate() {
            let mut stats = SearchStats::default();
            engine.search_one(q, 1.0, &mut scratch, &mut out, &mut stats);
            assert_eq!(batch.results(i), &out[..], "query {i}");
            total += stats;
        }
        assert_eq!(*batch.stats(), total);
        assert!(batch.stats().fallbacks < batch.stats().points_inspected / 10);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_is_identical_to_sequential() {
        let cloud = urban_cloud(4000, 9);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);

        let mut sequential = QueryBatch::new();
        engine.search_batch(&cloud, 0.9, &mut sequential);
        for threads in [0, 1, 2, 3, 7] {
            let mut parallel = QueryBatch::new();
            engine.search_batch_parallel(&cloud, 0.9, &mut parallel, threads);
            assert_eq!(parallel.num_queries(), sequential.num_queries());
            for i in 0..sequential.num_queries() {
                assert_eq!(
                    parallel.results(i),
                    sequential.results(i),
                    "threads {threads} query {i}"
                );
            }
            assert_eq!(parallel.stats(), sequential.stats(), "threads {threads}");
        }
    }

    /// Regression for the degenerate-radius bug: before the guard,
    /// `radius = -r` returned the same neighbors as `+r` in every
    /// engine mode because only `r² = radius·radius` was compared.
    #[test]
    fn degenerate_radii_are_empty_in_every_engine_mode() {
        let cloud = urban_cloud(1500, 11);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for engine in [
            RadiusSearchEngine::baseline(tree.kd_tree()),
            RadiusSearchEngine::bonsai(&tree),
            RadiusSearchEngine::software_codec(&tree),
        ] {
            let mut scratch = SearchScratch::new();
            let mut out = Vec::new();
            let mut stats = SearchStats::default();
            // Sanity: the positive radius finds neighbors.
            engine.search_one(cloud[7], 1.0, &mut scratch, &mut out, &mut stats);
            assert!(!out.is_empty(), "{:?}", engine.mode());
            for r in [0.0f32, -1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
                let mut stats = SearchStats::default();
                engine.search_one(cloud[7], r, &mut scratch, &mut out, &mut stats);
                assert!(out.is_empty(), "{:?} radius {r}", engine.mode());
                assert_eq!(
                    stats,
                    SearchStats::default(),
                    "{:?} radius {r}",
                    engine.mode()
                );

                let mut batch = QueryBatch::new();
                engine.search_batch(&cloud[..32], r, &mut batch);
                assert_eq!(batch.num_queries(), 32);
                assert_eq!(batch.total_matches(), 0, "{:?} radius {r}", engine.mode());
                assert_eq!(*batch.stats(), SearchStats::default());

                #[cfg(feature = "parallel")]
                {
                    let mut parallel = QueryBatch::new();
                    engine.search_batch_parallel(&cloud[..32], r, &mut parallel, 3);
                    assert_eq!(parallel.num_queries(), 32);
                    assert_eq!(
                        parallel.total_matches(),
                        0,
                        "{:?} radius {r}",
                        engine.mode()
                    );
                }
            }
        }
    }

    #[test]
    fn software_codec_engine_shares_the_compressed_scan() {
        let cloud = urban_cloud(500, 5);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::software_codec(&tree);
        assert_eq!(engine.mode(), EngineMode::Compressed);
        let mut proc = crate::SoftwareCodecProcessor::new(&mut sim, tree.directory());
        let mut scratch = SearchScratch::new();
        let mut fast_out = Vec::new();
        let mut slow_out = Vec::new();
        for qi in [0usize, 250, 499] {
            let mut fast_stats = SearchStats::default();
            let mut slow_stats = SearchStats::default();
            engine.search_one(cloud[qi], 1.5, &mut scratch, &mut fast_out, &mut fast_stats);
            tree.kd_tree().radius_search(
                &mut sim,
                &mut proc,
                cloud[qi],
                1.5,
                &mut slow_out,
                &mut slow_stats,
            );
            assert_eq!(fast_out, slow_out, "query {qi}");
            assert_eq!(fast_stats, slow_stats, "stats for query {qi}");
        }
    }
}
