//! Vectorized compressed (Bonsai) leaf sweep.
//!
//! The hardware `SQDWE` instruction evaluates the f16-approximate
//! squared distance *and* the Eq. 11 error accumulation across many
//! lanes at once; this module reproduces that split in software over
//! the lane-padded f16 SoA rows baked by
//! [`BonsaiTree`](crate::BonsaiTree). The AVX2 kernel vectorizes the
//! whole conclusive path — `d′²`, the three `|A − B′|` magnitudes, the
//! [`PartErrorMem`] coefficients (synthesized in-register from the f16
//! exponent fields: every ROM entry is an exact power of two, verified
//! bit-for-bit against [`lookup`](PartErrorMem::lookup) by
//! `synthesized_rom_matches_lut`), the Eq. 11 sum and the Eq. 12
//! shell comparisons — while
//! inconclusive ([`Recompute`](ShellClass::Recompute)) lanes drop to
//! the identical scalar exact-fallback, lane by lane in ascending slot
//! order. Every lane evaluates the same `f32` expressions in the same
//! order as the scalar loop (no FMA contraction), so membership,
//! `dist_sq` bits, hit order and stats are bit-identical to the
//! instrumented SQDWE processor.
//!
//! Narrower backends (SSE2/NEON) lack the shuffle-table compaction and
//! 8-wide integer lanes this kernel leans on; measured against the
//! scalar loop, spilling the lane registers so a scalar tail can
//! classify costs more than the arithmetic it saves, so the compressed
//! sweep *declines* on them and the scalar reference path runs (the
//! baseline sweep still vectorizes there — its inner loop has no
//! table work).
//!
//! Padding lanes (+∞ sentinel coordinates) would classify as
//! inconclusive (their error terms are non-finite) and fall back on a
//! sentinel `vind` entry, so each lane group masks classification to
//! its `live = min(LANES, count − base)` leading lanes.

use bonsai_floatfmt::PartErrorMem;
use bonsai_geom::Point3;
use bonsai_kdtree::simd::{active_backend, LaneBackend, LeafVisit};
use bonsai_kdtree::{Neighbor, SearchStats};

use crate::shell::{classify, ShellClass};
use crate::tree::ApproxSoa;

/// One candidate's scalar classification tail — the code the scalar
/// reference loop runs per point, and the code a SIMD kernel's
/// inconclusive lanes must reproduce exactly.
#[allow(clippy::too_many_arguments)] // the flattened per-lane state
#[inline]
pub(crate) fn classify_candidate(
    d_sq: f32,
    adx: f32,
    ady: f32,
    adz: f32,
    ex: u8,
    ey: u8,
    ez: u8,
    idx: u32,
    points: &[Point3],
    lut: &PartErrorMem,
    query: Point3,
    r_sq: f32,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) {
    let t_err = lut.max_squared_difference_error(adx, ex)
        + lut.max_squared_difference_error(ady, ey)
        + lut.max_squared_difference_error(adz, ez);
    match classify(d_sq, t_err, r_sq) {
        ShellClass::In => out.push(Neighbor {
            index: idx,
            dist_sq: d_sq,
        }),
        ShellClass::Out => {}
        ShellClass::Recompute => recompute_candidate(idx, points, query, r_sq, out, stats),
    }
}

/// The exact `f32` fallback of one inconclusive candidate (Eq. 3 over
/// the original point), shared by the scalar tail and the SIMD
/// kernels' masked fallback lanes.
#[inline]
fn recompute_candidate(
    idx: u32,
    points: &[Point3],
    query: Point3,
    r_sq: f32,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) {
    stats.fallbacks += 1;
    stats.point_bytes_loaded += 12;
    let exact = points[idx as usize].distance_squared(query);
    if exact <= r_sq {
        out.push(Neighbor {
            index: idx,
            dist_sq: exact,
        });
    }
}

/// Vectorized compressed sweep of a query's collected leaf visits
/// (each `(leaf, start, count)`, swept in order; the classification
/// work of all visits runs through **one** backend dispatch with the
/// lane constants and gather bases hoisted). Returns `false` without
/// touching `out`/`stats` when no gather-capable backend is active —
/// the caller then runs the scalar reference loop.
#[allow(unused_variables)] // non-AVX2 builds use none of the inputs
#[allow(clippy::needless_return)] // the return closes the x86_64 cfg arm
#[allow(clippy::too_many_arguments)] // the flattened sweep state
#[allow(clippy::ptr_arg)] // the lane kernel pushes; non-AVX2 builds never touch `out`
#[inline]
pub(crate) fn sweep_compressed_visited(
    approx: &ApproxSoa,
    vind: &[u32],
    points: &[Point3],
    lut: &PartErrorMem,
    visited: &[LeafVisit],
    query: Point3,
    r_sq: f32,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) -> bool {
    if active_backend() != LaneBackend::Avx2 {
        return false;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        for &(_, start, count) in visited {
            let hi = start as usize + bonsai_kdtree::simd::lane_padded(count as usize);
            // lint: allow(debug-assert-discipline) — this assert *is*
            // the bounds contract of the unsafe AVX2 kernel below;
            // eliding it in release builds would turn a baking bug
            // into UB.
            assert!(
                hi <= approx.x.len()
                    && hi <= approx.y.len()
                    && hi <= approx.z.len()
                    && hi <= approx.ex.len()
                    && hi <= approx.ey.len()
                    && hi <= approx.ez.len()
                    && hi <= vind.len(),
                "compressed sweep past the f16 rows: start {start} count {count} rows {}",
                approx.x.len()
            );
        }
        // SAFETY: row bounds asserted above; AVX2 presence established
        // by the backend detection.
        unsafe {
            avx2::sweep(approx, vind, points, visited, query, r_sq, out, stats);
        }
        return true;
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        unreachable!("LaneBackend::Avx2 is only ever detected on x86_64 with the simd feature")
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::*;
    use crate::shell::SHELL_SLACK_ULPS;
    use bonsai_kdtree::simd::lane_padded;
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller guarantees every visit's lane-padded footprint is within
    /// every f16 row and `vind`, and that AVX2 is available.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // the flattened sweep state
    pub(super) unsafe fn sweep(
        approx: &ApproxSoa,
        vind: &[u32],
        points: &[Point3],
        visited: &[LeafVisit],
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let (px, py, pz) = (approx.x.as_ptr(), approx.y.as_ptr(), approx.z.as_ptr());
        let (pex, pey, pez) = (approx.ex.as_ptr(), approx.ey.as_ptr(), approx.ez.as_ptr());
        let qx = _mm256_set1_ps(query.x);
        let qy = _mm256_set1_ps(query.y);
        let qz = _mm256_set1_ps(query.z);
        let rs = _mm256_set1_ps(r_sq);
        let abs_mask = _mm256_set1_ps(f32::from_bits(0x7FFF_FFFF));
        // `16 · ε` is a power of two, so pre-multiplying it is exact
        // and the per-lane `slack` bits match the scalar
        // `SHELL_SLACK_ULPS * f32::EPSILON * max(d′², r²)`.
        let slack_coef = _mm256_set1_ps(SHELL_SLACK_ULPS * f32::EPSILON);
        for &(_, start, count) in visited {
            let (start, count) = (start as usize, count as usize);
            let mut g = 0;
            while g < lane_padded(count) {
                let base = start + g;
                // Same arithmetic, same order as the scalar loop and the
                // SQDWE lanes: diff from the f16-approximate coordinate
                // (query − approx), then (dx² + dy²) + dz² — no FMA.
                // SAFETY: `base..base + 8` is within every approx row —
                // the caller asserted each visit's lane-padded footprint
                // against all six rows and `vind`.
                let (dx, dy, dz) = unsafe {
                    (
                        _mm256_sub_ps(qx, _mm256_loadu_ps(px.add(base))),
                        _mm256_sub_ps(qy, _mm256_loadu_ps(py.add(base))),
                        _mm256_sub_ps(qz, _mm256_loadu_ps(pz.add(base))),
                    )
                };
                let d = _mm256_add_ps(
                    _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
                    _mm256_mul_ps(dz, dz),
                );
                // Eq. 9 per coordinate with in-register ROM synthesis: the
                // `part_error_mem` entries are all exact powers of two
                // (`two_max_delta[e] = 2^(max(e,1)−25)`, `max_delta_sq[e] =
                // 2^(2·max(e,1)−52)`, overflow row `e = 31` forced to ∞
                // below), so each lane builds them by exponent-field bit
                // arithmetic instead of a memory gather — bit-identical to
                // the ROM (asserted by `synthesized_rom_matches_lut`), an
                // order of magnitude cheaper than `vgatherdps`. Then
                // `two_max_delta · |A − B′| + max_delta_sq`, accumulated
                // x → y → z like the scalar sum.
                // SAFETY: the 8-byte exponent loads cover
                // `base..base + 8` of the u8 rows — in bounds by the
                // same caller-asserted footprint; `part_error_lanes`
                // is register-only and needs only AVX2, enabled here.
                let (tx, ty, tz, ix, iy, iz) = unsafe {
                    let ix = _mm256_cvtepu8_epi32(_mm_loadl_epi64(pex.add(base) as *const __m128i));
                    let iy = _mm256_cvtepu8_epi32(_mm_loadl_epi64(pey.add(base) as *const __m128i));
                    let iz = _mm256_cvtepu8_epi32(_mm_loadl_epi64(pez.add(base) as *const __m128i));
                    (
                        part_error_lanes(ix, _mm256_and_ps(dx, abs_mask)),
                        part_error_lanes(iy, _mm256_and_ps(dy, abs_mask)),
                        part_error_lanes(iz, _mm256_and_ps(dz, abs_mask)),
                        ix,
                        iy,
                        iz,
                    )
                };
                let t_err = _mm256_add_ps(_mm256_add_ps(tx, ty), tz);
                // Overflowed-f16 rows (exponent field 31) have an infinite
                // bound: force those lanes non-finite so they classify
                // Recompute exactly like the scalar LUT path.
                let e31 = _mm256_set1_epi32(31);
                let any31 = _mm256_or_si256(
                    _mm256_or_si256(_mm256_cmpeq_epi32(ix, e31), _mm256_cmpeq_epi32(iy, e31)),
                    _mm256_cmpeq_epi32(iz, e31),
                );
                let t_err = _mm256_blendv_ps(
                    t_err,
                    _mm256_set1_ps(f32::INFINITY),
                    _mm256_castsi256_ps(any31),
                );
                // Eq. 12 with the documented f32 slack. `max_ps(d, rs)`
                // returns its second operand on a NaN `d`, matching Rust's
                // `f32::max`; non-finite `t` fails both ordered compares,
                // which is exactly the scalar classify's forced Recompute.
                let t = _mm256_add_ps(t_err, _mm256_mul_ps(slack_coef, _mm256_max_ps(d, rs)));
                let m_in =
                    _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LE_OQ>(d, _mm256_sub_ps(rs, t))) as u32;
                let m_out =
                    _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GT_OQ>(d, _mm256_add_ps(rs, t))) as u32;
                // Conclusive-In lanes push their approximate distance;
                // lanes that are neither In nor Out re-compute exactly —
                // all in ascending slot order. Padding lanes are clipped
                // by the live mask.
                let live = (count - g).min(8);
                let live_bits = 0xFFu32 >> (8 - live);
                let m_in = m_in & live_bits;
                let mut cand = (m_in | !m_out) & live_bits;
                let recompute = cand & !m_in;
                if recompute == 0 {
                    // The common shape (~99.6 % of points classify
                    // conclusively): every candidate is a conclusive In,
                    // so the whole group compacts with vector stores.
                    if m_in != 0 {
                        // SAFETY: `m_in` is live-masked to 8 bits and
                        // `base..base + 8` is within `vind` (asserted
                        // footprint); AVX2 is enabled on this fn.
                        unsafe {
                            bonsai_kdtree::simd::compact_hits_avx2(
                                vind.as_ptr(),
                                base,
                                d,
                                m_in,
                                out,
                            );
                        }
                    }
                } else if cand != 0 {
                    let mut dv = [0.0f32; 8];
                    // SAFETY: `dv` is an 8-float stack buffer sized
                    // for the full-register store.
                    unsafe {
                        _mm256_storeu_ps(dv.as_mut_ptr(), d);
                    }
                    while cand != 0 {
                        let j = cand.trailing_zeros() as usize;
                        let idx = vind[base + j];
                        if m_in & (1 << j) != 0 {
                            out.push(Neighbor {
                                index: idx,
                                dist_sq: dv[j],
                            });
                        } else {
                            super::recompute_candidate(idx, points, query, r_sq, out, stats);
                        }
                        cand &= cand - 1;
                    }
                }
                g += 8;
            }
        }
    }

    /// One coordinate's Eq. 9 term for 8 lanes, with the ROM entries
    /// synthesized from the exponent fields:
    /// `2^(max(e,1)−25) · adiff + 2^(2·max(e,1)−52)` — float-bit
    /// construction of exact powers of two, so the products and sums
    /// are bit-identical to the LUT path for every conclusive row
    /// (the ∞ row 31 is patched afterwards by the caller).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn part_error_lanes(e: __m256i, adiff: __m256) -> __m256 {
        let ec = _mm256_max_epi32(e, _mm256_set1_epi32(1));
        // two_max_delta = 2^(ec − 25): float bits ((ec + 102) << 23).
        let two = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            ec,
            _mm256_set1_epi32(102),
        )));
        // max_delta_sq = 2^(2·ec − 52): float bits ((2·ec + 75) << 23).
        let sq = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_add_epi32(ec, ec),
            _mm256_set1_epi32(75),
        )));
        _mm256_add_ps(_mm256_mul_ps(two, adiff), sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-register ROM synthesis of the AVX2 kernel must agree
    /// with `part_error_mem` bit for bit on every conclusive row, and
    /// the overflow row must be non-finite (the kernel patches those
    /// lanes to ∞, which classifies Recompute exactly like the LUT).
    #[test]
    fn synthesized_rom_matches_lut() {
        let lut = PartErrorMem::new();
        for e in 0u8..=30 {
            let ec = e.max(1) as u32;
            let two = f32::from_bits((ec + 102) << 23);
            let sq = f32::from_bits((2 * ec + 75) << 23);
            let entry = lut.lookup(e);
            assert_eq!(
                two.to_bits(),
                entry.two_max_delta.to_bits(),
                "two row, e {e}"
            );
            assert_eq!(sq.to_bits(), entry.max_delta_sq.to_bits(), "sq row, e {e}");
        }
        assert!(!lut.lookup(31).two_max_delta.is_finite());
        assert!(!lut.lookup(31).max_delta_sq.is_finite());
    }
}
