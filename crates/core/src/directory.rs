use bonsai_isa::{CompressedLeaf, CoordFlags, SLICE_BYTES};
use bonsai_kdtree::LeafId;
use bonsai_sim::SimEngine;

/// Reference to one compressed structure — the information the paper
/// stores in the leaf node via C unions (start index and length in the
/// `cmprsd_strct_array`, plus the point count it encodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafRef {
    /// Byte offset of the structure in the array (16-byte aligned: the
    /// array is filled by `STZPB` slice stores).
    pub offset: u32,
    /// Unpadded structure length in bytes.
    pub len: u16,
    /// Number of points encoded.
    pub num_pts: u8,
    /// The coordinate compression flags (also encoded in the structure's
    /// first 3 bits; duplicated here for statistics without decoding).
    pub flags: CoordFlags,
}

impl LeafRef {
    /// Number of 128-bit slices covering the structure.
    pub fn slices(&self) -> usize {
        (self.len as usize).div_ceil(SLICE_BYTES)
    }

    /// Bytes the structure occupies in memory (slice-padded).
    pub fn padded_len(&self) -> usize {
        self.slices() * SLICE_BYTES
    }
}

/// The `cmprsd_strct_array`: one contiguous byte array holding every
/// leaf's compressed structure consecutively, in leaf-creation order
/// (paper Section IV-C), plus the per-leaf directory of [`LeafRef`]s.
///
/// # Examples
///
/// ```
/// use bonsai_core::CompressedDirectory;
/// use bonsai_isa::codec;
/// use bonsai_sim::SimEngine;
///
/// let mut sim = SimEngine::disabled();
/// let mut dir = CompressedDirectory::new(&mut sim, 4);
/// let leaf = codec::compress(&[[0x3C00, 0x4000, 0x4200]]);
/// dir.insert(2, &leaf);
/// assert_eq!(dir.leaf_ref(2).unwrap().num_pts, 1);
/// assert_eq!(dir.bytes_of(2).len(), leaf.len());
/// ```
#[derive(Debug, Clone)]
pub struct CompressedDirectory {
    data: Vec<u8>,
    refs: Vec<Option<LeafRef>>,
    base_addr: u64,
    result_addr: u64,
}

impl CompressedDirectory {
    /// Creates an empty directory able to describe `num_nodes` tree
    /// nodes, reserving simulated address space for the worst case —
    /// including the shared result-set region every search over this
    /// tree writes its packed `(index, dist²)` pairs to. Allocating
    /// that region once per tree (instead of once per search) keeps
    /// the simulated address space bounded when one engine serves many
    /// searches.
    pub fn new(sim: &mut SimEngine, num_nodes: usize) -> CompressedDirectory {
        let capacity = num_nodes as u64 * bonsai_isa::MAX_COMPRESSED_BYTES as u64;
        CompressedDirectory {
            data: Vec::new(),
            refs: vec![None; num_nodes],
            base_addr: sim.alloc(capacity.max(SLICE_BYTES as u64), 64),
            result_addr: sim.alloc(64 * 1024, 64),
        }
    }

    /// Simulated base of the per-tree result-set region searches store
    /// hits to.
    pub fn result_addr(&self) -> u64 {
        self.result_addr
    }

    /// The simulated address the *next* inserted structure will occupy —
    /// the "next free index" the paper's modified PCL tracks, used as the
    /// `STZPB` target before the insertion is recorded.
    pub fn next_addr(&self) -> u64 {
        self.base_addr + self.data.len() as u64
    }

    /// Appends a compressed structure for leaf `leaf` at the next free
    /// (slice-aligned) index and records its [`LeafRef`].
    ///
    /// Returns the simulated address the structure was placed at (the
    /// `STZPB` target).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range or already has a structure.
    // lint: allow(guard-dataflow) — directory baking API: it consumes
    // an already-encoded leaf and takes no query point or radius from
    // outside the crate, so there is no degenerate input to guard.
    pub fn insert(&mut self, leaf: LeafId, compressed: &CompressedLeaf) -> u64 {
        let slot = &mut self.refs[leaf as usize];
        assert!(slot.is_none(), "leaf {leaf} compressed twice");
        let offset = self.data.len();
        debug_assert_eq!(offset % SLICE_BYTES, 0);
        self.data.extend_from_slice(compressed.bytes());
        // STZPB stores whole slices: pad to the slice boundary.
        let padded = compressed.slices() * SLICE_BYTES;
        self.data.resize(offset + padded, 0);
        *slot = Some(LeafRef {
            offset: offset as u32,
            len: compressed.len() as u16,
            num_pts: compressed.num_pts() as u8,
            flags: compressed.flags(),
        });
        self.base_addr + offset as u64
    }

    /// Replaces (or first creates) leaf `leaf`'s structure: the new
    /// bytes are appended at the next free slice-aligned index and the
    /// leaf's reference is rewritten. The old structure's bytes become
    /// unreachable garbage in the array — the incremental-update
    /// fragmentation a full rebuild reclaims.
    ///
    /// Returns the simulated address the structure was placed at.
    pub fn replace(&mut self, leaf: LeafId, compressed: &CompressedLeaf) -> u64 {
        self.refs[leaf as usize] = None;
        self.insert(leaf, compressed)
    }

    /// Forgets leaf `leaf`'s structure (the node stopped being a live
    /// leaf). A missing entry is fine — clearing is idempotent.
    pub fn clear(&mut self, leaf: LeafId) {
        if let Some(slot) = self.refs.get_mut(leaf as usize) {
            *slot = None;
        }
    }

    /// Grows the per-node reference table to cover `num_nodes` tree
    /// nodes (mutations may append node-pool slots past the build-time
    /// size). Never shrinks.
    pub fn ensure_nodes(&mut self, num_nodes: usize) {
        if num_nodes > self.refs.len() {
            self.refs.resize(num_nodes, None);
        }
    }

    /// Replays a tree compaction through the directory: every surviving
    /// leaf's reference moves to its new node id (`node_map[old]`,
    /// [`CompactRemap::DROPPED`](bonsai_kdtree::CompactRemap::DROPPED)
    /// entries vanish) and the byte array is repacked in ascending new-id
    /// order, dropping the unreachable bytes earlier
    /// [`replace`](CompressedDirectory::replace) calls abandoned. Baked
    /// bytes are **moved**, never re-encoded, so every structure decodes
    /// bit-identically afterwards. The reference table is resized to
    /// exactly `new_nodes`.
    pub fn compact_remap(&mut self, node_map: &[u32], new_nodes: usize) {
        let mut moves: Vec<(u32, LeafRef)> = self
            .refs
            .iter()
            .enumerate()
            .filter_map(|(old_id, r)| {
                let r = (*r)?;
                match node_map.get(old_id).copied() {
                    Some(new_id) if new_id != bonsai_kdtree::CompactRemap::DROPPED => {
                        Some((new_id, r))
                    }
                    _ => None,
                }
            })
            .collect();
        moves.sort_unstable_by_key(|&(id, _)| id);
        let mut refs = vec![None; new_nodes];
        let mut data = Vec::with_capacity(self.data.len());
        for (new_id, mut r) in moves {
            let offset = data.len();
            debug_assert_eq!(offset % SLICE_BYTES, 0);
            data.extend_from_slice(
                &self.data[r.offset as usize..r.offset as usize + r.padded_len()],
            );
            r.offset = offset as u32;
            refs[new_id as usize] = Some(r);
        }
        self.data = data;
        self.refs = refs;
    }

    /// The reference for leaf `leaf`, if it was compressed.
    pub fn leaf_ref(&self, leaf: LeafId) -> Option<LeafRef> {
        self.refs.get(leaf as usize).copied().flatten()
    }

    /// The packed bytes of leaf `leaf`'s structure.
    ///
    /// # Panics
    ///
    /// Panics if the leaf has no structure.
    pub fn bytes_of(&self, leaf: LeafId) -> &[u8] {
        // lint: allow(panic-free-serving) — documented `# Panics`
        // contract of this accessor; callers hold a baked directory.
        let r = self.leaf_ref(leaf).expect("leaf not compressed");
        &self.data[r.offset as usize..r.offset as usize + r.len as usize]
    }

    /// The simulated address of leaf `leaf`'s structure.
    ///
    /// # Panics
    ///
    /// Panics if the leaf has no structure.
    pub fn addr_of(&self, leaf: LeafId) -> u64 {
        // lint: allow(panic-free-serving) — same documented contract
        // as `bytes_of`: callers hold a baked directory.
        let r = self.leaf_ref(leaf).expect("leaf not compressed");
        self.base_addr + r.offset as u64
    }

    /// Total bytes occupied by the array (slice-padded, the memory
    /// footprint).
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// Iterator over all recorded leaf references.
    pub fn refs(&self) -> impl Iterator<Item = (LeafId, LeafRef)> + '_ {
        self.refs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (i as LeafId, r)))
    }
}

#[cfg(feature = "chaos")]
impl CompressedDirectory {
    /// Chaos hook: redirects the `nth % live`-th recorded reference
    /// one slice past the end of the byte array, so its byte range no
    /// longer fits — the audit's range check catches it. Returns
    /// `false` when no reference is recorded.
    pub fn chaos_corrupt_ref(&mut self, nth: usize) -> bool {
        let live: Vec<usize> = self
            .refs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return false;
        }
        let leaf = live[nth % live.len()];
        let past_end = (self.data.len() + SLICE_BYTES) as u32;
        if let Some(r) = &mut self.refs[leaf] {
            r.offset = past_end;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_isa::codec;

    fn sample_leaf(n: usize) -> CompressedLeaf {
        let pts: Vec<[u16; 3]> = (0..n)
            .map(|i| [0x3C00 + i as u16, 0x4000, 0x4200])
            .collect();
        codec::compress(&pts)
    }

    #[test]
    fn structures_are_slice_aligned_and_consecutive() {
        let mut sim = SimEngine::disabled();
        let mut dir = CompressedDirectory::new(&mut sim, 10);
        let a = sample_leaf(15);
        let b = sample_leaf(7);
        let addr_a = dir.insert(0, &a);
        let addr_b = dir.insert(3, &b);
        assert_eq!(addr_a % 16, 0);
        assert_eq!(addr_b, addr_a + (a.slices() * SLICE_BYTES) as u64);
        assert_eq!(dir.bytes_of(0), a.bytes());
        assert_eq!(dir.bytes_of(3), b.bytes());
        assert_eq!(dir.total_bytes(), (a.slices() + b.slices()) * SLICE_BYTES);
    }

    #[test]
    fn refs_report_slices_and_padding() {
        let leaf = sample_leaf(15); // 59 bytes → 4 slices
        let r = LeafRef {
            offset: 0,
            len: leaf.len() as u16,
            num_pts: 15,
            flags: leaf.flags(),
        };
        assert_eq!(r.slices(), 4);
        assert_eq!(r.padded_len(), 64);
    }

    #[test]
    fn missing_leaf_is_none() {
        let mut sim = SimEngine::disabled();
        let dir = CompressedDirectory::new(&mut sim, 4);
        assert!(dir.leaf_ref(2).is_none());
        assert!(dir.leaf_ref(99).is_none());
    }

    #[test]
    #[should_panic(expected = "compressed twice")]
    fn double_insert_panics() {
        let mut sim = SimEngine::disabled();
        let mut dir = CompressedDirectory::new(&mut sim, 4);
        let leaf = sample_leaf(3);
        dir.insert(1, &leaf);
        dir.insert(1, &leaf);
    }

    #[test]
    fn compact_remap_moves_refs_and_drops_garbage_bytes() {
        let mut sim = SimEngine::disabled();
        let mut dir = CompressedDirectory::new(&mut sim, 6);
        let a = sample_leaf(15);
        let b = sample_leaf(7);
        let c = sample_leaf(3);
        dir.insert(1, &a);
        dir.insert(4, &b);
        dir.insert(5, &c);
        // Replacing leaf 1 abandons its original bytes in the array.
        dir.replace(1, &b);
        let garbage = a.slices() * SLICE_BYTES;
        let live = 2 * b.slices() * SLICE_BYTES + c.slices() * SLICE_BYTES;
        assert_eq!(dir.total_bytes(), garbage + live);

        // Old 1 → new 0, old 4 → dropped, old 5 → new 2.
        let node_map = [u32::MAX, 0, u32::MAX, u32::MAX, u32::MAX, 2];
        dir.compact_remap(&node_map, 3);
        assert_eq!(dir.bytes_of(0), b.bytes());
        assert_eq!(dir.bytes_of(2), c.bytes());
        assert!(dir.leaf_ref(1).is_none());
        assert_eq!(
            dir.total_bytes(),
            (b.slices() + c.slices()) * SLICE_BYTES,
            "garbage and dropped leaves reclaimed"
        );
        // Repacked in ascending new-id order from offset 0.
        assert_eq!(dir.leaf_ref(0).unwrap().offset, 0);
    }

    #[test]
    fn refs_iterator_yields_inserted_leaves() {
        let mut sim = SimEngine::disabled();
        let mut dir = CompressedDirectory::new(&mut sim, 8);
        dir.insert(5, &sample_leaf(2));
        dir.insert(1, &sample_leaf(4));
        let ids: Vec<LeafId> = dir.refs().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 5]);
    }
}
