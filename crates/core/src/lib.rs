//! K-D Bonsai: compressed k-d tree leaves with exact-result radius search.
//!
//! This crate is the paper's primary contribution. A [`BonsaiTree`] is a
//! PCL-style k-d tree whose leaf points are additionally stored in a
//! compressed side array (the `cmprsd_strct_array`,
//! [`CompressedDirectory`]), produced during construction with the
//! Bonsai compress instructions. Radius search then fetches the small
//! compressed structures instead of the scattered 12-byte `f32` points —
//! the data-movement saving that yields the paper's end-to-end gains.
//!
//! Compression is lossy (`f32 → f16` mantissa truncation), but the search
//! is **exact**: every distance computed from compressed data carries a
//! worst-case error bound (Eq. 9/11), and a candidate whose squared
//! distance falls inside the uncertainty shell `r² ± Tεsd` (Eq. 12,
//! [`shell`]) is re-classified from the original `f32` point. The crate's
//! tests assert bit-identical result sets against the baseline.
//!
//! # Examples
//!
//! ```
//! use bonsai_core::BonsaiTree;
//! use bonsai_geom::Point3;
//! use bonsai_kdtree::KdTreeConfig;
//! use bonsai_sim::SimEngine;
//!
//! let cloud: Vec<Point3> = (0..200)
//!     .map(|i| Point3::new((i % 20) as f32 * 0.3, (i / 20) as f32 * 0.3, 0.5))
//!     .collect();
//! let mut sim = SimEngine::disabled();
//! let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
//!
//! // Same result membership as the uncompressed baseline, guaranteed.
//! let q = cloud[42];
//! let bonsai: Vec<u32> =
//!     tree.radius_search_simple(q, 0.5).iter().map(|n| n.index).collect();
//! let baseline: Vec<u32> =
//!     tree.kd_tree().radius_search_simple(q, 0.5).iter().map(|n| n.index).collect();
//! assert_eq!(bonsai, baseline);
//! ```

pub mod shell;

mod adapt;
mod audit;
#[cfg(feature = "chaos")]
mod chaos;
mod directory;
mod engine;
mod epoch;
#[cfg(feature = "parallel")]
mod fanout;
mod processor;
mod reduced;
mod shard;
mod simd;
mod software;
mod tree;

pub use adapt::{
    find_best_split_plane, find_best_split_plane_taxed, AdaptDecision, AdaptReport, LoadReport,
    LoadSample, RejectReason, ShardLoadProfile, ShardLoadReport, ShardPolicy, SplitPlane,
};
#[cfg(feature = "chaos")]
pub use chaos::{FaultKind, FaultPlan};
pub use directory::{CompressedDirectory, LeafRef};
pub use engine::{EngineMode, RadiusSearchEngine};
pub use epoch::{Epoch, EpochPublisher, QueryError};
pub use processor::BonsaiLeafProcessor;
pub use reduced::ReducedUncheckedProcessor;
pub use shard::{CompactionPolicy, Coverage, RouterSnapshot, ShardConfig, ShardRouter};
pub use software::SoftwareCodecProcessor;
pub use tree::{BonsaiTree, CompressionStats};
