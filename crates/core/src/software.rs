use bonsai_floatfmt::{Half, PartErrorMem};
use bonsai_geom::Point3;
use bonsai_isa::software;
use bonsai_kdtree::{KdTree, LeafId, LeafProcessor, Neighbor, SearchStats};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::directory::CompressedDirectory;
use crate::shell::{classify, ShellClass};

/// The software-only strawman of Section IV-A: compressed leaves are
/// decompressed with ordinary scalar instructions instead of `LDDCP`, and
/// distances/error bounds are computed scalar too.
///
/// Semantically identical to
/// [`BonsaiLeafProcessor`](crate::BonsaiLeafProcessor) (same structures,
/// same shell, same fallback), but each leaf costs hundreds of scalar
/// micro-ops — the paper measures radius search ~7× slower than the
/// baseline this way, which is why the ISA extensions exist. Regenerated
/// by the `ablation_software_codec` bench.
#[derive(Debug)]
pub struct SoftwareCodecProcessor<'a> {
    directory: &'a CompressedDirectory,
    lut: PartErrorMem,
    /// Simulated address of the software `part_error_mem` table (a real
    /// in-memory array here, unlike the FU-internal ROM).
    lut_addr: u64,
    out_addr: u64,
}

impl<'a> SoftwareCodecProcessor<'a> {
    /// Creates a processor over a tree's compressed directory.
    pub fn new(
        sim: &mut SimEngine,
        directory: &'a CompressedDirectory,
    ) -> SoftwareCodecProcessor<'a> {
        SoftwareCodecProcessor {
            lut: PartErrorMem::new(),
            lut_addr: sim.alloc(32 * 8, 64),
            out_addr: directory.result_addr(),
            directory,
        }
    }
}

impl LeafProcessor for SoftwareCodecProcessor<'_> {
    fn process_leaf(
        &mut self,
        sim: &mut SimEngine,
        tree: &KdTree,
        leaf: LeafId,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        if count == 0 {
            // A fully-deleted leaf owns no compressed structure.
            return;
        }
        // lint: allow(panic-free-serving) — baking invariant: every
        // non-empty leaf of a baked Bonsai tree has a directory entry.
        let leaf_ref = self
            .directory
            .leaf_ref(leaf)
            .expect("SoftwareCodecProcessor requires a compressed leaf");
        stats.points_inspected += count as u64;
        stats.point_bytes_loaded += leaf_ref.padded_len() as u64;
        sim.exec(OpClass::IntAlu, 2);

        // Software decompression (charges the documented scalar model).
        let mut decoded = [[0f32; 3]; bonsai_isa::MAX_POINTS];
        let bytes = self.directory.bytes_of(leaf);
        software::decompress_sw(
            sim,
            bytes,
            count as usize,
            self.directory.addr_of(leaf),
            &mut decoded,
        );

        for i in 0..count {
            let p16 = decoded[i as usize];
            // Scalar distance + error-bound evaluation: per coordinate a
            // sub, two muls, two adds, plus a LUT load.
            let mut d_sq = 0.0f32;
            let mut t_err = 0.0f32;
            for c in 0..3 {
                let b = p16[c];
                let diff = query[c] - b;
                d_sq += diff * diff;
                let exp_field = Half::from_f32(b).exponent_field();
                sim.load(self.lut_addr + exp_field as u64 * 8, 8);
                t_err += self.lut.max_squared_difference_error(diff.abs(), exp_field);
            }
            sim.exec(OpClass::FpAlu, 15);
            sim.exec(OpClass::IntAlu, 6);

            let class = classify(d_sq, t_err, r_sq);
            sim.branch(0x40, class != ShellClass::Recompute);
            match class {
                ShellClass::In => {
                    sim.load(tree.vind_entry_addr(start + i), 4);
                    sim.store(self.out_addr + out.len() as u64 * 8, 8);
                    sim.store(self.out_addr, 8); // result-set size fields
                    let idx = tree.vind()[(start + i) as usize];
                    out.push(Neighbor {
                        index: idx,
                        dist_sq: d_sq,
                    });
                }
                ShellClass::Out => {}
                ShellClass::Recompute => {
                    stats.fallbacks += 1;
                    stats.point_bytes_loaded += 12;
                    let prev = sim.set_kernel(Kernel::Fallback);
                    sim.load(tree.vind_entry_addr(start + i), 4);
                    let idx = tree.vind()[(start + i) as usize];
                    sim.load(tree.point_addr(idx), 12);
                    sim.exec(OpClass::FpAlu, 8);
                    sim.exec(OpClass::IntAlu, 3);
                    let exact = tree.points()[idx as usize].distance_squared(query);
                    let inside = exact <= r_sq;
                    sim.branch(0x41, inside);
                    if inside {
                        sim.store(self.out_addr + out.len() as u64 * 8, 8);
                        sim.store(self.out_addr, 8); // result-set size fields
                        out.push(Neighbor {
                            index: idx,
                            dist_sq: exact,
                        });
                    }
                    sim.set_kernel(prev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BonsaiTree;
    use bonsai_kdtree::KdTreeConfig;
    use bonsai_sim::CpuConfig;

    fn cloud(n: usize) -> Vec<Point3> {
        let mut state = 0x5DEECE66Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * 70.0, (next() - 0.5) * 70.0, next() * 2.0))
            .collect()
    }

    #[test]
    fn software_path_matches_baseline_membership() {
        let pts = cloud(1500);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(pts.clone(), KdTreeConfig::default(), &mut sim);
        let mut proc = SoftwareCodecProcessor::new(&mut sim, tree.directory());
        for qi in [0usize, 100, 700, 1400] {
            let mut out = Vec::new();
            let mut stats = SearchStats::default();
            tree.kd_tree()
                .radius_search(&mut sim, &mut proc, pts[qi], 1.8, &mut out, &mut stats);
            let mut got: Vec<u32> = out.iter().map(|n| n.index).collect();
            let mut expect: Vec<u32> = tree
                .kd_tree()
                .radius_search_simple(pts[qi], 1.8)
                .iter()
                .map(|n| n.index)
                .collect();
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect, "query {qi}");
        }
    }

    #[test]
    fn software_codec_costs_several_times_the_baseline_scan() {
        let pts = cloud(2000);
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let tree = BonsaiTree::build(pts.clone(), KdTreeConfig::default(), &mut sim);

        // Software-codec scan cost.
        sim.reset_counters();
        let mut sw = SoftwareCodecProcessor::new(&mut sim, tree.directory());
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        for qi in (0..2000).step_by(40) {
            tree.kd_tree()
                .radius_search(&mut sim, &mut sw, pts[qi], 1.5, &mut out, &mut stats);
        }
        let sw_scan = sim.kernel_counters(Kernel::LeafScan).micro_ops();

        // Baseline scan cost over the identical queries.
        sim.reset_counters();
        let mut base = bonsai_kdtree::BaselineLeafProcessor::new(&mut sim);
        for qi in (0..2000).step_by(40) {
            tree.kd_tree()
                .radius_search(&mut sim, &mut base, pts[qi], 1.5, &mut out, &mut stats);
        }
        let base_scan = sim.kernel_counters(Kernel::LeafScan).micro_ops();

        let factor = sw_scan as f64 / base_scan as f64;
        assert!(factor > 3.0, "software scan only {factor:.1}× the baseline");
    }
}
