use bonsai_geom::Point3;
use bonsai_isa::{HalfSel, Machine, VregId};
use bonsai_kdtree::{KdTree, LeafId, LeafProcessor, Neighbor, SearchStats};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::directory::CompressedDirectory;
use crate::shell::{classify, ShellClass};

/// Register allocation of the compressed leaf-scan sequence.
///
/// `LDDCP` fills v0–v5 with the decompressed f16 coordinates; v6 holds
/// the broadcast query coordinate; v7/v8 stage per-coordinate results;
/// v9–v12 accumulate `d′²` and v13–v16 accumulate `Tεsd` for the four
/// 4-point lane groups.
const V_PTS: VregId = 0;
const V_QUERY: VregId = 6;
const V_TMP_SQ: VregId = 7;
const V_TMP_ERR: VregId = 8;
const V_ACC_SQ: VregId = 9;
const V_ACC_ERR: VregId = 13;

/// Branch-site ids of the Bonsai leaf scan.
mod sites {
    /// Shell test conclusive / inconclusive.
    pub const SHELL: u32 = 0x20;
    /// Conclusive in/out direction.
    pub const CLASSIFY: u32 = 0x21;
    /// Fallback full-precision classification.
    pub const FALLBACK_CLASSIFY: u32 = 0x22;
}

/// Scalar ops to extract one point's `d′²`/`Tεsd` lanes and form the two
/// shell comparisons.
const PER_POINT_CLASSIFY_INT: u64 = 2;
const PER_POINT_CLASSIFY_FP: u64 = 2;
/// Scalar ops of a fallback re-computation (3 subs, 3 muls, 2 adds).
const FALLBACK_FP_OPS: u64 = 8;
const FALLBACK_INT_OPS: u64 = 3;
/// Bytes of one pushed result.
const RESULT_BYTES: u32 = 8;

/// The K-D Bonsai leaf-inspection path (Section IV-C): fetch the leaf's
/// compressed structure with `LDDCP`, compute distances and error bounds
/// with `SQDWEL`/`SQDWEH` + vector adds, classify through the uncertainty
/// shell, and re-compute the rare inconclusive points from the original
/// `f32` data.
///
/// Result membership is **identical to the baseline** (guaranteed by the
/// shell; property-tested). Reported distances are the f16-accurate
/// estimates for conclusively-in points (within `Tεsd` of the true value)
/// and exact for re-computed points — the euclidean-cluster pipeline uses
/// membership only.
///
/// Hits are emitted as one packed 8-byte `(index, dist²)` store plus the
/// result-set size update — the FU produces the pair together, so the
/// modified kernel commits two stores per hit where the baseline PCL
/// interface commits three (`k_indices` push, `k_sqr_distances` push,
/// size update). This is the modelled source of the paper's
/// committed-store reduction (Figure 9a).
#[derive(Debug)]
pub struct BonsaiLeafProcessor<'a> {
    directory: &'a CompressedDirectory,
    machine: &'a mut Machine,
    out_addr: u64,
}

impl<'a> BonsaiLeafProcessor<'a> {
    /// Creates a processor over a tree's compressed directory, using
    /// `machine` as the CPU's architectural state.
    ///
    /// The result-set region lives in the directory (allocated once per
    /// tree), so constructing a processor per search no longer grows
    /// the simulated address space — the seed allocated a fresh 64 KiB
    /// region on every search, unboundedly inflating one long-lived
    /// [`SimEngine`]'s address space and poisoning its cache model with
    /// artificial cold misses.
    pub fn new(
        directory: &'a CompressedDirectory,
        machine: &'a mut Machine,
    ) -> BonsaiLeafProcessor<'a> {
        BonsaiLeafProcessor {
            out_addr: directory.result_addr(),
            directory,
            machine,
        }
    }
}

impl LeafProcessor for BonsaiLeafProcessor<'_> {
    fn process_leaf(
        &mut self,
        sim: &mut SimEngine,
        tree: &KdTree,
        leaf: LeafId,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        if count == 0 {
            // A fully-deleted leaf owns no compressed structure.
            return;
        }
        // lint: allow(panic-free-serving) — baking invariant: every
        // non-empty leaf of a baked Bonsai tree has a directory entry.
        let leaf_ref = self
            .directory
            .leaf_ref(leaf)
            .expect("BonsaiLeafProcessor requires a compressed leaf");
        debug_assert_eq!(leaf_ref.num_pts as u32, count);
        stats.points_inspected += count as u64;
        stats.point_bytes_loaded += leaf_ref.padded_len() as u64;
        // Unpack offset/len from the (already loaded) leaf-node fields.
        sim.exec(OpClass::IntAlu, 2);

        // LDDCP: slices → ZipPts buffer → decompress → v0..v5.
        let bytes = self.directory.bytes_of(leaf);
        self.machine.lddcp(
            sim,
            V_PTS,
            count as usize,
            self.directory.addr_of(leaf),
            bytes,
        );

        // Distance and error accumulation, one coordinate at a time.
        let groups = (count as usize).div_ceil(4);
        for c in 0..3 {
            self.machine.broadcast_f32(sim, V_QUERY, query[c]);
            for g in 0..groups {
                let src = V_PTS + 2 * c + g / 2;
                let half = if g % 2 == 0 {
                    HalfSel::Low
                } else {
                    HalfSel::High
                };
                if c == 0 {
                    // First coordinate initializes the accumulators.
                    self.machine
                        .sqdwe(sim, V_ACC_SQ + g, V_ACC_ERR + g, V_QUERY, src, half);
                } else {
                    self.machine
                        .sqdwe(sim, V_TMP_SQ, V_TMP_ERR, V_QUERY, src, half);
                    self.machine
                        .vadd_f32(sim, V_ACC_SQ + g, V_ACC_SQ + g, V_TMP_SQ);
                    self.machine
                        .vadd_f32(sim, V_ACC_ERR + g, V_ACC_ERR + g, V_TMP_ERR);
                }
            }
        }

        // Per-point shell classification (Eq. 12).
        for i in 0..count {
            let g = (i / 4) as usize;
            let lane = (i % 4) as usize;
            let d_sq = self.machine.read_f32_lane(V_ACC_SQ + g, lane);
            let t_err = self.machine.read_f32_lane(V_ACC_ERR + g, lane);
            sim.exec(OpClass::IntAlu, PER_POINT_CLASSIFY_INT);
            sim.exec(OpClass::FpAlu, PER_POINT_CLASSIFY_FP);

            let class = classify(d_sq, t_err, r_sq);
            sim.branch(sites::SHELL, class != ShellClass::Recompute);
            match class {
                ShellClass::In => {
                    // The index of a hit comes from the vind array.
                    sim.load(tree.vind_entry_addr(start + i), 4);
                    sim.exec(OpClass::IntAlu, 1);
                    sim.branch(sites::CLASSIFY, true);
                    sim.store(
                        self.out_addr + out.len() as u64 * RESULT_BYTES as u64,
                        RESULT_BYTES,
                    );
                    sim.store(self.out_addr, 8); // result-set size fields
                    let idx = tree.vind()[(start + i) as usize];
                    out.push(Neighbor {
                        index: idx,
                        dist_sq: d_sq,
                    });
                }
                ShellClass::Out => {
                    sim.branch(sites::CLASSIFY, false);
                }
                ShellClass::Recompute => {
                    stats.fallbacks += 1;
                    stats.point_bytes_loaded += 12;
                    let prev = sim.set_kernel(Kernel::Fallback);
                    // Fetch the original f32 point and apply Eq. 3.
                    sim.load(tree.vind_entry_addr(start + i), 4);
                    let idx = tree.vind()[(start + i) as usize];
                    sim.load(tree.point_addr(idx), 12);
                    sim.exec(OpClass::IntAlu, FALLBACK_INT_OPS);
                    sim.exec(OpClass::FpAlu, FALLBACK_FP_OPS);
                    let p = tree.points()[idx as usize];
                    let exact = p.distance_squared(query);
                    let inside = exact <= r_sq;
                    sim.branch(sites::FALLBACK_CLASSIFY, inside);
                    if inside {
                        sim.store(
                            self.out_addr + out.len() as u64 * RESULT_BYTES as u64,
                            RESULT_BYTES,
                        );
                        sim.store(self.out_addr, 8); // result-set size fields
                        out.push(Neighbor {
                            index: idx,
                            dist_sq: exact,
                        });
                    }
                    sim.set_kernel(prev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BonsaiTree;
    use bonsai_kdtree::KdTreeConfig;
    use bonsai_sim::CpuConfig;

    fn random_cloud(n: usize, seed: u64, scale: f32) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * scale, (next() - 0.5) * scale, next() * 3.0))
            .collect()
    }

    #[test]
    fn membership_matches_baseline_exactly() {
        for seed in 1..6 {
            let cloud = random_cloud(1200, seed, 80.0);
            let mut sim = SimEngine::disabled();
            let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
            for (qi, r) in [(0usize, 0.8f32), (50, 2.0), (600, 0.35), (1100, 5.0)] {
                let q = cloud[qi];
                let mut bonsai: Vec<u32> = tree
                    .radius_search_simple(q, r)
                    .iter()
                    .map(|n| n.index)
                    .collect();
                let mut base: Vec<u32> = tree
                    .kd_tree()
                    .radius_search_simple(q, r)
                    .iter()
                    .map(|n| n.index)
                    .collect();
                bonsai.sort_unstable();
                base.sort_unstable();
                assert_eq!(bonsai, base, "seed {seed} query {qi} r {r}");
            }
        }
    }

    #[test]
    fn distances_are_within_the_error_bound() {
        let cloud = random_cloud(500, 9, 60.0);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = cloud[123];
        for n in tree.radius_search_simple(q, 3.0) {
            let exact = cloud[n.index as usize].distance_squared(q);
            // f16 coordinate error at 60 m scale: ~0.03 per axis; squared
            // distance error stays well below this tolerance.
            assert!(
                (n.dist_sq - exact).abs() < 0.3,
                "idx {} approx {} exact {}",
                n.index,
                n.dist_sq,
                exact
            );
        }
    }

    #[test]
    fn fallbacks_are_rare_on_realistic_data() {
        let cloud = random_cloud(5000, 3, 100.0);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        for qi in (0..5000).step_by(50) {
            tree.radius_search(&mut sim, &mut machine, cloud[qi], 1.5, &mut out, &mut stats);
        }
        let ratio = stats.fallback_ratio();
        // The paper reports 0.37 %; anything in the same order validates
        // the shell's tightness.
        assert!(ratio < 0.05, "fallback ratio {ratio}");
        assert!(stats.points_inspected > 1000);
    }

    #[test]
    fn loads_far_fewer_point_bytes_than_baseline() {
        let cloud = random_cloud(3000, 7, 90.0);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut bonsai_stats = SearchStats::default();
        let mut base_stats = SearchStats::default();
        let mut base_proc = bonsai_kdtree::BaselineLeafProcessor::new(&mut sim);
        for qi in (0..3000).step_by(60) {
            tree.radius_search(
                &mut sim,
                &mut machine,
                cloud[qi],
                2.0,
                &mut out,
                &mut bonsai_stats,
            );
            tree.kd_tree().radius_search(
                &mut sim,
                &mut base_proc,
                cloud[qi],
                2.0,
                &mut out,
                &mut base_stats,
            );
        }
        let ratio = bonsai_stats.point_bytes_loaded as f64 / base_stats.point_bytes_loaded as f64;
        // Paper Figure 9b: 37 % of baseline bytes.
        assert!(ratio > 0.25 && ratio < 0.55, "byte ratio {ratio}");
    }

    #[test]
    fn leaf_scan_issues_slice_loads_not_point_loads() {
        let cloud = random_cloud(400, 5, 50.0);
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        sim.reset_counters();
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        tree.radius_search(&mut sim, &mut machine, cloud[17], 1.0, &mut out, &mut stats);
        let scan = *sim.kernel_counters(Kernel::LeafScan);
        // Loads during the scan are slices + vind hits, far below one per
        // point; SQDWE ops appear.
        assert!(scan.ops_of(OpClass::BonsaiSqdwe) > 0);
        assert!(
            scan.loads < stats.points_inspected,
            "loads {} vs points {}",
            scan.loads,
            stats.points_inspected
        );
    }
}
