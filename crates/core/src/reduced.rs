use bonsai_floatfmt::ReducedFormat;
use bonsai_geom::Point3;
use bonsai_kdtree::{KdTree, LeafId, LeafProcessor, Neighbor, SearchStats};
use bonsai_sim::{OpClass, SimEngine};

/// Leaf inspection with a reduced floating-point representation and **no
/// accuracy safeguard** — the measurement instrument behind Table I.
///
/// Points are classified from their quantized values directly (the query
/// stays `f32`, matching the `A` operand of the Bonsai FU). Unlike
/// [`BonsaiLeafProcessor`](crate::BonsaiLeafProcessor) there is no shell
/// test and no re-computation, so results may differ from the baseline;
/// the Table I experiment counts exactly those differences:
///
/// | format | paper's misclassified points |
/// |---|---|
/// | IEEE-754 16-bit | 0.076 % |
/// | bfloat16 | 0.61 % |
/// | custom float 24 | 0.0003 % |
///
/// # Examples
///
/// ```
/// use bonsai_core::ReducedUncheckedProcessor;
/// use bonsai_floatfmt::ReducedFormat;
/// use bonsai_sim::SimEngine;
///
/// let mut sim = SimEngine::disabled();
/// let proc = ReducedUncheckedProcessor::new(&mut sim, ReducedFormat::BFloat16);
/// assert_eq!(proc.format(), ReducedFormat::BFloat16);
/// ```
#[derive(Debug)]
pub struct ReducedUncheckedProcessor {
    format: ReducedFormat,
    out_addr: u64,
}

impl ReducedUncheckedProcessor {
    /// Creates a processor quantizing through `format`.
    pub fn new(sim: &mut SimEngine, format: ReducedFormat) -> ReducedUncheckedProcessor {
        ReducedUncheckedProcessor {
            format,
            out_addr: sim.alloc(64 * 1024, 64),
        }
    }

    /// The format being evaluated.
    pub fn format(&self) -> ReducedFormat {
        self.format
    }
}

impl LeafProcessor for ReducedUncheckedProcessor {
    fn process_leaf(
        &mut self,
        sim: &mut SimEngine,
        tree: &KdTree,
        _leaf: LeafId,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let bytes_per_point = (self.format.bits() as u64 * 3).div_ceil(8) as u32;
        stats.points_inspected += count as u64;
        stats.point_bytes_loaded += count as u64 * bytes_per_point as u64;
        for i in start..start + count {
            let idx = tree.vind()[i as usize];
            sim.load(tree.vind_entry_addr(i), 4);
            // A hypothetical reduced-point array would be loaded here; the
            // layout matches the baseline array scaled by the format width.
            sim.load(tree.point_addr(idx), bytes_per_point);
            sim.exec(OpClass::IntAlu, 3);
            sim.exec(OpClass::FpAlu, 8);
            let p = tree.points()[idx as usize];
            let pq = Point3::new(
                self.format.quantize_value(p.x),
                self.format.quantize_value(p.y),
                self.format.quantize_value(p.z),
            );
            let d_sq = pq.distance_squared(query);
            let inside = d_sq <= r_sq;
            sim.branch(0x30, inside);
            if inside {
                sim.store(self.out_addr + out.len() as u64 * 8, 8);
                out.push(Neighbor {
                    index: idx,
                    dist_sq: d_sq,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_kdtree::KdTreeConfig;

    fn cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * 100.0, (next() - 0.5) * 100.0, next() * 3.0))
            .collect()
    }

    /// Runs one format over many queries and returns (decisions, flips).
    fn misclassifications(format: ReducedFormat, r: f32) -> (u64, u64) {
        let pts = cloud(3000, 42);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(pts.clone(), KdTreeConfig::default(), &mut sim);
        let mut proc = ReducedUncheckedProcessor::new(&mut sim, format);
        let mut flips = 0;
        let mut decisions = 0;
        for qi in (0..3000).step_by(11) {
            let q = pts[qi];
            let mut reduced = Vec::new();
            let mut stats = SearchStats::default();
            tree.radius_search(&mut sim, &mut proc, q, r, &mut reduced, &mut stats);
            let baseline = tree.radius_search_simple(q, r);
            let rset: std::collections::HashSet<u32> = reduced.iter().map(|n| n.index).collect();
            let bset: std::collections::HashSet<u32> = baseline.iter().map(|n| n.index).collect();
            flips += rset.symmetric_difference(&bset).count() as u64;
            decisions += stats.points_inspected;
        }
        (decisions, flips)
    }

    #[test]
    fn error_ordering_matches_table1() {
        // bfloat16 ≫ binary16 ≫ float24 in misclassification rate.
        let (d16, f16) = misclassifications(ReducedFormat::Ieee16, 2.5);
        let (dbf, fbf) = misclassifications(ReducedFormat::BFloat16, 2.5);
        let (d24, f24) = misclassifications(ReducedFormat::Custom24, 2.5);
        let r16 = f16 as f64 / d16 as f64;
        let rbf = fbf as f64 / dbf as f64;
        let r24 = f24 as f64 / d24 as f64;
        assert!(rbf > r16, "bfloat {rbf} vs ieee16 {r16}");
        assert!(r16 > r24, "ieee16 {r16} vs float24 {r24}");
        // Magnitudes in the paper's ballpark (sub-percent for f16).
        assert!(r16 < 0.01, "ieee16 rate {r16}");
    }

    #[test]
    fn reduced_processor_may_differ_from_baseline() {
        // Sanity: with bfloat16 the flips are actually non-zero on a
        // boundary-heavy workload (otherwise Table I would be trivial).
        let (_, flips) = misclassifications(ReducedFormat::BFloat16, 2.5);
        assert!(flips > 0);
    }
}
