//! The uncertainty-shell classification of Eq. 12.
//!
//! Given the approximate squared distance `d′²` (computed from f16
//! points), the accumulated worst-case error `Tεsd` (Eq. 11) and the
//! squared radius `r²`, a candidate point is:
//!
//! * certainly **in** radius when `d′² ≤ r² − Tεsd`,
//! * certainly **out** when `d′² > r² + Tεsd`,
//! * otherwise **inconclusive** — the original `f32` point must be
//!   fetched and classified with the baseline Eq. 3.
//!
//! # Floating-point slack (deviation from the paper, conservative)
//!
//! Eq. 11's bound is exact in real arithmetic, but the hardware evaluates
//! `d′²`, the per-coordinate error terms and their sums in `f32`, each
//! operation adding up to half an ULP of relative error; likewise the
//! baseline's own `d²` is an `f32` evaluation. The paper does not discuss
//! this (its 32-bit FU datapath absorbs it in practice). To make the
//! "identical to baseline" guarantee *provable*, [`classify`] widens the
//! shell by [`SHELL_SLACK_ULPS`] ULPs of `max(d′², r²)`:
//!
//! * relative error of an `f32` sum of three products: ≤ 4 ε,
//! * relative error of the `f32`-evaluated error sum: ≤ 5 ε,
//! * baseline `d²` evaluation: ≤ 4 ε,
//!
//! so 16 ε of headroom strictly covers the worst case. The widening only
//! moves a vanishing sliver of decisions from "conclusive" to
//! "re-compute" (the measured fallback ratio stays at the paper's ~0.4 %
//! level) and never changes a result.

/// Shell-widening headroom in units of `f32::EPSILON × max(d′², r²)`.
pub const SHELL_SLACK_ULPS: f32 = 16.0;

/// The three-way outcome of the shell test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShellClass {
    /// Certainly within the radius; no re-computation needed.
    In,
    /// Certainly outside the radius.
    Out,
    /// Inside the uncertainty shell: re-compute with the original `f32`
    /// point (Eq. 3).
    Recompute,
}

/// Classifies an approximate squared distance against the radius shell
/// (Eq. 12 with the documented `f32` slack).
///
/// `t_err` is `Tεsd`, the sum of the three per-coordinate worst-case
/// errors (Eq. 11). A non-finite `t_err` (overflowed f16 exponent) forces
/// [`ShellClass::Recompute`].
///
/// # Examples
///
/// ```
/// use bonsai_core::shell::{classify, ShellClass};
///
/// assert_eq!(classify(1.0, 0.01, 4.0), ShellClass::In);
/// assert_eq!(classify(9.0, 0.01, 4.0), ShellClass::Out);
/// assert_eq!(classify(4.0, 0.01, 4.0), ShellClass::Recompute);
/// ```
pub fn classify(d_sq_approx: f32, t_err: f32, r_sq: f32) -> ShellClass {
    if !t_err.is_finite() {
        return ShellClass::Recompute;
    }
    let slack = SHELL_SLACK_ULPS * f32::EPSILON * d_sq_approx.max(r_sq);
    let t = t_err + slack;
    if d_sq_approx <= r_sq - t {
        ShellClass::In
    } else if d_sq_approx > r_sq + t {
        ShellClass::Out
    } else {
        ShellClass::Recompute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_floatfmt::{Half, PartErrorMem};

    #[test]
    fn clear_cases_classify_without_recompute() {
        assert_eq!(classify(0.5, 0.1, 4.0), ShellClass::In);
        assert_eq!(classify(10.0, 0.1, 4.0), ShellClass::Out);
    }

    #[test]
    fn shell_cases_request_recompute() {
        assert_eq!(classify(3.95, 0.1, 4.0), ShellClass::Recompute);
        assert_eq!(classify(4.05, 0.1, 4.0), ShellClass::Recompute);
    }

    #[test]
    fn infinite_error_forces_recompute() {
        assert_eq!(classify(1.0, f32::INFINITY, 100.0), ShellClass::Recompute);
    }

    #[test]
    fn zero_error_still_keeps_ulp_slack() {
        // Exactly on the boundary with no quantization error: recompute
        // (the f32 slack keeps the guarantee).
        assert_eq!(classify(4.0, 0.0, 4.0), ShellClass::Recompute);
        assert_eq!(classify(4.0 - 1e-3, 0.0, 4.0), ShellClass::In);
    }

    /// The load-bearing property: a conclusive shell answer always agrees
    /// with the baseline f32 classification of the *original* point.
    #[test]
    fn conclusive_answers_match_baseline_over_random_pairs() {
        let lut = PartErrorMem::new();
        let mut state = 0xABCDEF12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut recomputes = 0u64;
        const TRIALS: u64 = 2_000_000;
        for _ in 0..TRIALS {
            // Query and point within LiDAR-plausible range; radius chosen
            // near the actual distance so the shell is exercised hard.
            let q = [
                (next() as f32 - 0.5) * 120.0,
                (next() as f32 - 0.5) * 120.0,
                (next() as f32 - 0.5) * 8.0,
            ];
            let scale = 0.5 + next() as f32;
            let p = [
                q[0] + (next() as f32 - 0.5) * scale,
                q[1] + (next() as f32 - 0.5) * scale,
                q[2] + (next() as f32 - 0.5) * scale * 0.2,
            ];
            // f16-compress the candidate point like the leaf store does.
            let ph: Vec<Half> = p.iter().map(|&v| Half::from_f32(v)).collect();
            // FU math in f32, exactly as the hardware path.
            let mut d_sq = 0.0f32;
            let mut t_err = 0.0f32;
            for c in 0..3 {
                let b = ph[c].to_f32();
                let diff = q[c] - b;
                d_sq += diff * diff;
                t_err += lut.max_squared_difference_error(diff.abs(), ph[c].exponent_field());
            }
            // Radius close to the true distance (multiplicative jitter).
            let d_base: f32 = {
                let dx = q[0] - p[0];
                let dy = q[1] - p[1];
                let dz = q[2] - p[2];
                dx * dx + dy * dy + dz * dz
            };
            let r_sq = d_base * (0.9 + 0.2 * next() as f32) + 1e-6;
            let baseline_in = d_base <= r_sq;
            match classify(d_sq, t_err, r_sq) {
                ShellClass::In => assert!(baseline_in, "q={q:?} p={p:?} r²={r_sq}"),
                ShellClass::Out => assert!(!baseline_in, "q={q:?} p={p:?} r²={r_sq}"),
                ShellClass::Recompute => recomputes += 1,
            }
        }
        // With radii deliberately placed at the decision boundary the
        // recompute rate is high here; just ensure the mechanism is
        // actually exercised.
        assert!(recomputes > 0);
    }
}
