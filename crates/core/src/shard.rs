//! Sharded multi-tree radius-search serving.
//!
//! One tree per frame caps both the memory footprint a single
//! `CompressedDirectory` must hold and the rebuild latency a frame pays
//! before its first query. A [`ShardRouter`] instead median-cuts the
//! cloud into `K` spatial shards, builds an independent
//! [`KdTree`]/[`BonsaiTree`] per shard (fanned out over threads with the
//! `parallel` feature), and serves a [`QueryBatch`] by routing every
//! query to exactly the shards whose bounding box intersects the query
//! ball — the ikd-Tree idiom of many independently updated and queried
//! spatial regions.
//!
//! **Exactness.** Per-point membership and the reported `dist_sq` bits
//! are independent of tree shape in every mode: the baseline scan
//! computes the same `f32` distance from the same coordinates, and the
//! compressed scan classifies each point from its *own* f16
//! approximation and per-point error bound, falling back to the exact
//! `f32` point inside the shell. Routing never loses a neighbor either,
//! because [`Aabb::intersects_ball`] under-estimates the distance to
//! every contained point. The router therefore returns, for every
//! query, the same neighbor set with bit-identical `(index, dist_sq)`
//! values as a single-tree [`RadiusSearchEngine`] over the whole cloud
//! — property-tested at the workspace root for all three modes
//! (Baseline / Bonsai / SoftwareCodec). Hits are emitted in ascending
//! global point index, a canonical order that is independent of the
//! shard layout (a single tree emits leaf order instead, so compare
//! after sorting). Traversal *counters* are aggregated per shard: they
//! equal the sum over shards of searching that shard's own engine with
//! the queries routed to it.

use bonsai_floatfmt::PartErrorMem;
use bonsai_geom::{Aabb, Point3};
use bonsai_kdtree::{
    BuildStats, KdTree, KdTreeConfig, Neighbor, QueryBatch, SearchScratch, SearchStats,
};
use bonsai_sim::SimEngine;

use crate::engine::{append_hits, EngineMode};
use crate::tree::BonsaiTree;

/// Sharding parameters of a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Desired shard count `K` (clamped to at least 1; a cloud with
    /// fewer points than shards gets one single-point shard per point).
    pub shards: usize,
    /// Threads used to build the shard trees: `0` uses the machine's
    /// available parallelism, `1` builds sequentially. Ignored (always
    /// sequential) without the `parallel` feature.
    pub build_threads: usize,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            build_threads: 0,
        }
    }
}

impl ShardConfig {
    /// A configuration with `shards` shards and automatic build threads.
    pub fn with_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }
}

/// One spatial shard: a contiguous region's points, their global
/// indices, and the per-shard tree.
#[derive(Debug)]
struct Shard {
    /// Tight bounding box of the shard's points (the routing test).
    aabb: Aabb,
    /// Shard-local point index → global cloud index (ascending).
    global: Vec<u32>,
    tree: ShardTree,
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // a handful of shards per router
enum ShardTree {
    Baseline(KdTree),
    Bonsai(BonsaiTree),
}

impl ShardTree {
    fn kd(&self) -> &KdTree {
        match self {
            ShardTree::Baseline(t) => t,
            ShardTree::Bonsai(b) => b.kd_tree(),
        }
    }

    fn bonsai(&self) -> Option<&BonsaiTree> {
        match self {
            ShardTree::Baseline(_) => None,
            ShardTree::Bonsai(b) => Some(b),
        }
    }
}

/// A sharded multi-tree radius-search front-end: `K` spatial shards,
/// each with its own tree and engine state, behind the same batch API
/// as the single-tree [`RadiusSearchEngine`].
///
/// See the [module docs](self) for the exactness contract.
///
/// # Examples
///
/// ```
/// use bonsai_core::{ShardConfig, ShardRouter};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::{KdTreeConfig, QueryBatch};
///
/// let cloud: Vec<Point3> =
///     (0..400).map(|i| Point3::new((i % 20) as f32 * 0.3, (i / 20) as f32 * 0.3, 1.0)).collect();
/// let router = ShardRouter::bonsai(
///     &cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
/// assert_eq!(router.num_shards(), 4);
///
/// let mut batch = QueryBatch::new();
/// router.search_batch(&cloud[..32], 0.5, &mut batch);
/// assert_eq!(batch.num_queries(), 32);
/// assert!(batch.results(0).iter().any(|n| n.index == 0));
/// ```
///
/// [`RadiusSearchEngine`]: crate::RadiusSearchEngine
#[derive(Debug)]
pub struct ShardRouter {
    shards: Vec<Shard>,
    mode: EngineMode,
    num_points: usize,
    lut: PartErrorMem,
}

impl ShardRouter {
    /// A router over uncompressed `f32` shard trees.
    ///
    /// `points` is borrowed: each shard copies exactly the points it
    /// serves, so the caller keeps (and can reuse) the original cloud
    /// without a second full copy.
    pub fn baseline(points: &[Point3], tree_cfg: KdTreeConfig, cfg: ShardConfig) -> ShardRouter {
        ShardRouter::build(points, tree_cfg, cfg, EngineMode::Baseline)
    }

    /// A router over Bonsai-compressed shard trees (exact membership).
    pub fn bonsai(points: &[Point3], tree_cfg: KdTreeConfig, cfg: ShardConfig) -> ShardRouter {
        ShardRouter::build(points, tree_cfg, cfg, EngineMode::Compressed)
    }

    /// A router matching the software-codec strawman's results — the
    /// fast scan is shared with [`bonsai`](ShardRouter::bonsai), exactly
    /// as in the single-tree engine.
    pub fn software_codec(
        points: &[Point3],
        tree_cfg: KdTreeConfig,
        cfg: ShardConfig,
    ) -> ShardRouter {
        ShardRouter::bonsai(points, tree_cfg, cfg)
    }

    fn build(
        points: &[Point3],
        tree_cfg: KdTreeConfig,
        cfg: ShardConfig,
        mode: EngineMode,
    ) -> ShardRouter {
        let num_points = points.len();
        let parts = median_cut(points, cfg.shards.max(1));
        let inputs: Vec<(Vec<u32>, Vec<Point3>)> = parts
            .into_iter()
            .map(|global| {
                let pts = global.iter().map(|&i| points[i as usize]).collect();
                (global, pts)
            })
            .collect();
        let shards = build_shards(inputs, tree_cfg, mode, cfg.build_threads);
        ShardRouter {
            shards,
            mode,
            num_points,
            lut: PartErrorMem::new(),
        }
    }

    /// The leaf representation every shard scans.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Number of shards actually built (≤ the configured count when the
    /// cloud has fewer points than shards; 0 for an empty cloud).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total points across all shards.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Per-shard point counts, in shard order.
    pub fn shard_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.shards.iter().map(|s| s.global.len())
    }

    /// Per-shard tight bounding boxes, in shard order.
    pub fn shard_bounds(&self) -> impl Iterator<Item = Aabb> + '_ {
        self.shards.iter().map(|s| s.aabb)
    }

    /// The global cloud indices shard `shard` serves, ascending. A
    /// shard's tree is built over exactly these points in exactly this
    /// order, so rebuilding a single-tree engine from them reproduces
    /// the shard's results and counters — the observability hook the
    /// router's property tests rest on.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn shard_points(&self, shard: usize) -> &[u32] {
        &self.shards[shard].global
    }

    /// Aggregated shape statistics: leaf/interior counts summed over
    /// shards, `max_depth` the deepest shard's depth.
    pub fn build_stats(&self) -> BuildStats {
        let mut agg = BuildStats::default();
        for s in &self.shards {
            let b = s.tree.kd().build_stats();
            agg.num_leaves += b.num_leaves;
            agg.num_interior += b.num_interior;
            agg.max_depth = agg.max_depth.max(b.max_depth);
        }
        agg
    }

    /// Total compressed-directory bytes across shards (0 in baseline
    /// mode).
    pub fn compressed_bytes(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.tree.bonsai())
            .map(|b| b.compression_stats().compressed_bytes)
            .sum()
    }

    /// Answers one query, clearing `out` first: hits from every shard
    /// whose box intersects the query ball, re-indexed to global cloud
    /// indices and sorted ascending. Allocation-free once `scratch` and
    /// `out` are warm.
    ///
    /// A non-positive or non-finite `radius` yields an empty result
    /// without touching any shard.
    pub fn search_one(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        out.clear();
        self.append_query(query, radius, scratch, out, stats);
    }

    /// Answers every query in one call, filling `batch` (reset first):
    /// the sharded equivalent of `RadiusSearchEngine::search_batch`,
    /// with [`QueryBatch::stats`] aggregating the whole batch across
    /// shards.
    pub fn search_batch(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        batch.reset();
        for &query in queries {
            batch.push_query(|scratch, out, stats| {
                self.append_query(query, radius, scratch, out, stats);
            });
        }
    }

    /// [`search_batch`](ShardRouter::search_batch) fanned out over
    /// scoped worker threads (`threads == 0` uses the machine's
    /// available parallelism). Results are merged in query order, so
    /// output and aggregate stats are identical to the sequential call.
    #[cfg(feature = "parallel")]
    pub fn search_batch_parallel(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
        threads: usize,
    ) {
        crate::fanout::search_batch_across_threads(queries, radius, batch, threads, |q, r, b| {
            self.search_batch(q, r, b)
        });
    }

    /// The routed per-query kernel: searches every intersecting shard,
    /// re-indexes its hits to global indices, and sorts the query's
    /// merged hits into canonical ascending-index order.
    fn append_query(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        // Same up-front rejection as the traversal layer, so a
        // degenerate radius skips even the AABB walk.
        if !bonsai_kdtree::radius_is_searchable(radius) {
            return;
        }
        let r_sq = radius * radius;
        let start = out.len();
        for shard in &self.shards {
            if !shard.aabb.intersects_ball(query, r_sq) {
                continue;
            }
            let before = out.len();
            append_hits(
                shard.tree.kd(),
                shard.tree.bonsai(),
                &self.lut,
                query,
                radius,
                scratch,
                out,
                stats,
            );
            for n in &mut out[before..] {
                n.index = shard.global[n.index as usize];
            }
        }
        // Global indices are unique, so the sort key is total and the
        // canonical order is independent of the shard layout.
        out[start..].sort_unstable_by_key(|n| n.index);
    }
}

/// Median-cut spatial partition: repeatedly splits the most populous
/// part at the median of its bounding box's widest axis until `k`
/// non-empty parts exist (or every part is a single point). Each part's
/// global indices are returned sorted ascending, and the parts
/// themselves ordered by their smallest index, so the layout is
/// deterministic.
fn median_cut(points: &[Point3], k: usize) -> Vec<Vec<u32>> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut parts: Vec<Vec<u32>> = vec![(0..points.len() as u32).collect()];
    while parts.len() < k {
        let (widest, _) = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .expect("parts is non-empty");
        if parts[widest].len() < 2 {
            break; // Only single-point parts remain.
        }
        let mut part = parts.swap_remove(widest);
        let bbox =
            Aabb::from_points(part.iter().map(|&i| points[i as usize])).expect("non-empty part");
        let axis = bbox.widest_axis();
        let mid = part.len() / 2;
        part.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        let right = part.split_off(mid);
        parts.push(part);
        parts.push(right);
    }
    for p in &mut parts {
        p.sort_unstable();
    }
    parts.sort_unstable_by_key(|p| p[0]);
    parts
}

/// Builds one shard's tree (and, under Bonsai, its compressed
/// directory) from its owned point set.
fn build_shard(global: Vec<u32>, pts: Vec<Point3>, cfg: KdTreeConfig, mode: EngineMode) -> Shard {
    let aabb = Aabb::from_points(pts.iter().copied()).expect("shards are non-empty");
    let mut sim = SimEngine::disabled();
    let tree = match mode {
        EngineMode::Baseline => ShardTree::Baseline(KdTree::build(pts, cfg, &mut sim)),
        EngineMode::Compressed => ShardTree::Bonsai(BonsaiTree::build(pts, cfg, &mut sim)),
    };
    Shard { aabb, global, tree }
}

/// Builds every shard, fanning out over scoped threads when the
/// `parallel` feature is enabled and more than one thread is requested.
#[cfg(feature = "parallel")]
fn build_shards(
    inputs: Vec<(Vec<u32>, Vec<Point3>)>,
    cfg: KdTreeConfig,
    mode: EngineMode,
    threads: usize,
) -> Vec<Shard> {
    let threads = crate::fanout::resolve_threads(threads, inputs.len());
    if threads == 1 {
        return build_shards_sequential(inputs, cfg, mode);
    }
    let chunk = inputs.len().div_ceil(threads);
    let mut chunks: Vec<Vec<(Vec<u32>, Vec<Point3>)>> = Vec::with_capacity(threads);
    let mut iter = inputs.into_iter();
    loop {
        let c: Vec<_> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || build_shards_sequential(c, cfg, mode)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard build worker panicked"))
            .collect()
    })
}

#[cfg(not(feature = "parallel"))]
fn build_shards(
    inputs: Vec<(Vec<u32>, Vec<Point3>)>,
    cfg: KdTreeConfig,
    mode: EngineMode,
    _threads: usize,
) -> Vec<Shard> {
    build_shards_sequential(inputs, cfg, mode)
}

fn build_shards_sequential(
    inputs: Vec<(Vec<u32>, Vec<Point3>)>,
    cfg: KdTreeConfig,
    mode: EngineMode,
) -> Vec<Shard> {
    inputs
        .into_iter()
        .map(|(global, pts)| build_shard(global, pts, cfg, mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RadiusSearchEngine;

    fn urban_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                let cluster = (next() * 12.0).floor();
                Point3::new(
                    (cluster - 6.0) * 15.0 + next() * 3.0,
                    (next() - 0.5) * 60.0,
                    next() * 2.5,
                )
            })
            .collect()
    }

    fn sorted(mut hits: Vec<Neighbor>) -> Vec<Neighbor> {
        hits.sort_unstable_by_key(|n| n.index);
        hits
    }

    #[test]
    fn median_cut_partitions_every_point_once() {
        let cloud = urban_cloud(1000, 1);
        for k in [1, 2, 3, 7, 16] {
            let parts = median_cut(&cloud, k);
            assert_eq!(parts.len(), k);
            let mut seen = vec![false; cloud.len()];
            for p in &parts {
                assert!(!p.is_empty());
                for &i in p {
                    assert!(!seen[i as usize], "point {i} in two shards");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            // Median splits keep shards balanced within 2×.
            let min = parts.iter().map(Vec::len).min().unwrap();
            let max = parts.iter().map(Vec::len).max().unwrap();
            assert!(max <= 2 * min, "k {k}: {min}..{max}");
        }
    }

    #[test]
    fn more_shards_than_points_caps_at_one_point_each() {
        let cloud = urban_cloud(5, 2);
        let parts = median_cut(&cloud, 64);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn empty_cloud_builds_an_empty_router() {
        let router = ShardRouter::bonsai(&[], KdTreeConfig::default(), ShardConfig::with_shards(4));
        assert_eq!(router.num_shards(), 0);
        let mut batch = QueryBatch::new();
        router.search_batch(&[Point3::ZERO], 1.0, &mut batch);
        assert_eq!(batch.num_queries(), 1);
        assert_eq!(batch.total_matches(), 0);
    }

    #[test]
    fn router_matches_single_tree_engine_values() {
        let cloud = urban_cloud(3000, 3);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);
        let router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(6));
        let queries: Vec<Point3> = cloud.iter().step_by(17).copied().collect();

        let mut single = QueryBatch::new();
        engine.search_batch(&queries, 1.2, &mut single);
        let mut sharded = QueryBatch::new();
        router.search_batch(&queries, 1.2, &mut sharded);

        assert_eq!(sharded.num_queries(), single.num_queries());
        for i in 0..single.num_queries() {
            assert_eq!(
                sharded.results(i),
                &sorted(single.results(i).to_vec())[..],
                "query {i}"
            );
        }
    }

    #[test]
    fn degenerate_radii_are_empty_through_the_router() {
        let cloud = urban_cloud(500, 4);
        let router = ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::default());
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(cloud[0], 1.0, &mut scratch, &mut out, &mut stats);
        assert!(!out.is_empty());
        for r in [0.0f32, -1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut stats = SearchStats::default();
            router.search_one(cloud[0], r, &mut scratch, &mut out, &mut stats);
            assert!(out.is_empty(), "radius {r}");
            assert_eq!(stats, SearchStats::default(), "radius {r}");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_router_batch_is_identical_to_sequential() {
        let cloud = urban_cloud(2000, 9);
        let router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(5));
        let mut sequential = QueryBatch::new();
        router.search_batch(&cloud, 0.9, &mut sequential);
        for threads in [0, 1, 2, 3, 7] {
            let mut parallel = QueryBatch::new();
            router.search_batch_parallel(&cloud, 0.9, &mut parallel, threads);
            assert_eq!(parallel.num_queries(), sequential.num_queries());
            for i in 0..sequential.num_queries() {
                assert_eq!(
                    parallel.results(i),
                    sequential.results(i),
                    "threads {threads} query {i}"
                );
            }
            assert_eq!(parallel.stats(), sequential.stats(), "threads {threads}");
        }
    }

    #[test]
    fn query_outside_every_shard_box_touches_nothing() {
        let cloud = urban_cloud(800, 5);
        let router =
            ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let far = Point3::new(1.0e6, 1.0e6, 1.0e6);
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(far, 1.0, &mut scratch, &mut out, &mut stats);
        assert!(out.is_empty());
        // No shard box intersects, so not even a root node is visited.
        assert_eq!(stats, SearchStats::default());
    }
}
