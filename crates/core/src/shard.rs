//! Sharded multi-tree radius-search serving.
//!
//! One tree per frame caps both the memory footprint a single
//! `CompressedDirectory` must hold and the rebuild latency a frame pays
//! before its first query. A [`ShardRouter`] instead median-cuts the
//! cloud into `K` spatial shards, builds an independent
//! [`KdTree`]/[`BonsaiTree`] per shard (fanned out over threads with the
//! `parallel` feature), and serves a [`QueryBatch`] by routing every
//! query to exactly the shards whose bounding box intersects the query
//! ball — the ikd-Tree idiom of many independently updated and queried
//! spatial regions.
//!
//! **Exactness.** Per-point membership and the reported `dist_sq` bits
//! are independent of tree shape in every mode: the baseline scan
//! computes the same `f32` distance from the same coordinates, and the
//! compressed scan classifies each point from its *own* f16
//! approximation and per-point error bound, falling back to the exact
//! `f32` point inside the shell. Routing never loses a neighbor either,
//! because [`Aabb::intersects_ball`] under-estimates the distance to
//! every contained point. The router therefore returns, for every
//! query, the same neighbor set with bit-identical `(index, dist_sq)`
//! values as a single-tree [`RadiusSearchEngine`] over the whole cloud
//! — property-tested at the workspace root for all three modes
//! (Baseline / Bonsai / SoftwareCodec). Hits are emitted in ascending
//! global point index, a canonical order that is independent of the
//! shard layout (a single tree emits leaf order instead, so compare
//! after sorting). Traversal *counters* are aggregated per shard: they
//! equal the sum over shards of searching that shard's own engine with
//! the queries routed to it.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bonsai_floatfmt::PartErrorMem;
use bonsai_geom::{Aabb, Point3};
use bonsai_kdtree::{
    AuditViolation, BuildStats, KdTree, KdTreeConfig, Neighbor, QueryBatch, SearchScratch,
    SearchStats, ViolationKind,
};
use bonsai_sim::SimEngine;

use crate::adapt::{
    find_best_split_plane_taxed, AdaptDecision, AdaptReport, AdaptState, LoadReport, RejectReason,
    ShardLoad, ShardLoadReport, ShardPolicy,
};
use crate::engine::{append_hits, EngineMode};
use crate::epoch::QueryError;
use crate::tree::BonsaiTree;

/// Sharding parameters of a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Desired shard count `K` (clamped to at least 1; a cloud with
    /// fewer points than shards gets one single-point shard per point).
    pub shards: usize,
    /// Threads used to build the shard trees: `0` uses the machine's
    /// available parallelism, `1` builds sequentially. Ignored (always
    /// sequential) without the `parallel` feature.
    pub build_threads: usize,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            build_threads: 0,
        }
    }
}

impl ShardConfig {
    /// A configuration with `shards` shards and automatic build threads.
    pub fn with_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }
}

/// One spatial shard: a contiguous region's points, their global
/// indices, and the per-shard tree.
///
/// `Clone` backs the copy-on-write epoch scheme: the router stores
/// `Arc<Shard>`, and a mutation clones a shard (via [`Arc::make_mut`])
/// only when a published [`RouterSnapshot`] still pins it — unpinned
/// shards mutate in place at zero copy cost.
#[derive(Debug, Clone)]
struct Shard {
    /// Tight bounding box of the shard's points (the routing test).
    aabb: Aabb,
    /// Shard-local point index → global cloud index (ascending after a
    /// build/rebuild; routed inserts append, possibly with recycled —
    /// smaller — global indices).
    global: Vec<u32>,
    tree: ShardTree,
    /// A quarantined shard is suspected corrupt: queries skip it
    /// (reported through [`ShardRouter::coverage`]), mutations never
    /// touch its tree, and
    /// [`rebuild_shards_from`](ShardRouter::rebuild_shards_from)
    /// re-admits it from authoritative coordinates.
    quarantined: bool,
    /// Deletes routed here while quarantined — the tree cannot be
    /// trusted to record them, so they are queued and resolved by the
    /// healing rebuild (which only re-admits points the caller lists as
    /// live).
    pending_deletes: Vec<u32>,
    /// Cumulative search-effort counters, shared by *identity*: the
    /// derived `Clone` clones the `Arc`, so copy-on-write copies and
    /// pinned snapshots keep charging the same accumulator, and the
    /// adaptive policy ([`ShardRouter::adapt_step`]) sees the load even
    /// when it arrived through a stale epoch. A rebuild/split/merge
    /// swaps in fresh counters with the fresh shard.
    load: Arc<ShardLoad>,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // a handful of shards per router
enum ShardTree {
    Baseline(KdTree),
    Bonsai(BonsaiTree),
}

impl ShardTree {
    fn kd(&self) -> &KdTree {
        match self {
            ShardTree::Baseline(t) => t,
            ShardTree::Bonsai(b) => b.kd_tree(),
        }
    }

    fn bonsai(&self) -> Option<&BonsaiTree> {
        match self {
            ShardTree::Baseline(_) => None,
            ShardTree::Bonsai(b) => Some(b),
        }
    }

    fn insert(&mut self, sim: &mut SimEngine, p: Point3) -> Option<u32> {
        match self {
            ShardTree::Baseline(t) => t.insert(sim, p),
            ShardTree::Bonsai(b) => b.insert(sim, p),
        }
    }

    fn delete(&mut self, sim: &mut SimEngine, local: u32) -> bool {
        match self {
            ShardTree::Baseline(t) => t.delete(sim, local),
            ShardTree::Bonsai(b) => b.delete(sim, local),
        }
    }

    /// Re-bakes pending dirty leaves (Bonsai) and drains the dirty log
    /// (baseline trees have no layered cache to invalidate).
    fn commit(&mut self, sim: &mut SimEngine) {
        match self {
            ShardTree::Baseline(t) => {
                t.drain_dirty_nodes();
            }
            ShardTree::Bonsai(b) => {
                b.commit(sim);
            }
        }
    }
}

/// Where one global point index lives: its shard and the shard-local
/// index.
#[derive(Debug, Clone, Copy)]
struct PointLoc {
    shard: u32,
    local: u32,
}

impl PointLoc {
    /// The entry of a dead point whose storage a shard rebuild
    /// reclaimed: the global index no longer resolves to any shard
    /// slot. Guarded in [`ShardRouter::delete`], because after a
    /// rebuild the old local index may name a *different* live point.
    const GONE: PointLoc = PointLoc {
        shard: u32::MAX,
        local: u32::MAX,
    };
}

/// When a [`ShardRouter`] shard is worth compacting — the
/// ikd-Tree-style criterion that triggers a rolling
/// [`rebuild_shard`](ShardRouter::rebuild_shard).
///
/// A shard's **waste** is its tree's abandoned `vind`/SoA slots
/// (`garbage_slots`, lane-padded footprints) plus its dead points
/// (deleted entries still occupying the point array); its **footprint**
/// is total slots plus total points. The shard is rebuilt when
/// `waste ≥ garbage_ratio · footprint` and the footprint is at least
/// `min_points` (rebuilding a tiny shard costs more than the waste).
///
/// # Examples
///
/// ```
/// use bonsai_core::CompactionPolicy;
/// let policy = CompactionPolicy::default();
/// assert!(policy.should_compact(300, 1000));
/// assert!(!policy.should_compact(100, 1000));
/// assert!(!policy.should_compact(90, 100)); // below min_points
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Waste fraction that triggers a rebuild.
    pub garbage_ratio: f64,
    /// Minimum shard footprint (slots + points) worth rebuilding.
    pub min_points: usize,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            garbage_ratio: 0.25,
            min_points: 256,
        }
    }
}

impl CompactionPolicy {
    /// Whether a shard with `waste` wasted units out of a `footprint`
    /// total should be rebuilt under this policy.
    pub fn should_compact(&self, waste: usize, footprint: usize) -> bool {
        footprint >= self.min_points && waste as f64 >= self.garbage_ratio * footprint as f64
    }
}

/// What fraction of the indexed space a query answer covers: complete,
/// or missing the regions of quarantined shards.
///
/// Returned by [`ShardRouter::coverage`] and attached to every
/// streaming extraction so a downstream consumer can tell an
/// authoritative "no neighbors here" from "that region's shard is
/// offline pending a healing rebuild".
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// `true` when no shard is quarantined — results are exact over the
    /// whole live cloud.
    pub complete: bool,
    /// Bounding boxes of the quarantined shards' regions (empty when
    /// `complete`). Queries intersecting these boxes may be missing
    /// neighbors.
    pub offline: Vec<Aabb>,
}

impl Default for Coverage {
    fn default() -> Coverage {
        Coverage {
            complete: true,
            offline: Vec::new(),
        }
    }
}

/// A sharded multi-tree radius-search front-end: `K` spatial shards,
/// each with its own tree and engine state, behind the same batch API
/// as the single-tree [`RadiusSearchEngine`].
///
/// See the module source docs (`core/src/shard.rs`) for the exactness
/// contract.
///
/// # Examples
///
/// ```
/// use bonsai_core::{ShardConfig, ShardRouter};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::{KdTreeConfig, QueryBatch};
///
/// let cloud: Vec<Point3> =
///     (0..400).map(|i| Point3::new((i % 20) as f32 * 0.3, (i / 20) as f32 * 0.3, 1.0)).collect();
/// let router = ShardRouter::bonsai(
///     &cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
/// assert_eq!(router.num_shards(), 4);
///
/// let mut batch = QueryBatch::new();
/// router.search_batch(&cloud[..32], 0.5, &mut batch);
/// assert_eq!(batch.num_queries(), 32);
/// assert!(batch.results(0).iter().any(|n| n.index == 0));
/// ```
///
/// [`RadiusSearchEngine`]: crate::RadiusSearchEngine
#[derive(Debug)]
pub struct ShardRouter {
    /// Copy-on-write shard storage: queries snapshot it with an O(K)
    /// `Arc` clone ([`snapshot`](ShardRouter::snapshot)), and mutations
    /// go through [`Arc::make_mut`] — in place while unpinned, a
    /// one-shard deep copy when a live snapshot still reads it.
    shards: Vec<Arc<Shard>>,
    mode: EngineMode,
    num_points: usize,
    lut: PartErrorMem,
    /// Tree construction parameters, kept for shards created by
    /// inserts into an empty router.
    tree_cfg: KdTreeConfig,
    /// Global point index → owning shard and shard-local index
    /// (deleted points keep their entry until a shard rebuild retires
    /// it to [`PointLoc::GONE`]; the shard tree tracks liveness).
    locs: Vec<PointLoc>,
    /// Per-global-index generation tag, parallel to `locs`: bumped each
    /// time the index is retired to [`PointLoc::GONE`], so a consumer
    /// holding a stale global index can detect that the index was
    /// recycled for a different point.
    generations: Vec<u32>,
    /// Retired global indices available for reuse —
    /// [`insert`](ShardRouter::insert) pops from here before growing
    /// `locs`, so a long churn stream's directory stops growing once
    /// retirement keeps pace.
    free_globals: Vec<u32>,
    /// Round-robin cursor of [`compact_next`](ShardRouter::compact_next):
    /// which shard the next policy check inspects.
    compact_cursor: usize,
    /// Decayed per-shard load profiles and the split/merge decision log
    /// behind [`adapt_step`](ShardRouter::adapt_step).
    adapt: AdaptState,
}

impl ShardRouter {
    /// A router over uncompressed `f32` shard trees.
    ///
    /// `points` is borrowed: each shard copies exactly the points it
    /// serves, so the caller keeps (and can reuse) the original cloud
    /// without a second full copy.
    pub fn baseline(points: &[Point3], tree_cfg: KdTreeConfig, cfg: ShardConfig) -> ShardRouter {
        ShardRouter::build(points, tree_cfg, cfg, EngineMode::Baseline)
    }

    /// A router over Bonsai-compressed shard trees (exact membership).
    pub fn bonsai(points: &[Point3], tree_cfg: KdTreeConfig, cfg: ShardConfig) -> ShardRouter {
        ShardRouter::build(points, tree_cfg, cfg, EngineMode::Compressed)
    }

    /// A router matching the software-codec strawman's results — the
    /// fast scan is shared with [`bonsai`](ShardRouter::bonsai), exactly
    /// as in the single-tree engine.
    pub fn software_codec(
        points: &[Point3],
        tree_cfg: KdTreeConfig,
        cfg: ShardConfig,
    ) -> ShardRouter {
        ShardRouter::bonsai(points, tree_cfg, cfg)
    }

    fn build(
        points: &[Point3],
        tree_cfg: KdTreeConfig,
        cfg: ShardConfig,
        mode: EngineMode,
    ) -> ShardRouter {
        let num_points = points.len();
        let parts = median_cut(points, cfg.shards.max(1));
        let inputs: Vec<(Vec<u32>, Vec<Point3>)> = parts
            .into_iter()
            .map(|global| {
                let pts = global.iter().map(|&i| points[i as usize]).collect();
                (global, pts)
            })
            .collect();
        let shards: Vec<Arc<Shard>> = build_shards(inputs, tree_cfg, mode, cfg.build_threads)
            .into_iter()
            .map(Arc::new)
            .collect();
        let mut locs = vec![PointLoc { shard: 0, local: 0 }; num_points];
        for (si, shard) in shards.iter().enumerate() {
            for (local, &global) in shard.global.iter().enumerate() {
                locs[global as usize] = PointLoc {
                    shard: si as u32,
                    local: local as u32,
                };
            }
        }
        ShardRouter {
            shards,
            mode,
            num_points,
            lut: PartErrorMem::new(),
            tree_cfg,
            generations: vec![0; locs.len()],
            locs,
            free_globals: Vec::new(),
            compact_cursor: 0,
            adapt: AdaptState::default(),
        }
    }

    /// The leaf representation every shard scans.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Number of shards actually built (≤ the configured count when the
    /// cloud has fewer points than shards; 0 for an empty cloud).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total **live** points across all shards (inserts add, deletes
    /// subtract).
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Per-shard point counts, in shard order.
    pub fn shard_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.shards.iter().map(|s| s.global.len())
    }

    /// Per-shard tight bounding boxes, in shard order.
    pub fn shard_bounds(&self) -> impl Iterator<Item = Aabb> + '_ {
        self.shards.iter().map(|s| s.aabb)
    }

    /// The global cloud indices shard `shard` serves — ascending after
    /// construction; routed inserts append past the build-time range
    /// (and deleted indices linger, tracked dead by the shard's tree).
    /// A shard's tree is built over exactly these points in exactly
    /// this order, so rebuilding a single-tree engine from them
    /// reproduces the shard's results and counters — the observability
    /// hook the router's property tests rest on.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn shard_points(&self, shard: usize) -> &[u32] {
        &self.shards[shard].global
    }

    /// Aggregated shape statistics: leaf/interior counts summed over
    /// shards, `max_depth` the deepest shard's depth.
    pub fn build_stats(&self) -> BuildStats {
        let mut agg = BuildStats::default();
        for s in &self.shards {
            let b = s.tree.kd().build_stats();
            agg.num_leaves += b.num_leaves;
            agg.num_interior += b.num_interior;
            agg.max_depth = agg.max_depth.max(b.max_depth);
        }
        agg
    }

    /// Total compressed-directory bytes across shards (0 in baseline
    /// mode).
    pub fn compressed_bytes(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.tree.bonsai())
            .map(|b| b.compression_stats().compressed_bytes)
            .sum()
    }

    // ------------------------------------------------------------------
    // Incremental updates (the ikd-Tree "many independently updated
    // regions" idiom): every mutation touches exactly one shard.
    // ------------------------------------------------------------------

    /// Inserts a point, routed to the shard whose bounding box is
    /// nearest (containing boxes have distance 0); an out-of-bounds
    /// insert **grows** that shard's box so later query routing keeps
    /// seeing the point — preferring an emptied shard, when one
    /// exists, over stretching a populated shard's box across a region
    /// it does not serve. Returns the point's new global index, or
    /// `None` for a non-finite point. An empty router grows its first
    /// single-point shard.
    ///
    /// Only the chosen shard's tree mutates; re-baking its compressed
    /// leaves is deferred to [`commit`](ShardRouter::commit) (or
    /// [`apply_update`](ShardRouter::apply_update)).
    pub fn insert(&mut self, p: Point3) -> Option<u32> {
        if !p.is_finite() {
            return None;
        }
        let global = self.alloc_global();
        let mut sim = SimEngine::disabled();
        let fresh = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.quarantined)
            .min_by(|(_, a), (_, b)| {
                a.aabb
                    .distance_squared_to(p)
                    .total_cmp(&b.aabb.distance_squared_to(p))
            })
            .map(|(i, _)| i);
        let Some(mut si) = fresh else {
            // No healthy shard exists (empty router, or every shard is
            // quarantined): bootstrap a new single-point shard rather
            // than mutating a suspect tree.
            let si = self.shards.len();
            self.shards.push(Arc::new(build_shard(
                vec![global],
                vec![p],
                self.tree_cfg,
                self.mode,
            )));
            self.set_loc(
                global,
                PointLoc {
                    shard: si as u32,
                    local: 0,
                },
            );
            self.num_points += 1;
            return Some(global);
        };
        if self.shards[si].aabb.distance_squared_to(p) > 0.0 {
            // No shard's box covers the point. Revive a *rebuilt-empty*
            // shard (its inverted sentinel box is infinitely far, so
            // distance routing alone would never pick it again) instead
            // of stretching a populated shard's box over a region it
            // does not serve. Delete-emptied but never-rebuilt shards
            // are deliberately excluded: their stale boxes still
            // describe the region they served, so ordinary distance
            // routing remains the better (and nearer) choice for them.
            if let Some(empty) = self
                .shards
                .iter()
                .position(|s| !s.quarantined && s.aabb.min.x > s.aabb.max.x)
            {
                si = empty;
            }
        }
        // lint: allow(cow-discipline) — insert IS the mutation that
        // creates the dirt; there is nothing to commit before cloning,
        // and a pinned snapshot must not see the new point anyway.
        let shard = Arc::make_mut(&mut self.shards[si]);
        shard.aabb.insert(p);
        // lint: allow(panic-free-serving) — the router's `insert`
        // rejected non-finite points before routing, and a finite
        // point is always accepted by the shard tree.
        let local = shard
            .tree
            .insert(&mut sim, p)
            .expect("finite point is accepted by the shard tree");
        debug_assert_eq!(local as usize, shard.global.len());
        shard.global.push(global);
        self.set_loc(
            global,
            PointLoc {
                shard: si as u32,
                local,
            },
        );
        self.num_points += 1;
        Some(global)
    }

    /// The next global index an insert will occupy: a retired
    /// (free-listed) index when one exists, else a fresh one past the
    /// directory.
    fn alloc_global(&mut self) -> u32 {
        match self.free_globals.pop() {
            Some(g) => g,
            None => self.locs.len() as u32,
        }
    }

    /// Records `global → loc`, growing the directory (and its
    /// generation tags) when `global` is fresh.
    fn set_loc(&mut self, global: u32, loc: PointLoc) {
        let gi = global as usize;
        if gi < self.locs.len() {
            debug_assert_eq!(
                self.locs[gi].shard,
                PointLoc::GONE.shard,
                "recycled global {global} still mapped"
            );
            self.locs[gi] = loc;
        } else {
            debug_assert_eq!(gi, self.locs.len());
            self.locs.push(loc);
            self.generations.push(0);
        }
    }

    /// Deletes global point `global`, routed to its owning shard.
    /// Returns `false` — without touching any shard tree beyond a
    /// constant-time liveness check — when the index is out of range,
    /// already deleted, or reclaimed by an earlier
    /// [`rebuild_shard`](ShardRouter::rebuild_shard). Shard boxes are
    /// left unshrunk (conservative: routing stays exact, merely less
    /// selective) until a rebuild re-tightens them.
    pub fn delete(&mut self, global: u32) -> bool {
        let Some(&loc) = self.locs.get(global as usize) else {
            return false;
        };
        if loc.shard == PointLoc::GONE.shard {
            return false;
        }
        let mut sim = SimEngine::disabled();
        // lint: allow(cow-discipline) — delete IS the mutation that
        // creates the dirt; the clone must happen before we can mark
        // anything dirty, so there is no gate to consult.
        let shard = Arc::make_mut(&mut self.shards[loc.shard as usize]);
        if shard.quarantined {
            // The tree is suspect — queue the delete instead of
            // mutating corrupt state. The healing rebuild resolves the
            // queue (it only re-admits points the authoritative live
            // set still contains). Liveness is judged from the alive
            // mask, which fault injection leaves intact.
            if shard.pending_deletes.contains(&global) {
                return false;
            }
            let kd = shard.tree.kd();
            let was_live = (loc.local as usize) < kd.points().len() && kd.is_live(loc.local);
            shard.pending_deletes.push(global);
            if was_live {
                self.num_points -= 1;
            }
            return was_live;
        }
        let deleted = shard.tree.delete(&mut sim, loc.local);
        if deleted {
            self.num_points -= 1;
        }
        deleted
    }

    /// Re-bakes every shard with pending mutations (a no-op for clean
    /// shards — only touched shards pay).
    pub fn commit(&mut self) {
        let mut sim = SimEngine::disabled();
        for shard in &mut self.shards {
            // Clean shards are checked read-only before `make_mut`:
            // otherwise a live snapshot pinning an untouched shard would
            // force a pointless deep copy on every commit.
            if shard.quarantined || !shard.tree.kd().has_dirty_nodes() {
                continue; // frozen until healed, or nothing pending
            }
            Arc::make_mut(shard).tree.commit(&mut sim);
        }
    }

    /// Applies one frame's diff: deletes `removed` (dead indices are
    /// skipped), inserts `added` (non-finite points are skipped), then
    /// re-bakes the touched shards. Returns the global indices of the
    /// accepted inserts, in `added` order.
    pub fn apply_update(&mut self, added: &[Point3], removed: &[u32]) -> Vec<u32> {
        for &idx in removed {
            self.delete(idx);
        }
        let inserted = added.iter().filter_map(|&p| self.insert(p)).collect();
        self.commit();
        inserted
    }

    // ------------------------------------------------------------------
    // Rolling compaction: criterion-triggered shard rebuilds bound the
    // memory a long churn stream can pin (the ikd-Tree re-building
    // idiom, one shard at a time so no frame pays for the whole index).
    // ------------------------------------------------------------------

    /// Rebuilds shard `shard` from scratch over its **live** points:
    /// dead point slots, abandoned `vind`/SoA ranges and retired pool
    /// nodes are all dropped, and the shard's bounding box is
    /// **re-tightened** to the live points (deletes only ever leave
    /// boxes over-grown — see [`delete`](ShardRouter::delete) — so
    /// stale boxes route queries into shards that cannot answer them).
    /// Global indices are preserved: every live point keeps its index,
    /// so query results are unchanged; only per-shard traversal
    /// counters may shrink with the tightened routing and the rebuilt
    /// shape. A shard whose points were all deleted collapses to an
    /// empty tree with a never-intersecting box (it revives on the next
    /// routed insert).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn rebuild_shard(&mut self, shard: usize) {
        // lint: allow(debug-assert-discipline) — rebuilding a
        // quarantined shard from its own suspect tree would launder
        // corruption into a "clean" index; this must hold in release
        // builds, where the chaos/heal machinery actually runs.
        assert!(
            !self.shards[shard].quarantined,
            "rebuilding quarantined shard {shard} from its own (suspect) tree; \
             use rebuild_shards_from with authoritative coordinates"
        );
        let (globals, pts, dead): (Vec<u32>, Vec<Point3>, Vec<u32>) = {
            let s = &self.shards[shard];
            let kd = s.tree.kd();
            let mut globals = Vec::with_capacity(kd.num_live());
            let mut pts = Vec::with_capacity(kd.num_live());
            let mut dead = Vec::new();
            for (local, &g) in s.global.iter().enumerate() {
                if kd.is_live(local as u32) {
                    globals.push(g);
                    pts.push(kd.points()[local]);
                } else {
                    dead.push(g);
                }
            }
            (globals, pts, dead)
        };
        for g in dead {
            self.retire_global(g);
        }
        if pts.is_empty() {
            // Keep the shard slot (locs store shard ids) but give it an
            // inverted box no ball can intersect; Aabb::insert heals it
            // on the next routed insert.
            let mut sim = SimEngine::disabled();
            let tree = match self.mode {
                EngineMode::Baseline => {
                    ShardTree::Baseline(KdTree::build(Vec::new(), self.tree_cfg, &mut sim))
                }
                EngineMode::Compressed => {
                    ShardTree::Bonsai(BonsaiTree::build(Vec::new(), self.tree_cfg, &mut sim))
                }
            };
            self.shards[shard] = Arc::new(Shard {
                aabb: Aabb {
                    min: Point3::splat(f32::INFINITY),
                    max: Point3::splat(f32::NEG_INFINITY),
                },
                global: Vec::new(),
                tree,
                quarantined: false,
                pending_deletes: Vec::new(),
                load: Arc::new(ShardLoad::default()),
            });
            return;
        }
        let inner_threads = if cfg!(feature = "parallel") {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            1
        };
        let rebuilt = build_shard_threaded(globals, pts, self.tree_cfg, self.mode, inner_threads);
        for (local, &g) in rebuilt.global.iter().enumerate() {
            self.locs[g as usize] = PointLoc {
                shard: shard as u32,
                local: local as u32,
            };
        }
        self.shards[shard] = Arc::new(rebuilt);
    }

    /// One amortized step of the rolling compaction: inspects the next
    /// shard in round-robin order and rebuilds it when `policy` says
    /// its waste warrants it. Returns the rebuilt shard's index, or
    /// `None` when the inspected shard (or an empty router) needed
    /// nothing. Call once per frame — over `num_shards()` frames every
    /// shard gets checked, so no single frame ever pays for more than
    /// one rebuild.
    pub fn compact_next(&mut self, policy: &CompactionPolicy) -> Option<usize> {
        if self.shards.is_empty() {
            return None;
        }
        let i = self.compact_cursor % self.shards.len();
        self.compact_cursor = (i + 1) % self.shards.len();
        if self.shards[i].quarantined {
            return None; // frozen until healed
        }
        let (waste, footprint) = self.shard_fragmentation(i);
        if policy.should_compact(waste, footprint) {
            self.rebuild_shard(i);
            Some(i)
        } else {
            None
        }
    }

    /// Shard `shard`'s `(waste, footprint)` pair: abandoned slots plus
    /// dead points, over total slots plus total points — the quantities
    /// [`CompactionPolicy::should_compact`] consumes.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn shard_fragmentation(&self, shard: usize) -> (usize, usize) {
        let kd = self.shards[shard].tree.kd();
        let dead = kd.points().len() - kd.num_live();
        (
            kd.garbage_slots() + dead,
            kd.vind().len() + kd.points().len(),
        )
    }

    /// Total abandoned `vind`/SoA slots across all shards (the
    /// fragmentation counter the soak bench plots).
    pub fn garbage_slots(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.tree.kd().garbage_slots())
            .sum()
    }

    /// Total `vind`/SoA slots across all shards (live + garbage), the
    /// denominator of the garbage ratio.
    pub fn slot_count(&self) -> usize {
        self.shards.iter().map(|s| s.tree.kd().vind().len()).sum()
    }

    /// Host-side memory footprint across all shards, in bytes (point
    /// arrays including dead points, slot arrays including garbage,
    /// node pools, f16 rows and compressed directories) plus the
    /// global→shard directory.
    pub fn resident_bytes(&self) -> u64 {
        let shard_bytes: u64 = self
            .shards
            .iter()
            .map(|s| {
                let tree = match &s.tree {
                    ShardTree::Baseline(t) => t.resident_bytes(),
                    ShardTree::Bonsai(b) => b.resident_bytes(),
                };
                tree + s.global.len() as u64 * 4
            })
            .sum();
        shard_bytes + self.locs.len() as u64 * 8
    }

    /// Answers one query, clearing `out` first: hits from every shard
    /// whose box intersects the query ball, re-indexed to global cloud
    /// indices and sorted ascending. Allocation-free once `scratch` and
    /// `out` are warm.
    ///
    /// A non-positive or non-finite `radius` — or a query center with a
    /// non-finite coordinate — yields an empty result without touching
    /// any shard.
    pub fn search_one(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        out.clear();
        self.append_query(query, radius, scratch, out, stats);
    }

    /// Answers every query in one call, filling `batch` (reset first):
    /// the sharded equivalent of `RadiusSearchEngine::search_batch`,
    /// with [`QueryBatch::stats`] aggregating the whole batch across
    /// shards.
    pub fn search_batch(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        batch.reset();
        // One route BVH amortized over the whole batch: per-query
        // dispatch is O(log K + hits) instead of a K-box scan, which
        // matters once the adaptive policy has split the hot region
        // into many small shards.
        let routes = RouteIndex::build(&self.shards);
        for &query in queries {
            batch.push_query(|scratch, out, stats| {
                append_routed(
                    &self.shards,
                    &self.lut,
                    Some(&routes),
                    query,
                    radius,
                    scratch,
                    out,
                    stats,
                );
            });
        }
    }

    /// [`search_batch`](ShardRouter::search_batch) fanned out over
    /// scoped worker threads (`threads == 0` uses the machine's
    /// available parallelism). Results are merged in query order, so
    /// output and aggregate stats are identical to the sequential call.
    #[cfg(feature = "parallel")]
    pub fn search_batch_parallel(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
        threads: usize,
    ) {
        crate::fanout::search_batch_across_threads(queries, radius, batch, threads, |q, r, b| {
            self.search_batch(q, r, b)
        });
    }

    /// [`search_batch`](ShardRouter::search_batch) partitioned **by
    /// shard** instead of by query range: each worker owns a subset of
    /// the shards — balanced by the observed per-shard load profile
    /// (LPT over the same counters `adapt_step` rebalances on; point
    /// counts before any load has been seen) — and answers every query
    /// against only its shards; the per-query hit lists are then merged
    /// in canonical ascending-global-index order. Output and aggregate
    /// stats are identical to the sequential call.
    ///
    /// This is the shard-per-worker serving model, and the execution
    /// mode load-adaptive sharding exists for: a query-range partition
    /// stays balanced because every worker may touch every shard, but a
    /// distributed or accelerator-offloaded deployment does not get
    /// that luxury — a shard lives in one place, and a skewed stream
    /// pins its work on whichever worker owns the hot shard. A static
    /// median-cut topology cannot divide that shard, so the batch
    /// serializes on the hot worker (Amdahl); after
    /// [`adapt_step`](ShardRouter::adapt_step) has split the hot region
    /// into many small shards, the same LPT assignment spreads the hot
    /// load across all workers.
    /// The shard-per-worker partition of this router's healthy shards:
    /// a longest-processing-time assignment over each shard's observed
    /// load (the same counters [`adapt_step`](ShardRouter::adapt_step)
    /// rebalances on; point counts before any load has been seen).
    /// Returns at most `workers` non-empty ownership sets, together
    /// covering every healthy shard exactly once. This is the
    /// placement a shard-per-worker deployment should serve with —
    /// each set is one worker's slice for
    /// [`search_batch_shards`](ShardRouter::search_batch_shards) — and
    /// the quality of the balance is exactly what the adaptive policy
    /// buys: a static topology's hot shard is one indivisible bin
    /// entry, while an adapted topology spreads the same load over
    /// many small shards the assignment can interleave.
    pub fn worker_partition(&self, workers: usize) -> Vec<Vec<usize>> {
        balance_shards_by_load(&self.shards, workers.max(1))
    }

    /// Answers every query against only the listed shards — one
    /// worker's slice of the shard-per-worker serving model, filling
    /// `batch` (reset first) with that slice's exact hits in canonical
    /// ascending-global-index order. Out-of-range and duplicate
    /// entries in `subset` are ignored; quarantined shards are skipped
    /// as everywhere else. Concatenating the per-query results of the
    /// slices of a [`worker_partition`](ShardRouter::worker_partition)
    /// and re-sorting by global index reproduces
    /// [`search_batch`](ShardRouter::search_batch) bit for bit.
    pub fn search_batch_shards(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
        subset: &[usize],
    ) {
        batch.reset();
        let routes = RouteIndex::build_subset(&self.shards, subset);
        for &query in queries {
            batch.push_query(|scratch, out, stats| {
                append_routed(
                    &self.shards,
                    &self.lut,
                    Some(&routes),
                    query,
                    radius,
                    scratch,
                    out,
                    stats,
                );
            });
        }
    }

    #[cfg(feature = "parallel")]
    pub fn search_batch_shard_parallel(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
        threads: usize,
    ) {
        let workers = crate::fanout::resolve_threads(threads, self.shards.len().max(1));
        if workers <= 1 || queries.is_empty() {
            return self.search_batch(queries, radius, batch);
        }
        let assignment = balance_shards_by_load(&self.shards, workers);
        if assignment.len() <= 1 {
            return self.search_batch(queries, radius, batch);
        }
        let mut parts: Vec<QueryBatch> = (0..assignment.len()).map(|_| QueryBatch::new()).collect();
        std::thread::scope(|scope| {
            for (part, own) in parts.iter_mut().zip(&assignment) {
                scope.spawn(move || {
                    part.reset();
                    let routes = RouteIndex::build_subset(&self.shards, own);
                    for &query in queries {
                        part.push_query(|scratch, out, stats| {
                            append_routed(
                                &self.shards,
                                &self.lut,
                                Some(&routes),
                                query,
                                radius,
                                scratch,
                                out,
                                stats,
                            );
                        });
                    }
                });
            }
        });
        batch.reset();
        for (i, _) in queries.iter().enumerate() {
            batch.push_query(|_scratch, out, stats| {
                if i == 0 {
                    for part in &parts {
                        *stats += *part.stats();
                    }
                }
                let start = out.len();
                for part in &parts {
                    out.extend_from_slice(part.results(i));
                }
                // Each part is sorted already and global indices are
                // unique, so one sort re-establishes the canonical
                // order the sequential path produces.
                out[start..].sort_unstable_by_key(|n| n.index);
            });
        }
    }

    /// The routed per-query kernel: searches every intersecting shard,
    /// re-indexes its hits to global indices, and sorts the query's
    /// merged hits into canonical ascending-index order. Shared
    /// verbatim with [`RouterSnapshot`], so a pinned snapshot can never
    /// drift from the live router at the same state.
    fn append_query(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        // Single-query path on the live router: linear scan (no route
        // BVH to reuse between mutations). Batches and snapshots route
        // through the BVH.
        append_routed(
            &self.shards,
            &self.lut,
            None,
            query,
            radius,
            scratch,
            out,
            stats,
        );
    }

    /// [`search_one`](ShardRouter::search_one) behind the typed serving
    /// boundary: a router that is non-empty but has **every** shard
    /// quarantined returns [`QueryError::NoCoverage`] instead of a
    /// silently empty answer. Partial quarantine still answers (the
    /// healthy shards' hits), reported through
    /// [`coverage`](ShardRouter::coverage) as before; an empty router
    /// is legitimately empty, not an error.
    pub fn try_search_one(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) -> Result<(), QueryError> {
        coverage_gate(&self.shards)?;
        self.search_one(query, radius, scratch, out, stats);
        Ok(())
    }

    /// [`search_batch`](ShardRouter::search_batch) behind the typed
    /// serving boundary — see
    /// [`try_search_one`](ShardRouter::try_search_one). On error the
    /// batch is left reset (no partial results).
    pub fn try_search_batch(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
    ) -> Result<(), QueryError> {
        batch.reset();
        coverage_gate(&self.shards)?;
        self.search_batch(queries, radius, batch);
        Ok(())
    }

    /// An immutable point-in-time view of the router for concurrent
    /// serving: O(K) `Arc` clones of the shard list — no tree data is
    /// copied. The snapshot answers queries bit-identically to this
    /// router at the moment of the call, and **stays** bit-identical
    /// while the router keeps mutating (copy-on-write: a mutation
    /// deep-copies a shard only while a snapshot still pins it).
    ///
    /// Publish snapshots through an
    /// [`EpochPublisher`](crate::EpochPublisher) to serve queries while
    /// ingesting frames.
    pub fn snapshot(&self) -> RouterSnapshot {
        RouterSnapshot {
            // The route BVH is immutable alongside the shard list it
            // indexes, so every query served off this snapshot routes
            // in O(log K) with zero per-query build cost.
            routes: Arc::new(RouteIndex::build(&self.shards)),
            shards: self.shards.clone(),
            mode: self.mode,
            num_points: self.num_points,
            lut: self.lut.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Fault tolerance: deep audit, quarantine, healing rebuild.
    // ------------------------------------------------------------------

    /// Retires global index `g`: the directory entry goes to
    /// [`PointLoc::GONE`], its generation tag is bumped, and the index
    /// joins the free list for reuse by a later insert.
    fn retire_global(&mut self, g: u32) {
        self.locs[g as usize] = PointLoc::GONE;
        self.generations[g as usize] = self.generations[g as usize].wrapping_add(1);
        self.free_globals.push(g);
    }

    /// An empty shard slot: a never-intersecting inverted box over an
    /// empty tree, revived by the next routed insert.
    fn make_empty_shard(&self) -> Shard {
        let mut sim = SimEngine::disabled();
        let tree = match self.mode {
            EngineMode::Baseline => {
                ShardTree::Baseline(KdTree::build(Vec::new(), self.tree_cfg, &mut sim))
            }
            EngineMode::Compressed => {
                ShardTree::Bonsai(BonsaiTree::build(Vec::new(), self.tree_cfg, &mut sim))
            }
        };
        Shard {
            aabb: Aabb {
                min: Point3::splat(f32::INFINITY),
                max: Point3::splat(f32::NEG_INFINITY),
            },
            global: Vec::new(),
            tree,
            quarantined: false,
            pending_deletes: Vec::new(),
            load: Arc::new(ShardLoad::default()),
        }
    }

    /// Marks shard `shard` quarantined: queries skip it (the region is
    /// reported through [`coverage`](ShardRouter::coverage)), mutations
    /// never touch its tree (deletes are queued), and only
    /// [`rebuild_shards_from`](ShardRouter::rebuild_shards_from)
    /// re-admits it. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn quarantine(&mut self, shard: usize) {
        // lint: allow(cow-discipline) — a health-flag flip must copy
        // even a clean pinned shard: readers on older epochs keep
        // serving the pre-quarantine snapshot by design.
        Arc::make_mut(&mut self.shards[shard]).quarantined = true;
    }

    /// Whether shard `shard` is quarantined.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.shards[shard].quarantined
    }

    /// Indices of the quarantined shards, ascending.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.quarantined)
            .map(|(i, _)| i)
            .collect()
    }

    /// The coverage the next query would see: complete when no shard is
    /// quarantined, else the offline regions' bounding boxes.
    pub fn coverage(&self) -> Coverage {
        let offline: Vec<Aabb> = self
            .shards
            .iter()
            .filter(|s| s.quarantined)
            .map(|s| s.aabb)
            .collect();
        Coverage {
            complete: offline.is_empty(),
            offline,
        }
    }

    /// The shard currently owning global index `global`, or `None` when
    /// the index is out of range or retired.
    pub fn shard_of(&self, global: u32) -> Option<usize> {
        let loc = self.locs.get(global as usize)?;
        if loc.shard == PointLoc::GONE.shard {
            None
        } else {
            Some(loc.shard as usize)
        }
    }

    /// Generation tag of global index `global` (bumped each time the
    /// index is retired and made reusable), or `None` out of range.
    pub fn generation(&self, global: u32) -> Option<u32> {
        self.generations.get(global as usize).copied()
    }

    /// Deep invariant audit of the whole router: every healthy shard's
    /// tree (its full [`KdTree`] invariant web plus, under Bonsai, the
    /// f16 rows and compressed directory), the global→(shard, local)
    /// directory ↔ per-shard live-set bijection, the free-list ↔
    /// retired-entry bijection, and the live-point accounting. Never
    /// panics on corrupt state — every finding comes back as a typed
    /// [`AuditViolation`] (shard-attributed where one is involved);
    /// an empty vector certifies the router.
    ///
    /// Quarantined shards are skipped: they are already known-suspect
    /// and frozen.
    pub fn audit(&self) -> Vec<AuditViolation> {
        let mut out = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.quarantined {
                continue;
            }
            let tree_violations = match &shard.tree {
                ShardTree::Baseline(t) => t.audit(),
                ShardTree::Bonsai(b) => b.audit(),
            };
            for v in tree_violations {
                out.push(v.at_shard(si as u32));
            }
            let kd = shard.tree.kd();
            if shard.global.len() != kd.points().len() {
                out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!(
                            "local→global map covers {} of {} tree points",
                            shard.global.len(),
                            kd.points().len()
                        ),
                    )
                    .at_shard(si as u32),
                );
            }
        }
        // Reverse pass: every live local slot of a healthy shard must be
        // claimed by exactly its directory entry.
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.quarantined {
                continue;
            }
            let kd = shard.tree.kd();
            for (local, &g) in shard.global.iter().enumerate() {
                if local >= kd.points().len() || !kd.is_live(local as u32) {
                    continue;
                }
                match self.locs.get(g as usize) {
                    Some(loc) if loc.shard == si as u32 && loc.local == local as u32 => {}
                    Some(loc) if loc.shard == PointLoc::GONE.shard => out.push(
                        AuditViolation::new(
                            ViolationKind::ShardDirectory,
                            format!("live global {g} (shard {si} local {local}) is retired"),
                        )
                        .at_shard(si as u32)
                        .at_index(g),
                    ),
                    Some(loc) => out.push(
                        AuditViolation::new(
                            ViolationKind::ShardDirectory,
                            format!(
                                "live global {g} lives at shard {si} local {local} but the \
                                 directory claims shard {} local {}",
                                loc.shard, loc.local
                            ),
                        )
                        .at_shard(si as u32)
                        .at_index(g),
                    ),
                    None => out.push(
                        AuditViolation::new(
                            ViolationKind::ShardDirectory,
                            format!(
                                "live global {g} (shard {si} local {local}) is past the \
                                 directory ({} entries)",
                                self.locs.len()
                            ),
                        )
                        .at_shard(si as u32)
                        .at_index(g),
                    ),
                }
            }
        }
        // Forward pass: every mapped directory entry must resolve to a
        // shard slot holding exactly that global index.
        let mut retired = 0usize;
        for (g, loc) in self.locs.iter().enumerate() {
            if loc.shard == PointLoc::GONE.shard {
                retired += 1;
                continue;
            }
            let Some(shard) = self.shards.get(loc.shard as usize) else {
                out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!("global {g} maps to shard {} past the router", loc.shard),
                    )
                    .at_index(g as u32),
                );
                continue;
            };
            if shard.quarantined {
                continue;
            }
            match shard.global.get(loc.local as usize) {
                Some(&owner) if owner == g as u32 => {}
                Some(&owner) => out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!(
                            "global {g} maps to shard {} local {} but that slot holds \
                             global {owner}",
                            loc.shard, loc.local
                        ),
                    )
                    .at_shard(loc.shard)
                    .at_index(g as u32),
                ),
                None => out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!(
                            "global {g} maps to shard {} local {}, past the shard's {} slots",
                            loc.shard,
                            loc.local,
                            shard.global.len()
                        ),
                    )
                    .at_shard(loc.shard)
                    .at_index(g as u32),
                ),
            }
        }
        // Free list ↔ retired entries: a bijection.
        let mut seen = HashSet::new();
        for &g in &self.free_globals {
            match self.locs.get(g as usize) {
                None => out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!("free-list entry {g} is past the directory"),
                    )
                    .at_index(g),
                ),
                Some(_) if !seen.insert(g) => out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!("free-list entry {g} is listed twice"),
                    )
                    .at_index(g),
                ),
                Some(loc) if loc.shard != PointLoc::GONE.shard => out.push(
                    AuditViolation::new(
                        ViolationKind::ShardDirectory,
                        format!("free-list entry {g} is still mapped to shard {}", loc.shard),
                    )
                    .at_index(g),
                ),
                Some(_) => {}
            }
        }
        if retired != self.free_globals.len() {
            out.push(AuditViolation::new(
                ViolationKind::ShardDirectory,
                format!(
                    "directory holds {retired} retired entries but the free list holds {}",
                    self.free_globals.len()
                ),
            ));
        }
        if self.generations.len() != self.locs.len() {
            out.push(AuditViolation::new(
                ViolationKind::ShardDirectory,
                format!(
                    "generation tags cover {} of {} directory entries",
                    self.generations.len(),
                    self.locs.len()
                ),
            ));
        }
        // Live accounting is only meaningful with every shard healthy —
        // deletes routed to a quarantined shard are counted from a
        // suspect alive mask until the heal recounts.
        if self.shards.iter().all(|s| !s.quarantined) {
            let live: usize = self.shards.iter().map(|s| s.tree.kd().num_live()).sum();
            if live != self.num_points {
                out.push(AuditViolation::new(
                    ViolationKind::Accounting,
                    format!(
                        "num_points is {} but shards hold {live} live points",
                        self.num_points
                    ),
                ));
            }
        }
        out
    }

    /// Heals shards from authoritative coordinates: quarantines every
    /// shard in `targets` (idempotent), then rebuilds each from the
    /// subset of `live` — the caller's authoritative `(global index,
    /// exact point)` live set, e.g. the streaming extractor's — that no
    /// healthy shard owns, and re-admits them. Directory entries of
    /// healthy-shard points are repaired in place, global indices
    /// vanished from the live set are retired (generation bumped, index
    /// free-listed), pending quarantine-time deletes are resolved by
    /// construction, and the live-point counter is recounted once no
    /// shard remains quarantined.
    ///
    /// Unclaimed live points go to the target their directory entry
    /// names when it names one, else to the nearest target by
    /// bounding-box distance; each target is rebuilt over its points in
    /// ascending global order, so healing is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if any target index is `>= num_shards()`.
    pub fn rebuild_shards_from(&mut self, targets: &[usize], live: &[(u32, Point3)]) {
        if targets.is_empty() {
            return;
        }
        for &t in targets {
            // lint: allow(cow-discipline) — the heal replaces target
            // trees wholesale; any uncommitted dirt they carried is
            // superseded by the authoritative rebuild that follows.
            Arc::make_mut(&mut self.shards[t]).quarantined = true;
        }
        // Reverse map over the healthy shards: which globals they own
        // (live slots only). Points the healthy half owns must NOT be
        // adopted into a rebuilt target — that would double-store them.
        let mut owned: HashMap<u32, PointLoc> = HashMap::new();
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.quarantined {
                continue;
            }
            let kd = shard.tree.kd();
            for (local, &g) in shard.global.iter().enumerate() {
                if local < kd.points().len() && kd.is_live(local as u32) {
                    owned.insert(
                        g,
                        PointLoc {
                            shard: si as u32,
                            local: local as u32,
                        },
                    );
                }
            }
        }
        // Partition the unclaimed live points among the targets.
        let mut assign: Vec<Vec<(u32, Point3)>> = vec![Vec::new(); targets.len()];
        for &(g, p) in live {
            if let Some(&loc) = owned.get(&g) {
                // A healthy shard owns it — repair the directory entry
                // in place if corruption redirected it.
                if (g as usize) < self.locs.len() {
                    self.locs[g as usize] = loc;
                }
                continue;
            }
            let claimed = self
                .locs
                .get(g as usize)
                .filter(|loc| loc.shard != PointLoc::GONE.shard)
                .and_then(|loc| targets.iter().position(|&t| t == loc.shard as usize));
            let ti = claimed.unwrap_or_else(|| {
                targets
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        self.shards[a]
                            .aabb
                            .distance_squared_to(p)
                            .total_cmp(&self.shards[b].aabb.distance_squared_to(p))
                    })
                    .map(|(i, _)| i)
                    // lint: allow(panic-free-serving) — `targets` is
                    // the non-empty rebuild set computed above; a min
                    // over it always exists.
                    .expect("targets is non-empty")
            });
            assign[ti].push((g, p));
        }
        let inner_threads = if cfg!(feature = "parallel") {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            1
        };
        for (ti, &t) in targets.iter().enumerate() {
            let mut items = std::mem::take(&mut assign[ti]);
            items.sort_unstable_by_key(|&(g, _)| g);
            if items.is_empty() {
                self.shards[t] = Arc::new(self.make_empty_shard());
                continue;
            }
            let globals: Vec<u32> = items.iter().map(|&(g, _)| g).collect();
            let pts: Vec<Point3> = items.iter().map(|&(_, p)| p).collect();
            let rebuilt =
                build_shard_threaded(globals, pts, self.tree_cfg, self.mode, inner_threads);
            for (local, &g) in rebuilt.global.iter().enumerate() {
                if (g as usize) >= self.locs.len() {
                    // An authoritative global past the directory (the
                    // directory itself was corrupt): grow to cover it.
                    self.locs.resize(g as usize + 1, PointLoc::GONE);
                    self.generations.resize(g as usize + 1, 0);
                }
                self.locs[g as usize] = PointLoc {
                    shard: t as u32,
                    local: local as u32,
                };
            }
            self.shards[t] = Arc::new(rebuilt);
        }
        // Retirement sweep: directory entries no shard slot holds any
        // more (dead points the rebuild dropped, quarantine-time
        // deletes) are retired with a generation bump. Entries present
        // in any shard — live or dead — are left alone; the owning
        // shard's own rebuild retires its dead ones later.
        let mut present = vec![false; self.locs.len()];
        for shard in &self.shards {
            for &g in &shard.global {
                if let Some(slot) = present.get_mut(g as usize) {
                    *slot = true;
                }
            }
        }
        for (g, here) in present.iter().enumerate() {
            if !here && self.locs[g].shard != PointLoc::GONE.shard {
                self.locs[g] = PointLoc::GONE;
                self.generations[g] = self.generations[g].wrapping_add(1);
            }
        }
        // Re-derive the free list as exactly the retired entries — the
        // heal may have both retired entries and revived free-listed
        // ones (a repaired directory entry).
        self.free_globals = self
            .locs
            .iter()
            .enumerate()
            .filter(|(_, loc)| loc.shard == PointLoc::GONE.shard)
            .map(|(g, _)| g as u32)
            .collect();
        if self.shards.iter().all(|s| !s.quarantined) {
            self.num_points = self.shards.iter().map(|s| s.tree.kd().num_live()).sum();
        }
    }

    // ------------------------------------------------------------------
    // Query-load-adaptive topology: observed-load split/merge with an
    // SAH-style cost model (see `core/src/adapt.rs` for the policy).
    // ------------------------------------------------------------------

    /// Whether shard `shard` may take part in a topology change right
    /// now: in range and not quarantined. A quarantined shard has a
    /// heal in progress — its tree is suspect, and repartitioning it
    /// would launder corruption into a "clean" layout — so it is never
    /// chosen. This is the guard every split/merge entry point
    /// delegates to.
    pub fn shard_is_adaptable(&self, shard: usize) -> Result<(), RejectReason> {
        match self.shards.get(shard) {
            None => Err(RejectReason::OutOfRange { shard }),
            Some(s) if s.quarantined => Err(RejectReason::Quarantined { shard }),
            Some(_) => Ok(()),
        }
    }

    /// Splits shard `shard` at `plane` on `axis`: live points with
    /// coordinate `< plane` keep the slot, the rest move to a sibling
    /// slot (a rebuilt-empty slot when one exists, else a freshly
    /// appended one — existing slots are never renumbered, because the
    /// global directory stores shard ids). Returns the sibling's index.
    ///
    /// This is [`rebuild_shard`](ShardRouter::rebuild_shard)'s targeted
    /// machinery run once per child: every live point keeps its global
    /// index, dead entries are retired to the generation-tagged free
    /// list, both children's boxes are re-tightened, and previously
    /// published [`RouterSnapshot`]s keep answering from the pre-split
    /// topology (their shard `Arc`s are untouched) — query results stay
    /// bit-identical in values and order; only traversal counters may
    /// change with the tighter routing.
    ///
    /// Refuses — typed, with **no** state change — a quarantined or
    /// out-of-range shard ([`shard_is_adaptable`](ShardRouter::shard_is_adaptable)),
    /// an axis ≥ 3 or non-finite plane, and a plane that fails to put
    /// at least one live point on each side.
    pub fn split_shard(
        &mut self,
        shard: usize,
        axis: usize,
        plane: f32,
    ) -> Result<usize, RejectReason> {
        self.shard_is_adaptable(shard)?;
        if axis >= 3 || !plane.is_finite() {
            return Err(RejectReason::NoGain { shard });
        }
        // Collect the live set and verify the plane separates it
        // *before* mutating anything: retiring dead globals while their
        // slots still linger in the shard would corrupt the directory.
        let (mut lower, mut upper, dead) = {
            let s = &self.shards[shard];
            let kd = s.tree.kd();
            let mut lower: Vec<(u32, Point3)> = Vec::new();
            let mut upper: Vec<(u32, Point3)> = Vec::new();
            let mut dead = Vec::new();
            for (local, &g) in s.global.iter().enumerate() {
                if kd.is_live(local as u32) {
                    let p = kd.points()[local];
                    if p[axis] < plane {
                        lower.push((g, p));
                    } else {
                        upper.push((g, p));
                    }
                } else {
                    dead.push(g);
                }
            }
            (lower, upper, dead)
        };
        if lower.is_empty() || upper.is_empty() {
            return Err(RejectReason::NoGain { shard });
        }
        for g in dead {
            self.retire_global(g);
        }
        // The upper half lands in a rebuilt-empty slot when one exists
        // (the same free slots `insert` revives), else a new one.
        let sibling = match self
            .shards
            .iter()
            .position(|s| !s.quarantined && s.global.is_empty() && s.aabb.min.x > s.aabb.max.x)
        {
            Some(i) => i,
            None => {
                let empty = self.make_empty_shard();
                self.shards.push(Arc::new(empty));
                self.shards.len() - 1
            }
        };
        lower.sort_unstable_by_key(|&(g, _)| g);
        upper.sort_unstable_by_key(|&(g, _)| g);
        let inner_threads = if cfg!(feature = "parallel") {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            1
        };
        for (slot, half) in [(shard, lower), (sibling, upper)] {
            let globals: Vec<u32> = half.iter().map(|&(g, _)| g).collect();
            let pts: Vec<Point3> = half.iter().map(|&(_, p)| p).collect();
            let rebuilt =
                build_shard_threaded(globals, pts, self.tree_cfg, self.mode, inner_threads);
            for (local, &g) in rebuilt.global.iter().enumerate() {
                self.locs[g as usize] = PointLoc {
                    shard: slot as u32,
                    local: local as u32,
                };
            }
            self.shards[slot] = Arc::new(rebuilt);
        }
        Ok(sibling)
    }

    /// Merges shards `a` and `b`: their live points are rebuilt into
    /// the lower-indexed slot (in ascending global order) and the other
    /// slot becomes a rebuilt-empty shard — slots are never removed,
    /// because the global directory stores shard ids, and the emptied
    /// slot is the first candidate for a later split or out-of-box
    /// insert. Returns the kept slot. Same preservation contract as
    /// [`split_shard`](ShardRouter::split_shard): global indices, free
    /// list, pinned snapshots and query results are all unaffected.
    pub fn merge_shards(&mut self, a: usize, b: usize) -> Result<usize, RejectReason> {
        if a == b {
            return Err(RejectReason::SameShard { shard: a });
        }
        self.shard_is_adaptable(a)?;
        self.shard_is_adaptable(b)?;
        let kept = a.min(b);
        let emptied = a.max(b);
        let mut merged: Vec<(u32, Point3)> = Vec::new();
        let mut dead = Vec::new();
        for slot in [a, b] {
            let s = &self.shards[slot];
            let kd = s.tree.kd();
            for (local, &g) in s.global.iter().enumerate() {
                if kd.is_live(local as u32) {
                    merged.push((g, kd.points()[local]));
                } else {
                    dead.push(g);
                }
            }
        }
        for g in dead {
            self.retire_global(g);
        }
        merged.sort_unstable_by_key(|&(g, _)| g);
        self.shards[emptied] = Arc::new(self.make_empty_shard());
        if merged.is_empty() {
            self.shards[kept] = Arc::new(self.make_empty_shard());
            return Ok(kept);
        }
        let inner_threads = if cfg!(feature = "parallel") {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            1
        };
        let globals: Vec<u32> = merged.iter().map(|&(g, _)| g).collect();
        let pts: Vec<Point3> = merged.iter().map(|&(_, p)| p).collect();
        let rebuilt = build_shard_threaded(globals, pts, self.tree_cfg, self.mode, inner_threads);
        for (local, &g) in rebuilt.global.iter().enumerate() {
            self.locs[g as usize] = PointLoc {
                shard: kept as u32,
                local: local as u32,
            };
        }
        self.shards[kept] = Arc::new(rebuilt);
        Ok(kept)
    }

    /// One step of the load-adaptive policy: fold the newest per-shard
    /// counter window into the decaying profile, then propose — and,
    /// when every guard passes, execute — at most **one** topology
    /// change. The hottest shard is split when its decayed work exceeds
    /// `split_ratio ×` the populated-shard mean, at the plane a binned SAH
    /// sweep over its live points picks — provided the sweep's gain
    /// also beats the `dispatch_cost ×` populated-shard tax (every
    /// shard slot makes every routed query test one more box).
    /// Otherwise the two nearest cold shards (both below
    /// `merge_ratio ×` the mean) are merged; when the profile is flat
    /// (`flat_ratio`) across more than `flat_floor` populated shards,
    /// the nearest adaptable pair merges even without a cold shard, so
    /// a uniform stream walks an over-split fleet back down.
    /// Every refused proposal lands in the returned [`AdaptReport`] and
    /// the [`load_report`](ShardRouter::load_report) decision log as a
    /// typed [`RejectReason`]; quarantined (heal-in-progress) shards
    /// and routers whose readers lag beyond `policy.max_epoch_lag` are
    /// never chosen for topology changes.
    ///
    /// `epoch_lag` is the caller's reader-staleness observation —
    /// [`EpochPublisher::epoch_lag`](crate::EpochPublisher::epoch_lag)
    /// when snapshots are published, `0` when the router is unshared.
    pub fn adapt_step(&mut self, policy: &ShardPolicy, epoch_lag: u64) -> AdaptReport {
        self.adapt.step += 1;
        let samples: Vec<_> = self.shards.iter().map(|s| s.load.sample()).collect();
        self.adapt.absorb_window(policy.decay, &samples);
        let mut report = AdaptReport::default();
        let k = self.shards.len();
        if k == 0 {
            return report;
        }
        let total_queries: f64 = self.adapt.profile[..k].iter().map(|p| p.queries).sum();
        if total_queries < policy.min_queries {
            return report; // not enough signal to act on yet
        }
        // The reference mean is over *populated* shards: emptied slots
        // (merges, rebuilds) carry zero work forever, and letting them
        // dilute the mean makes every live shard look split-hot — a
        // freshly merged shard would ping-pong straight back into a
        // split.
        let pop_count = (0..k)
            .filter(|&i| self.shards[i].tree.kd().num_live() > 0)
            .count()
            .max(1);
        let mean = (0..k)
            .filter(|&i| self.shards[i].tree.kd().num_live() > 0)
            .map(|i| self.adapt.profile[i].work())
            .sum::<f64>()
            / pop_count as f64;
        let step = self.adapt.step;
        let hot = (0..k).max_by(|&a, &b| {
            self.adapt.profile[a]
                .work()
                .total_cmp(&self.adapt.profile[b].work())
        });
        let mut acted = false;
        if let Some(hot) = hot {
            if self.adapt.profile[hot].work() > policy.split_ratio * mean {
                let decision = match self.try_split(hot, policy, epoch_lag) {
                    Ok((sibling, axis, plane)) => {
                        self.adapt.splits += 1;
                        report.splits += 1;
                        acted = true;
                        AdaptDecision::Split {
                            step,
                            shard: hot,
                            sibling,
                            axis,
                            plane,
                        }
                    }
                    Err(reason) => {
                        self.adapt.rejected += 1;
                        report.rejected += 1;
                        AdaptDecision::Rejected { step, reason }
                    }
                };
                self.adapt.log(decision);
                report.decisions.push(decision);
            }
        }
        if !acted {
            // Steady state (nothing cold enough) is Ok(None): no
            // decision to log, not a rejection.
            match self.try_merge(policy, epoch_lag, mean) {
                Ok(Some((kept, emptied))) => {
                    self.adapt.merges += 1;
                    report.merges += 1;
                    let decision = AdaptDecision::Merge {
                        step,
                        kept,
                        emptied,
                    };
                    self.adapt.log(decision);
                    report.decisions.push(decision);
                }
                Ok(None) => {}
                Err(reason) => {
                    self.adapt.rejected += 1;
                    report.rejected += 1;
                    let decision = AdaptDecision::Rejected { step, reason };
                    self.adapt.log(decision);
                    report.decisions.push(decision);
                }
            }
        }
        report
    }

    /// The split half of [`adapt_step`](ShardRouter::adapt_step):
    /// guards, the SAH plane sweep, execution, profile bookkeeping.
    fn try_split(
        &mut self,
        shard: usize,
        policy: &ShardPolicy,
        epoch_lag: u64,
    ) -> Result<(usize, usize, f32), RejectReason> {
        self.shard_is_adaptable(shard)?;
        if epoch_lag > policy.max_epoch_lag {
            return Err(RejectReason::StalePins {
                epoch_lag,
                bound: policy.max_epoch_lag,
            });
        }
        // Rebuilt-empty slots don't count against the budget: splitting
        // into one adds no new slot.
        let populated = self
            .shards
            .iter()
            .filter(|s| !(s.global.is_empty() && s.aabb.min.x > s.aabb.max.x))
            .count();
        if populated >= policy.max_shards {
            return Err(RejectReason::ShardLimit { shards: populated });
        }
        let pts: Vec<Point3> = {
            let kd = self.shards[shard].tree.kd();
            (0..kd.points().len() as u32)
                .filter(|&l| kd.is_live(l))
                .map(|l| kd.points()[l as usize])
                .collect()
        };
        if pts.len() < policy.min_split_points {
            return Err(RejectReason::TooSmall {
                shard,
                points: pts.len(),
            });
        }
        // Every populated shard already charges each query one box
        // test, so the split's SAH gain must also cover the dispatch
        // slot it adds — the tax grows with the fleet.
        let tax = policy.dispatch_cost * populated as f64;
        let plane = find_best_split_plane_taxed(&pts, policy.bins, tax)
            .ok_or(RejectReason::NoGain { shard })?;
        let sibling = self.split_shard(shard, plane.axis, plane.position)?;
        self.adapt.on_split(shard, sibling);
        Ok((sibling, plane.axis, plane.position))
    }

    /// The merge half of [`adapt_step`](ShardRouter::adapt_step):
    /// pick the nearest pair of cold shards, guard, execute.
    fn try_merge(
        &mut self,
        policy: &ShardPolicy,
        epoch_lag: u64,
        mean: f64,
    ) -> Result<Option<(usize, usize)>, RejectReason> {
        let k = self.shards.len();
        let populated = self
            .shards
            .iter()
            .filter(|s| s.tree.kd().num_live() > 0)
            .count();
        if populated <= policy.min_shards {
            return Ok(None);
        }
        // A flat profile over many shards is itself a reason to merge:
        // no shard is hot enough to justify the per-query dispatch cost
        // of the fine partition, so any adaptable pair is fair game —
        // repeated steps walk the fleet back down toward `flat_floor`.
        let max_work = (0..k)
            .filter(|&i| self.shards[i].tree.kd().num_live() > 0)
            .map(|i| self.adapt.profile[i].work())
            .fold(0.0f64, f64::max);
        let flat = populated > policy.flat_floor && max_work <= policy.flat_ratio * mean;
        let cold: Vec<usize> = (0..k)
            .filter(|&i| {
                self.shard_is_adaptable(i).is_ok()
                    && self.shards[i].tree.kd().num_live() > 0
                    && (flat || self.adapt.profile[i].work() < policy.merge_ratio * mean)
            })
            .collect();
        if cold.len() < 2 {
            return Ok(None);
        }
        if epoch_lag > policy.max_epoch_lag {
            return Err(RejectReason::StalePins {
                epoch_lag,
                bound: policy.max_epoch_lag,
            });
        }
        // "Adjacent" = the cold pair whose boxes sit nearest: merging
        // far-apart shards would blanket dead space with one huge box
        // that every query's ball test then has to reject point by
        // point.
        let mut best: Option<(usize, usize, f32)> = None;
        for (ii, &i) in cold.iter().enumerate() {
            for &j in &cold[ii + 1..] {
                let d = self.shards[i]
                    .aabb
                    .center()
                    .distance_squared(self.shards[j].aabb.center());
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, _)) = best else {
            return Ok(None);
        };
        let kept = self.merge_shards(i, j)?;
        let emptied = if kept == i { j } else { i };
        self.adapt.on_merge(kept, emptied);
        Ok(Some((kept, emptied)))
    }

    /// Point-in-time load observability: each shard's decayed profile
    /// and raw lifetime counters, the policy's lifetime
    /// split/merge/rejection totals, and the bounded recent-decision
    /// log (oldest first).
    pub fn load_report(&self) -> LoadReport {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardLoadReport {
                profile: self.adapt.profile.get(i).copied().unwrap_or_default(),
                lifetime: s.load.sample(),
                points: s.tree.kd().num_live(),
                quarantined: s.quarantined,
            })
            .collect();
        LoadReport {
            shards,
            splits: self.adapt.splits,
            merges: self.adapt.merges,
            rejected: self.adapt.rejected,
            recent: self.adapt.decisions.clone(),
        }
    }
}

/// A pinned, immutable view of a [`ShardRouter`]'s searchable state:
/// the shard list (shared `Arc`s), mode and error-bound LUT — everything
/// queries touch, nothing mutation needs.
///
/// Obtained from [`ShardRouter::snapshot`] and typically published
/// through an [`EpochPublisher`](crate::EpochPublisher): readers pin an
/// epoch's snapshot and search it from any thread
/// (`RouterSnapshot: Send + Sync`) while the live router ingests the
/// next frame. Results are bit-identical — values, order and
/// [`SearchStats`] — to searching the router frozen at snapshot time,
/// because both run the exact same routed kernel over the exact same
/// shard `Arc`s.
#[derive(Debug, Clone)]
pub struct RouterSnapshot {
    shards: Vec<Arc<Shard>>,
    mode: EngineMode,
    num_points: usize,
    lut: PartErrorMem,
    /// Route BVH over the healthy shard boxes, frozen with them.
    routes: Arc<RouteIndex>,
}

impl RouterSnapshot {
    /// The leaf representation every shard scans.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Number of shards in the snapshot.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live points at snapshot time.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The coverage this snapshot serves — frozen at snapshot time.
    pub fn coverage(&self) -> Coverage {
        let offline: Vec<Aabb> = self
            .shards
            .iter()
            .filter(|s| s.quarantined)
            .map(|s| s.aabb)
            .collect();
        Coverage {
            complete: offline.is_empty(),
            offline,
        }
    }

    /// Answers one query exactly as [`ShardRouter::search_one`] would
    /// have at snapshot time: `out` cleared, hits re-indexed to global
    /// indices, canonical ascending order.
    pub fn search_one(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        out.clear();
        self.search_append(query, radius, scratch, out, stats);
    }

    /// The appending per-query kernel (the closure shape
    /// [`QueryBatch::push_query`] consumes): hits append to `out`
    /// without clearing it, in canonical order per query. This is the
    /// entry point the `bonsai-serve` batch executor drives.
    pub fn search_append(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        append_routed(
            &self.shards,
            &self.lut,
            Some(&self.routes),
            query,
            radius,
            scratch,
            out,
            stats,
        );
    }

    /// Answers every query in one call, filling `batch` (reset first) —
    /// [`ShardRouter::search_batch`] frozen at snapshot time.
    pub fn search_batch(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        batch.reset();
        for &query in queries {
            batch.push_query(|scratch, out, stats| {
                self.search_append(query, radius, scratch, out, stats);
            });
        }
    }

    /// [`search_batch`](RouterSnapshot::search_batch) fanned out over
    /// scoped worker threads, identical output and stats.
    #[cfg(feature = "parallel")]
    pub fn search_batch_parallel(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
        threads: usize,
    ) {
        crate::fanout::search_batch_across_threads(queries, radius, batch, threads, |q, r, b| {
            self.search_batch(q, r, b)
        });
    }

    /// [`search_one`](RouterSnapshot::search_one) behind the typed
    /// serving boundary: [`QueryError::NoCoverage`] when the snapshot
    /// is non-empty but every shard is quarantined.
    pub fn try_search_one(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) -> Result<(), QueryError> {
        coverage_gate(&self.shards)?;
        self.search_one(query, radius, scratch, out, stats);
        Ok(())
    }

    /// [`search_batch`](RouterSnapshot::search_batch) behind the typed
    /// serving boundary. On error the batch is left reset.
    pub fn try_search_batch(
        &self,
        queries: &[Point3],
        radius: f32,
        batch: &mut QueryBatch,
    ) -> Result<(), QueryError> {
        batch.reset();
        coverage_gate(&self.shards)?;
        self.search_batch(queries, radius, batch);
        Ok(())
    }
}

/// A flat skip-pointer BVH over the healthy shards' bounding boxes:
/// the routing accelerator that keeps per-query dispatch `O(log K +
/// hits)` instead of a linear scan of all `K` shard boxes — the cost
/// that would otherwise cancel the adaptive policy's traversal savings
/// once it splits a hot region into many small shards.
///
/// Nodes are stored in preorder; `skip` jumps past a node's whole
/// subtree when the query ball misses its box. A leaf carries the
/// shard's position in the shard list and **its exact bounding box**,
/// so the accepted shard set is bit-identical to the linear
/// `intersects_ball` scan (interior nodes only ever prune shards the
/// scan would also reject). Quarantined and empty shards are excluded
/// at build time, mirroring the scan's skip.
///
/// Built per [`ShardRouter::search_batch`] call (the list may mutate
/// between calls) and cached inside each immutable [`RouterSnapshot`]
/// (the serving path routes single queries, so it must not pay a
/// per-query build).
#[derive(Debug)]
struct RouteIndex {
    nodes: Vec<RouteNode>,
}

#[derive(Debug, Clone, Copy)]
struct RouteNode {
    aabb: Aabb,
    /// Preorder index just past this node's subtree: where the walk
    /// resumes when the query ball misses `aabb`.
    skip: u32,
    /// Leaf payload — the shard's index in the shard list — or
    /// `u32::MAX` for an interior node.
    shard: u32,
}

impl RouteIndex {
    fn build(shards: &[Arc<Shard>]) -> RouteIndex {
        let mut entries: Vec<(u32, Aabb)> = shards
            .iter()
            .enumerate()
            // An empty shard's inverted box can never intersect a ball;
            // a quarantined shard must not be searched.
            .filter(|(_, s)| !s.quarantined && s.aabb.min.x <= s.aabb.max.x)
            .map(|(i, s)| (i as u32, s.aabb))
            .collect();
        RouteIndex::from_entries(&mut entries)
    }

    /// A route index over only the listed shard positions (a worker's
    /// ownership set in the shard-per-worker paths), with the same
    /// quarantine/empty exclusions as [`build`](RouteIndex::build).
    /// Out-of-range and duplicate positions are ignored, so a stale
    /// caller-held partition can never panic the serving path or
    /// duplicate hits.
    fn build_subset(shards: &[Arc<Shard>], subset: &[usize]) -> RouteIndex {
        let mut seen = vec![false; shards.len()];
        let mut entries: Vec<(u32, Aabb)> = subset
            .iter()
            .filter(|&&i| i < shards.len() && !std::mem::replace(&mut seen[i], true))
            .map(|&i| (i, &shards[i]))
            .filter(|(_, s)| !s.quarantined && s.aabb.min.x <= s.aabb.max.x)
            .map(|(i, s)| (i as u32, s.aabb))
            .collect();
        RouteIndex::from_entries(&mut entries)
    }

    fn from_entries(entries: &mut [(u32, Aabb)]) -> RouteIndex {
        let mut nodes = Vec::with_capacity(entries.len().saturating_mul(2));
        if !entries.is_empty() {
            build_route_nodes(entries, &mut nodes);
        }
        RouteIndex { nodes }
    }

    /// Calls `f` for every shard whose box the query ball intersects —
    /// exactly the set the linear scan accepts, in preorder.
    fn for_each_hit(&self, query: Point3, r_sq: f32, mut f: impl FnMut(usize)) {
        let mut i = 0usize;
        while let Some(n) = self.nodes.get(i) {
            if n.aabb.intersects_ball(query, r_sq) {
                if n.shard != u32::MAX {
                    f(n.shard as usize);
                }
                i += 1;
            } else {
                i = n.skip as usize;
            }
        }
    }
}

/// Longest-processing-time assignment of the healthy shards to
/// `workers` bins: shards sorted by observed cost descending, each
/// placed in the currently lightest bin. Cost is the same signal the
/// adaptive policy splits on — cumulative nodes visited plus points
/// inspected — falling back to the shard's point count before any load
/// has been recorded (a capacity prior), so a cold router still gets a
/// sensible partition. Empty bins are dropped (fewer healthy shards
/// than workers).
fn balance_shards_by_load(shards: &[Arc<Shard>], workers: usize) -> Vec<Vec<usize>> {
    let mut cost: Vec<(u64, usize)> = shards
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.quarantined && s.aabb.min.x <= s.aabb.max.x)
        .map(|(i, s)| {
            let l = s.load.sample();
            let observed = l.nodes_visited + l.points_inspected;
            let c = if observed > 0 {
                observed
            } else {
                s.global.len() as u64
            };
            (c.max(1), i)
        })
        .collect();
    cost.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut totals = vec![0u64; workers];
    for (c, i) in cost {
        let w = (0..workers).min_by_key(|&w| totals[w]).unwrap_or(0);
        totals[w] += c;
        bins[w].push(i);
    }
    bins.retain(|b| !b.is_empty());
    bins
}

/// Recursive preorder build: union box, median split of the entries by
/// box center along the union's widest axis. `entries` is never empty.
fn build_route_nodes(entries: &mut [(u32, Aabb)], nodes: &mut Vec<RouteNode>) {
    let aabb = entries[1..]
        .iter()
        .fold(entries[0].1, |acc, (_, b)| acc.union(b));
    let me = nodes.len();
    nodes.push(RouteNode {
        aabb,
        skip: 0,
        shard: if entries.len() == 1 {
            entries[0].0
        } else {
            u32::MAX
        },
    });
    if entries.len() > 1 {
        let axis = aabb.widest_axis();
        let mid = entries.len() / 2;
        entries.select_nth_unstable_by(mid, |a, b| {
            a.1.center()[axis].total_cmp(&b.1.center()[axis])
        });
        let (lo, hi) = entries.split_at_mut(mid);
        build_route_nodes(lo, nodes);
        build_route_nodes(hi, nodes);
    }
    nodes[me].skip = nodes.len() as u32;
}

/// The routed per-query kernel shared by [`ShardRouter`] and
/// [`RouterSnapshot`]: searches every healthy intersecting shard,
/// re-indexes its hits to global indices, sorts the query's merged hits
/// into canonical ascending-index order.
#[allow(clippy::too_many_arguments)] // the flattened router state
fn append_routed(
    shards: &[Arc<Shard>],
    lut: &PartErrorMem,
    routes: Option<&RouteIndex>,
    query: Point3,
    radius: f32,
    scratch: &mut SearchScratch,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
) {
    // Same up-front rejection as the traversal layer, so a
    // degenerate radius or a non-finite query center skips even the
    // AABB walk. Without the center guard the router could diverge
    // from the single-tree engine: `Aabb::intersects_ball` with a
    // NaN center is false for every box (no shard searched), while
    // an ∞ center makes the distance arithmetic produce NaN
    // (∞ − ∞) for boxes that "contain" the coordinate.
    if !bonsai_kdtree::radius_is_searchable(radius) || !bonsai_kdtree::query_is_searchable(query) {
        return;
    }
    let r_sq = radius * radius;
    let start = out.len();
    let mut search_shard = |shard: &Shard| {
        let before = out.len();
        let nodes_before = stats.nodes_visited;
        let points_before = stats.points_inspected;
        append_hits(
            shard.tree.kd(),
            shard.tree.bonsai(),
            lut,
            query,
            radius,
            scratch,
            out,
            stats,
        );
        // Charge the traversal effort to the shard's identity-shared
        // load accumulator (relaxed atomics; a statistic, not a
        // synchronization edge) — the signal `adapt_step` rebalances on.
        shard.load.record(
            stats.nodes_visited - nodes_before,
            stats.points_inspected - points_before,
        );
        for n in &mut out[before..] {
            n.index = shard.global[n.index as usize];
        }
    };
    match routes {
        // Batched and snapshot-serving paths: the prebuilt route BVH
        // accepts exactly the shards the scan below would.
        Some(routes) => routes.for_each_hit(query, r_sq, |i| search_shard(&shards[i])),
        None => {
            for shard in shards {
                // Quarantined shards are skipped outright: their trees
                // are suspect, coverage() reports the offline region.
                if shard.quarantined || !shard.aabb.intersects_ball(query, r_sq) {
                    continue;
                }
                search_shard(shard);
            }
        }
    }
    // Global indices are unique, so the sort key is total and the
    // canonical order is independent of the shard layout.
    out[start..].sort_unstable_by_key(|n| n.index);
}

/// The typed-error gate of the `try_` search variants: `Err` exactly
/// when the shard set is non-empty and wholly quarantined — the one
/// state where a plain search's empty answer would be silently wrong
/// rather than authoritative.
fn coverage_gate(shards: &[Arc<Shard>]) -> Result<(), QueryError> {
    if !shards.is_empty() && shards.iter().all(|s| s.quarantined) {
        return Err(QueryError::NoCoverage {
            offline: shards.iter().map(|s| s.aabb).collect(),
        });
    }
    Ok(())
}

/// Deterministic fault-injection hooks for the chaos test suite: each
/// corrupts live router state in a way the audit is contracted to
/// catch, returning the shard attributed (or `None` when the router
/// offers no applicable site). Never compiled into default builds.
#[cfg(feature = "chaos")]
impl ShardRouter {
    /// Tries the per-tree fault on each healthy shard (starting from a
    /// seeded pick) until one applies.
    fn chaos_try(
        &mut self,
        rng: &mut bonsai_kdtree::ChaosRng,
        mut f: impl FnMut(&mut ShardTree, &mut bonsai_kdtree::ChaosRng) -> bool,
    ) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.shards.len())
            .filter(|&i| !self.shards[i].quarantined)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let start = rng.below(candidates.len());
        for k in 0..candidates.len() {
            let si = candidates[(start + k) % candidates.len()];
            // lint: allow(cow-discipline) — seeded fault injection
            // deliberately mutates a live tree to plant corruption;
            // bypassing the dirty gate is the point of the exercise.
            if f(&mut Arc::make_mut(&mut self.shards[si]).tree, rng) {
                return Some(si);
            }
        }
        None
    }

    /// Duplicates a `vind` entry inside one shard tree's leaf.
    pub fn chaos_duplicate_vind(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> Option<usize> {
        self.chaos_try(rng, |t, rng| match t {
            ShardTree::Baseline(k) => k.chaos_duplicate_vind(rng),
            ShardTree::Bonsai(b) => b.chaos_duplicate_vind(rng),
        })
    }

    /// Skews one interior divider past its split value.
    pub fn chaos_skew_divider(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> Option<usize> {
        self.chaos_try(rng, |t, rng| match t {
            ShardTree::Baseline(k) => k.chaos_skew_divider(rng),
            ShardTree::Bonsai(b) => b.chaos_skew_divider(rng),
        })
    }

    /// Skews one shard tree's garbage-slot counter.
    pub fn chaos_skew_garbage(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> Option<usize> {
        self.chaos_try(rng, |t, rng| match t {
            ShardTree::Baseline(k) => k.chaos_skew_garbage(rng),
            ShardTree::Bonsai(b) => b.chaos_skew_garbage(rng),
        })
    }

    /// Flips one f16-approximate row bit (Bonsai shards only).
    pub fn chaos_flip_f16(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> Option<usize> {
        self.chaos_try(rng, |t, rng| match t {
            ShardTree::Baseline(_) => false,
            ShardTree::Bonsai(b) => b.chaos_flip_f16(rng),
        })
    }

    /// Redirects one compressed-directory reference past its byte
    /// array (Bonsai shards only).
    pub fn chaos_truncate_directory(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> Option<usize> {
        self.chaos_try(rng, |t, rng| match t {
            ShardTree::Baseline(_) => false,
            ShardTree::Bonsai(b) => b.chaos_truncate_directory(rng),
        })
    }

    /// Breaks one global→(shard, local) directory entry: a mapped
    /// global routed to a healthy shard gets a local index no shard
    /// slot can hold.
    pub fn chaos_break_directory(&mut self, rng: &mut bonsai_kdtree::ChaosRng) -> Option<usize> {
        let candidates: Vec<usize> = self
            .locs
            .iter()
            .enumerate()
            .filter(|(_, loc)| {
                loc.shard != PointLoc::GONE.shard
                    && (loc.shard as usize) < self.shards.len()
                    && !self.shards[loc.shard as usize].quarantined
            })
            .map(|(g, _)| g)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let g = candidates[rng.below(candidates.len())];
        let si = self.locs[g].shard as usize;
        self.locs[g].local = u32::MAX - 1;
        Some(si)
    }
}

/// Median-cut spatial partition: repeatedly splits the most populous
/// part at the median of its bounding box's widest axis until `k`
/// non-empty parts exist (or every part is a single point). Each part's
/// global indices are returned sorted ascending, and the parts
/// themselves ordered by their smallest index, so the layout is
/// deterministic.
fn median_cut(points: &[Point3], k: usize) -> Vec<Vec<u32>> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut parts: Vec<Vec<u32>> = vec![(0..points.len() as u32).collect()];
    while parts.len() < k {
        let (widest, _) = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            // lint: allow(panic-free-serving) — `parts` starts with
            // one partition and only ever splits; it is never empty.
            .expect("parts is non-empty");
        if parts[widest].len() < 2 {
            break; // Only single-point parts remain.
        }
        let mut part = parts.swap_remove(widest);
        // lint: allow(panic-free-serving) — the split-candidate part
        // was just checked to hold ≥ 2 points, so its box exists.
        let bbox =
            Aabb::from_points(part.iter().map(|&i| points[i as usize])).expect("non-empty part");
        let axis = bbox.widest_axis();
        let mid = part.len() / 2;
        part.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        let right = part.split_off(mid);
        parts.push(part);
        parts.push(right);
    }
    for p in &mut parts {
        p.sort_unstable();
    }
    parts.sort_unstable_by_key(|p| p[0]);
    parts
}

/// Builds one shard's tree (and, under Bonsai, its compressed
/// directory) from its owned point set.
fn build_shard(global: Vec<u32>, pts: Vec<Point3>, cfg: KdTreeConfig, mode: EngineMode) -> Shard {
    build_shard_threaded(global, pts, cfg, mode, 1)
}

/// [`build_shard`] with `inner_threads` workers fanning the top levels
/// of the single shard's build recursion (the dinotree idiom; the
/// resulting tree is identical to the sequential build's). Used when
/// the router has fewer shards than threads — e.g. a one-shard
/// streaming index on a many-core box.
fn build_shard_threaded(
    global: Vec<u32>,
    pts: Vec<Point3>,
    cfg: KdTreeConfig,
    mode: EngineMode,
    inner_threads: usize,
) -> Shard {
    // lint: allow(panic-free-serving) — the median cut never emits an
    // empty shard, so the bounding box always exists.
    let aabb = Aabb::from_points(pts.iter().copied()).expect("shards are non-empty");
    let tree = if inner_threads > 1 {
        match mode {
            EngineMode::Baseline => {
                ShardTree::Baseline(KdTree::build_parallel(pts, cfg, inner_threads))
            }
            EngineMode::Compressed => {
                ShardTree::Bonsai(BonsaiTree::build_parallel(pts, cfg, inner_threads))
            }
        }
    } else {
        let mut sim = SimEngine::disabled();
        match mode {
            EngineMode::Baseline => ShardTree::Baseline(KdTree::build(pts, cfg, &mut sim)),
            EngineMode::Compressed => ShardTree::Bonsai(BonsaiTree::build(pts, cfg, &mut sim)),
        }
    };
    Shard {
        aabb,
        global,
        tree,
        quarantined: false,
        pending_deletes: Vec::new(),
        load: Arc::new(ShardLoad::default()),
    }
}

/// Builds every shard, fanning out over scoped threads when the
/// `parallel` feature is enabled and more than one thread is requested.
#[cfg(feature = "parallel")]
fn build_shards(
    inputs: Vec<(Vec<u32>, Vec<Point3>)>,
    cfg: KdTreeConfig,
    mode: EngineMode,
    threads: usize,
) -> Vec<Shard> {
    let requested = crate::fanout::requested_threads(threads);
    let threads = crate::fanout::resolve_threads(threads, inputs.len());
    if threads == 1 {
        // Fewer shards than workers: give each shard's own build
        // recursion the leftover parallelism (subtree fan-out).
        let inner = (requested / inputs.len().max(1)).max(1);
        return inputs
            .into_iter()
            .map(|(global, pts)| build_shard_threaded(global, pts, cfg, mode, inner))
            .collect();
    }
    let chunk = inputs.len().div_ceil(threads);
    let mut chunks: Vec<Vec<(Vec<u32>, Vec<Point3>)>> = Vec::with_capacity(threads);
    let mut iter = inputs.into_iter();
    loop {
        let c: Vec<_> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    // Workers beyond one-per-shard go into each shard's own build
    // recursion (e.g. 2 shards on an 8-core box: 2 workers × 4 inner
    // threads instead of 6 idle cores).
    let inner = (requested / threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || -> Vec<Shard> {
                    c.into_iter()
                        .map(|(global, pts)| build_shard_threaded(global, pts, cfg, mode, inner))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(panic-free-serving) — join() only fails when
            // the worker itself panicked; re-raising that panic is the
            // correct propagation, not an input condition.
            .flat_map(|h| h.join().expect("shard build worker panicked"))
            .collect()
    })
}

#[cfg(not(feature = "parallel"))]
fn build_shards(
    inputs: Vec<(Vec<u32>, Vec<Point3>)>,
    cfg: KdTreeConfig,
    mode: EngineMode,
    _threads: usize,
) -> Vec<Shard> {
    inputs
        .into_iter()
        .map(|(global, pts)| build_shard(global, pts, cfg, mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::find_best_split_plane;
    use crate::RadiusSearchEngine;

    fn urban_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                let cluster = (next() * 12.0).floor();
                Point3::new(
                    (cluster - 6.0) * 15.0 + next() * 3.0,
                    (next() - 0.5) * 60.0,
                    next() * 2.5,
                )
            })
            .collect()
    }

    fn sorted(mut hits: Vec<Neighbor>) -> Vec<Neighbor> {
        hits.sort_unstable_by_key(|n| n.index);
        hits
    }

    #[test]
    fn median_cut_partitions_every_point_once() {
        let cloud = urban_cloud(1000, 1);
        for k in [1, 2, 3, 7, 16] {
            let parts = median_cut(&cloud, k);
            assert_eq!(parts.len(), k);
            let mut seen = vec![false; cloud.len()];
            for p in &parts {
                assert!(!p.is_empty());
                for &i in p {
                    assert!(!seen[i as usize], "point {i} in two shards");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            // Median splits keep shards balanced within 2×.
            let min = parts.iter().map(Vec::len).min().unwrap();
            let max = parts.iter().map(Vec::len).max().unwrap();
            assert!(max <= 2 * min, "k {k}: {min}..{max}");
        }
    }

    #[test]
    fn more_shards_than_points_caps_at_one_point_each() {
        let cloud = urban_cloud(5, 2);
        let parts = median_cut(&cloud, 64);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn empty_cloud_builds_an_empty_router() {
        let router = ShardRouter::bonsai(&[], KdTreeConfig::default(), ShardConfig::with_shards(4));
        assert_eq!(router.num_shards(), 0);
        let mut batch = QueryBatch::new();
        router.search_batch(&[Point3::ZERO], 1.0, &mut batch);
        assert_eq!(batch.num_queries(), 1);
        assert_eq!(batch.total_matches(), 0);
    }

    #[test]
    fn router_matches_single_tree_engine_values() {
        let cloud = urban_cloud(3000, 3);
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);
        let router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(6));
        let queries: Vec<Point3> = cloud.iter().step_by(17).copied().collect();

        let mut single = QueryBatch::new();
        engine.search_batch(&queries, 1.2, &mut single);
        let mut sharded = QueryBatch::new();
        router.search_batch(&queries, 1.2, &mut sharded);

        assert_eq!(sharded.num_queries(), single.num_queries());
        for i in 0..single.num_queries() {
            assert_eq!(
                sharded.results(i),
                &sorted(single.results(i).to_vec())[..],
                "query {i}"
            );
        }
    }

    #[test]
    fn degenerate_radii_are_empty_through_the_router() {
        let cloud = urban_cloud(500, 4);
        let router = ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::default());
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(cloud[0], 1.0, &mut scratch, &mut out, &mut stats);
        assert!(!out.is_empty());
        for r in [0.0f32, -1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut stats = SearchStats::default();
            router.search_one(cloud[0], r, &mut scratch, &mut out, &mut stats);
            assert!(out.is_empty(), "radius {r}");
            assert_eq!(stats, SearchStats::default(), "radius {r}");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_router_batch_is_identical_to_sequential() {
        let cloud = urban_cloud(2000, 9);
        let router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(5));
        let mut sequential = QueryBatch::new();
        router.search_batch(&cloud, 0.9, &mut sequential);
        for threads in [0, 1, 2, 3, 7] {
            let mut parallel = QueryBatch::new();
            router.search_batch_parallel(&cloud, 0.9, &mut parallel, threads);
            assert_eq!(parallel.num_queries(), sequential.num_queries());
            for i in 0..sequential.num_queries() {
                assert_eq!(
                    parallel.results(i),
                    sequential.results(i),
                    "threads {threads} query {i}"
                );
            }
            assert_eq!(parallel.stats(), sequential.stats(), "threads {threads}");
        }
    }

    /// The shard-partitioned parallel path must stay bit-identical to
    /// the sequential batch — values, order, and aggregate stats — for
    /// every worker count, on a load-skewed, partially quarantined,
    /// policy-adapted topology (the states the LPT assignment and the
    /// per-worker subset route index must handle).
    #[cfg(feature = "parallel")]
    #[test]
    fn shard_parallel_batch_is_identical_to_sequential() {
        let cloud = urban_cloud(3000, 13);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(5));
        // Skew the load so the LPT balancer sees uneven costs and the
        // policy splits at least one hot shard.
        let hot: Vec<Point3> = cloud.iter().copied().take(200).collect();
        let policy = ShardPolicy {
            min_split_points: 64,
            min_queries: 16.0,
            max_shards: 12,
            ..ShardPolicy::default()
        };
        let mut batch = QueryBatch::new();
        for _ in 0..8 {
            router.search_batch(&hot, 1.0, &mut batch);
            router.adapt_step(&policy, 0);
        }
        router.quarantine(1);
        let mut sequential = QueryBatch::new();
        router.search_batch(&cloud, 0.9, &mut sequential);
        for threads in [0, 1, 2, 3, 7, 64] {
            let mut parallel = QueryBatch::new();
            router.search_batch_shard_parallel(&cloud, 0.9, &mut parallel, threads);
            assert_eq!(parallel.num_queries(), sequential.num_queries());
            for i in 0..sequential.num_queries() {
                assert_eq!(
                    parallel.results(i),
                    sequential.results(i),
                    "threads {threads} query {i}"
                );
            }
            assert_eq!(parallel.stats(), sequential.stats(), "threads {threads}");
        }
        // Degenerate inputs short-circuit identically.
        let mut empty = QueryBatch::new();
        router.search_batch_shard_parallel(&[], 0.9, &mut empty, 4);
        assert_eq!(empty.num_queries(), 0);
        router.search_batch_shard_parallel(&cloud[..16], f32::NAN, &mut empty, 4);
        assert_eq!(empty.num_queries(), 16);
        assert_eq!(empty.total_matches(), 0);

        // The public shard-per-worker surface: the partition covers
        // every healthy shard exactly once, and concatenating the
        // slices' per-query hits re-sorted by global index reproduces
        // the sequential batch bit for bit.
        let partition = router.worker_partition(3);
        assert!(partition.len() <= 3 && partition.iter().all(|b| !b.is_empty()));
        let mut owned: Vec<usize> = partition.iter().flatten().copied().collect();
        owned.sort_unstable();
        owned.dedup();
        let healthy = (0..router.num_shards())
            .filter(|&s| s != 1 && !router.shard_points(s).is_empty())
            .count();
        assert_eq!(
            owned.len(),
            partition.iter().map(Vec::len).sum::<usize>(),
            "a shard was assigned twice"
        );
        assert_eq!(owned.len(), healthy, "a healthy shard went unassigned");
        let slices: Vec<QueryBatch> = partition
            .iter()
            .map(|own| {
                let mut b = QueryBatch::new();
                router.search_batch_shards(&cloud, 0.9, &mut b, own);
                b
            })
            .collect();
        for i in 0..sequential.num_queries() {
            let mut merged: Vec<Neighbor> = slices
                .iter()
                .flat_map(|b| b.results(i).iter().copied())
                .collect();
            merged.sort_unstable_by_key(|n| n.index);
            assert_eq!(&merged[..], sequential.results(i), "slice union, query {i}");
        }
        // A stale subset (out-of-range, duplicates) neither panics nor
        // double-counts.
        let mut stale = QueryBatch::new();
        router.search_batch_shards(&cloud[..64], 0.9, &mut stale, &[0, 0, 999]);
        let mut clean = QueryBatch::new();
        router.search_batch_shards(&cloud[..64], 0.9, &mut clean, &[0]);
        for i in 0..64 {
            assert_eq!(
                stale.results(i),
                clean.results(i),
                "stale subset, query {i}"
            );
        }
    }

    /// Routed incremental updates must keep the router bit-identical to
    /// a fresh single-tree engine over the live points.
    #[test]
    fn routed_updates_match_fresh_single_tree() {
        let cloud = urban_cloud(2000, 21);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(5));
        let added = urban_cloud(250, 22);
        let removed: Vec<u32> = (0..250u32).map(|i| i * 13 % 2000).collect();
        let inserted = router.apply_update(&added, &removed);
        assert_eq!(inserted.len(), 250);
        assert_eq!(router.num_points(), 2000 - removed.len() + 250);

        // The live global cloud, by ascending global index.
        let mut live: Vec<(u32, Point3)> = Vec::new();
        for (si, shard) in router.shards.iter().enumerate() {
            for (local, &global) in shard.global.iter().enumerate() {
                if shard.tree.kd().is_live(local as u32) {
                    let p = shard.tree.kd().points()[local];
                    live.push((global, p));
                    assert_eq!(router.locs[global as usize].shard, si as u32);
                }
            }
        }
        live.sort_unstable_by_key(|&(g, _)| g);
        assert_eq!(live.len(), router.num_points());
        let live_pts: Vec<Point3> = live.iter().map(|&(_, p)| p).collect();
        let mut sim = SimEngine::disabled();
        let fresh = BonsaiTree::build(live_pts, KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&fresh);

        let mut scratch = SearchScratch::new();
        let mut got = Vec::new();
        let mut expect = Vec::new();
        for (qi, q) in urban_cloud(30, 23).into_iter().enumerate() {
            let mut stats = SearchStats::default();
            router.search_one(q, 1.4, &mut scratch, &mut got, &mut stats);
            let mut fresh_stats = SearchStats::default();
            engine.search_one(q, 1.4, &mut scratch, &mut expect, &mut fresh_stats);
            let remapped = sorted(
                expect
                    .iter()
                    .map(|n| Neighbor {
                        index: live[n.index as usize].0,
                        dist_sq: n.dist_sq,
                    })
                    .collect(),
            );
            assert_eq!(got, remapped, "query {qi}");
        }
    }

    /// An insert outside every shard box grows the nearest shard's box
    /// so query routing keeps finding the point.
    #[test]
    fn out_of_bounds_insert_grows_a_shard_box() {
        let cloud = urban_cloud(600, 25);
        let mut router =
            ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let far = Point3::new(500.0, 500.0, 50.0);
        assert!(router.shard_bounds().all(|b| !b.intersects_ball(far, 0.01)));
        let idx = router.insert(far).unwrap();
        router.commit();
        assert!(router.shard_bounds().any(|b| b.intersects_ball(far, 0.0)));
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(far, 1.0, &mut scratch, &mut out, &mut stats);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, idx);
    }

    /// Inserting into an empty router bootstraps a shard; non-finite
    /// inserts and dead deletes stay rejected.
    #[test]
    fn empty_router_bootstraps_and_guards_degenerate_mutations() {
        let mut router =
            ShardRouter::bonsai(&[], KdTreeConfig::default(), ShardConfig::with_shards(4));
        assert!(router.insert(Point3::new(f32::NAN, 0.0, 0.0)).is_none());
        assert!(!router.delete(0), "delete on an empty router");
        let idx = router.insert(Point3::new(1.0, 2.0, 3.0)).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(router.num_shards(), 1);
        router.commit();
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(
            Point3::new(1.0, 2.0, 3.0),
            0.5,
            &mut scratch,
            &mut out,
            &mut stats,
        );
        assert_eq!(out.len(), 1);
        assert!(router.delete(idx));
        assert!(!router.delete(idx), "double delete");
        assert_eq!(router.num_points(), 0);
    }

    /// Regression (query-center guard): a NaN center must be empty with
    /// zero stats — before the guard `intersects_ball` was false for
    /// every box under NaN (silently empty by accident) while an ∞
    /// center made the box distance arithmetic produce NaN, so the
    /// router's behavior was undefined relative to the single-tree
    /// engine's.
    #[test]
    fn non_finite_query_centers_are_empty_through_the_router() {
        let cloud = urban_cloud(600, 6);
        let router = ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::default());
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        for q in [
            Point3::new(f32::NAN, 0.0, 0.0),
            Point3::new(0.0, f32::INFINITY, 0.0),
            Point3::new(0.0, 0.0, f32::NEG_INFINITY),
        ] {
            let mut stats = SearchStats::default();
            router.search_one(q, 1.0, &mut scratch, &mut out, &mut stats);
            assert!(out.is_empty(), "query {q:?}");
            assert_eq!(stats, SearchStats::default(), "query {q:?} did work");
        }
        let mut batch = QueryBatch::new();
        router.search_batch(&[Point3::new(f32::NAN, 0.0, 0.0)], 1.0, &mut batch);
        assert_eq!(batch.num_queries(), 1);
        assert_eq!(batch.total_matches(), 0);
        assert_eq!(*batch.stats(), SearchStats::default());
    }

    /// The satellite pinning test: deletes leave shard boxes over-grown
    /// (queries in the emptied region still pay traversal work), and a
    /// rolling rebuild re-tightens them back to the rebuilt-router
    /// baseline — here, a region whose points are all gone routes **no**
    /// work at all afterwards.
    #[test]
    fn rebuild_retightens_overgrown_shard_boxes() {
        // Two well-separated blobs → 2 shards, one per blob.
        let mut cloud: Vec<Point3> = (0..400)
            .map(|i| Point3::new((i % 20) as f32 * 0.1, (i / 20) as f32 * 0.1, 1.0))
            .collect();
        let far_base = cloud.len() as u32;
        cloud.extend(
            (0..400)
                .map(|i| Point3::new(500.0 + (i % 20) as f32 * 0.1, (i / 20) as f32 * 0.1, 1.0)),
        );
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(2));
        let probe = Point3::new(500.5, 0.5, 1.0);

        // Delete the whole far blob.
        for g in far_base..far_base + 400 {
            assert!(router.delete(g));
        }
        router.commit();
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stale_stats = SearchStats::default();
        router.search_one(probe, 0.5, &mut scratch, &mut out, &mut stale_stats);
        assert!(out.is_empty());
        assert!(
            stale_stats.nodes_visited > 0,
            "the over-grown box should still route the probe into the emptied shard"
        );

        // Rolling rebuild over every shard re-tightens the boxes.
        for i in 0..router.num_shards() {
            router.rebuild_shard(i);
        }
        let mut tight_stats = SearchStats::default();
        router.search_one(probe, 0.5, &mut scratch, &mut out, &mut tight_stats);
        assert!(out.is_empty());
        assert_eq!(
            tight_stats,
            SearchStats::default(),
            "after re-tightening, the emptied region routes no work — the rebuilt-router baseline"
        );

        // Near-blob queries still answer identically, and the emptied
        // shard revives on insert.
        let near = cloud[30];
        let mut stats = SearchStats::default();
        router.search_one(near, 0.3, &mut scratch, &mut out, &mut stats);
        assert!(out.iter().any(|n| n.index == 30));
        let idx = router.insert(probe).unwrap();
        router.commit();
        router.search_one(probe, 0.1, &mut scratch, &mut out, &mut stats);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, idx);
    }

    /// Rolling rebuilds keep results bit-identical, reclaim dead
    /// points + garbage slots, and keep later mutations safe (a dead
    /// global must not resolve to a recycled local slot).
    #[test]
    fn rebuild_shard_preserves_results_and_guards_dead_globals() {
        let cloud = urban_cloud(2000, 31);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let added = urban_cloud(300, 32);
        let removed: Vec<u32> = (0..300u32).map(|i| i * 11 % 2000).collect();
        router.apply_update(&added, &removed);

        let queries: Vec<Point3> = cloud.iter().step_by(37).copied().collect();
        let mut before = QueryBatch::new();
        router.search_batch(&queries, 1.3, &mut before);
        let bytes_before = router.resident_bytes();

        for i in 0..router.num_shards() {
            router.rebuild_shard(i);
        }
        assert_eq!(router.garbage_slots(), 0, "rebuilds drop garbage slots");
        assert!(
            router.resident_bytes() < bytes_before,
            "rebuilds reclaim dead-point storage"
        );
        let mut after = QueryBatch::new();
        router.search_batch(&queries, 1.3, &mut after);
        for i in 0..before.num_queries() {
            assert_eq!(after.results(i), before.results(i), "query {i} moved");
        }

        // Dead globals stay dead (their reclaimed local slots now name
        // other live points — deleting them again must be a no-op)…
        for &g in removed.iter().take(50) {
            assert!(!router.delete(g), "dead global {g} deleted twice");
        }
        // …and live globals keep routing.
        let live_probe = (0..2000u32).find(|g| !removed.contains(g)).unwrap();
        assert!(router.delete(live_probe));
        assert!(!router.delete(live_probe));
        router.commit();
    }

    /// An emptied-and-rebuilt shard (inverted box, infinitely far from
    /// everything under distance routing) must be revived by the next
    /// out-of-box insert instead of a populated shard's box stretching
    /// across the emptied region — otherwise the over-broad routing the
    /// re-tightening fixed would silently come back, permanently.
    #[test]
    fn out_of_box_inserts_revive_emptied_shards() {
        let mut cloud: Vec<Point3> = (0..300)
            .map(|i| Point3::new((i % 20) as f32 * 0.1, (i / 20) as f32 * 0.1, 1.0))
            .collect();
        let far_base = cloud.len() as u32;
        cloud.extend(
            (0..300)
                .map(|i| Point3::new(500.0 + (i % 20) as f32 * 0.1, (i / 20) as f32 * 0.1, 1.0)),
        );
        let mut router =
            ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(2));
        for g in far_base..far_base + 300 {
            assert!(router.delete(g));
        }
        router.commit();
        router.rebuild_shard(1); // the far shard empties
        assert_eq!(router.shard_sizes().nth(1), Some(0));

        // The stream resumes in the far region: the emptied shard must
        // take the inserts, and the near shard's box must stay tight.
        let near_box_before = router.shard_bounds().next().unwrap();
        let p = Point3::new(500.5, 0.5, 1.0);
        let idx = router.insert(p).unwrap();
        router.commit();
        assert_eq!(
            router.shard_sizes().nth(1),
            Some(1),
            "insert did not revive the emptied shard"
        );
        assert_eq!(
            router.shard_bounds().next().unwrap(),
            near_box_before,
            "near shard's box stretched across the emptied region"
        );
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(p, 0.5, &mut scratch, &mut out, &mut stats);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, idx);
        // An in-box insert still routes to its covering shard, not the
        // (now single-point) revived one.
        let covered = cloud[30];
        router.insert(covered).unwrap();
        router.commit();
        assert_eq!(router.shard_sizes().next(), Some(301));
    }

    /// The round-robin policy only pays when a shard's waste crosses
    /// the threshold, and one call never rebuilds more than one shard.
    #[test]
    fn compact_next_is_criterion_triggered_and_amortized() {
        let cloud = urban_cloud(1600, 41);
        let mut router =
            ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let policy = CompactionPolicy::default();
        // Fresh router: a full round of checks rebuilds nothing.
        for _ in 0..router.num_shards() {
            assert_eq!(router.compact_next(&policy), None);
        }
        // Delete most points: every shard crosses the waste threshold;
        // each call rebuilds exactly one shard, round robin.
        for g in 0..1400u32 {
            router.delete(g);
        }
        router.commit();
        let mut rebuilt = Vec::new();
        for _ in 0..router.num_shards() {
            if let Some(i) = router.compact_next(&policy) {
                rebuilt.push(i);
            }
        }
        assert_eq!(
            rebuilt.len(),
            router.num_shards(),
            "all shards hollowed out"
        );
        let mut sorted_ids = rebuilt.clone();
        sorted_ids.sort_unstable();
        sorted_ids.dedup();
        assert_eq!(
            sorted_ids.len(),
            rebuilt.len(),
            "a shard rebuilt twice in one round"
        );
        // After the round, everything is clean again.
        for _ in 0..router.num_shards() {
            assert_eq!(router.compact_next(&policy), None);
        }
        // Never-compact policy never fires.
        let off = CompactionPolicy {
            garbage_ratio: f64::INFINITY,
            min_points: usize::MAX,
        };
        assert_eq!(router.compact_next(&off), None);
    }

    #[test]
    fn query_outside_every_shard_box_touches_nothing() {
        let cloud = urban_cloud(800, 5);
        let router =
            ShardRouter::baseline(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let far = Point3::new(1.0e6, 1.0e6, 1.0e6);
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        router.search_one(far, 1.0, &mut scratch, &mut out, &mut stats);
        assert!(out.is_empty());
        // No shard box intersects, so not even a root node is visited.
        assert_eq!(stats, SearchStats::default());
    }

    /// Regression: an all-quarantined router used to answer queries
    /// with a silent empty result — indistinguishable from "nothing in
    /// range" even though *zero* indexed space was searched. The `try_`
    /// accessors must surface that as the typed
    /// [`QueryError::NoCoverage`] instead.
    #[test]
    fn all_quarantined_router_is_a_typed_error_not_silent_empty() {
        let cloud = urban_cloud(900, 6);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(3));
        let probe = cloud[0];
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();

        // Healthy: try_ answers exactly like the plain search.
        router
            .try_search_one(probe, 1.0, &mut scratch, &mut out, &mut stats)
            .expect("healthy router serves");
        assert!(!out.is_empty());

        for s in 0..router.num_shards() {
            router.quarantine(s);
        }
        // The old serving surface: silently empty (kept for the
        // partial-quarantine case where skipping IS correct).
        router.search_one(probe, 1.0, &mut scratch, &mut out, &mut stats);
        assert!(out.is_empty());
        // The fixed surface: typed, with the offline regions attached.
        match router.try_search_one(probe, 1.0, &mut scratch, &mut out, &mut stats) {
            Err(QueryError::NoCoverage { offline }) => assert_eq!(offline.len(), 3),
            other => panic!("expected NoCoverage, got {other:?}"),
        }
        let mut batch = QueryBatch::new();
        match router.try_search_batch(&[probe, cloud[1]], 1.0, &mut batch) {
            Err(QueryError::NoCoverage { .. }) => {}
            other => panic!("expected NoCoverage, got {other:?}"),
        }
        assert_eq!(batch.num_queries(), 0, "failed batch must be left reset");

        // The same contract holds through a published snapshot.
        let snap = router.snapshot();
        match snap.try_search_one(probe, 1.0, &mut scratch, &mut out, &mut stats) {
            Err(QueryError::NoCoverage { offline }) => assert_eq!(offline.len(), 3),
            other => panic!("expected NoCoverage, got {other:?}"),
        }

        // Partial quarantine is coverage, not an error: one healed
        // shard serves again.
        let live: Vec<(u32, Point3)> = (0..100u32).map(|g| (g, cloud[g as usize])).collect();
        router.rebuild_shards_from(&[0], &live);
        router
            .try_search_one(probe, 1.0, &mut scratch, &mut out, &mut stats)
            .expect("partial coverage serves");
    }

    /// A snapshot is a point-in-time view: mutations after `snapshot()`
    /// must not leak into it (copy-on-write), and its answers must be
    /// bit-identical to the router as it stood at the snapshot.
    #[test]
    fn snapshot_is_immutable_under_router_mutation() {
        let cloud = urban_cloud(1200, 7);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let probe = cloud[42];
        let mut scratch = SearchScratch::new();

        let snap = router.snapshot();
        let mut frozen = Vec::new();
        let mut stats_a = SearchStats::default();
        snap.search_one(probe, 1.1, &mut scratch, &mut frozen, &mut stats_a);
        assert!(frozen.iter().any(|n| n.index == 42));
        assert_eq!(snap.num_points(), router.num_points());

        // Mutate the router hard: delete the probe's own point, insert
        // new ones, commit, rebuild a shard.
        assert!(router.delete(42));
        router.apply_update(&[Point3::new(9.0, 9.0, 9.0)], &[]);
        router.commit();
        router.rebuild_shard(1);

        // The live router no longer returns 42 …
        let mut live = Vec::new();
        let mut stats_b = SearchStats::default();
        router.search_one(probe, 1.1, &mut scratch, &mut live, &mut stats_b);
        assert!(live.iter().all(|n| n.index != 42));

        // … but the pinned snapshot still answers exactly as before,
        // values AND instrumentation.
        let mut again = Vec::new();
        let mut stats_c = SearchStats::default();
        snap.search_one(probe, 1.1, &mut scratch, &mut again, &mut stats_c);
        assert_eq!(frozen, again, "snapshot mutated under the reader");
        assert_eq!(stats_a, stats_c, "snapshot work changed under the reader");
    }

    /// Splits and merges are targeted rebuilds: results stay
    /// bit-identical to the single-tree engine, the audit web stays
    /// certified, slots are never removed, and a rebuilt-empty slot is
    /// reused by the next split.
    #[test]
    fn split_and_merge_preserve_results_and_the_directory() {
        let cloud = urban_cloud(2400, 31);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let queries: Vec<Point3> = cloud.iter().step_by(13).copied().collect();
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);
        let mut expect_batch = QueryBatch::new();
        engine.search_batch(&queries, 1.3, &mut expect_batch);
        let check = |router: &ShardRouter, label: &str| {
            let audit = router.audit();
            assert!(audit.is_empty(), "{label}: {audit:?}");
            let mut batch = QueryBatch::new();
            router.search_batch(&queries, 1.3, &mut batch);
            for i in 0..batch.num_queries() {
                assert_eq!(
                    batch.results(i),
                    &sorted(expect_batch.results(i).to_vec())[..],
                    "{label} query {i}"
                );
            }
        };
        check(&router, "before");

        // Split the most populous shard on its SAH plane.
        let big = (0..router.num_shards())
            .max_by_key(|&i| router.shard_points(i).len())
            .unwrap();
        let pts: Vec<Point3> = router
            .shard_points(big)
            .iter()
            .map(|&g| cloud[g as usize])
            .collect();
        let plane = find_best_split_plane(&pts, 16).expect("a populous shard splits");
        let sibling = router
            .split_shard(big, plane.axis, plane.position)
            .expect("split");
        assert_eq!(router.num_shards(), 5);
        assert!(!router.shard_points(big).is_empty());
        assert!(!router.shard_points(sibling).is_empty());
        check(&router, "after split");

        // Merge it back: the loser slot empties but is never removed.
        let kept = router.merge_shards(big, sibling).expect("merge");
        assert_eq!(kept, big.min(sibling));
        assert_eq!(router.num_shards(), 5, "slots are stable");
        let emptied = big.max(sibling);
        assert!(router.shard_points(emptied).is_empty());
        check(&router, "after merge");

        // A second split reuses the rebuilt-empty slot, not a new one.
        let pts: Vec<Point3> = router
            .shard_points(kept)
            .iter()
            .map(|&g| cloud[g as usize])
            .collect();
        let plane = find_best_split_plane(&pts, 16).expect("still splits");
        let sib2 = router
            .split_shard(kept, plane.axis, plane.position)
            .expect("resplit");
        assert_eq!(sib2, emptied, "rebuilt-empty slot must be reused");
        assert_eq!(router.num_shards(), 5);
        check(&router, "after resplit");

        // Typed refusals, all with zero state change.
        assert_eq!(
            router.split_shard(99, 0, 0.0),
            Err(RejectReason::OutOfRange { shard: 99 })
        );
        assert_eq!(
            router.split_shard(kept, 7, 0.0),
            Err(RejectReason::NoGain { shard: kept })
        );
        assert_eq!(
            router.split_shard(kept, 0, f32::NAN),
            Err(RejectReason::NoGain { shard: kept })
        );
        assert_eq!(
            router.split_shard(kept, 0, 1.0e9),
            Err(RejectReason::NoGain { shard: kept }),
            "a plane past every point leaves one side empty"
        );
        assert_eq!(
            router.merge_shards(kept, kept),
            Err(RejectReason::SameShard { shard: kept })
        );
        check(&router, "after refusals");
    }

    /// A split's rebuild retires the shard's dead globals to the
    /// generation-tagged free list, exactly like `rebuild_shard`.
    #[test]
    fn split_retires_dead_globals_for_recycling() {
        let cloud = urban_cloud(1200, 33);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(3));
        for g in 0..200u32 {
            router.delete(g);
        }
        router.commit();
        let before_live = router.num_points();
        for s in 0..3 {
            let pts: Vec<Point3> = {
                let kd = router.shards[s].tree.kd();
                (0..kd.points().len() as u32)
                    .filter(|&l| kd.is_live(l))
                    .map(|l| kd.points()[l as usize])
                    .collect()
            };
            if let Some(plane) = find_best_split_plane(&pts, 8) {
                router
                    .split_shard(s, plane.axis, plane.position)
                    .expect("split");
            }
        }
        assert_eq!(
            router.num_points(),
            before_live,
            "splits must not lose points"
        );
        let audit = router.audit();
        assert!(audit.is_empty(), "{audit:?}");
        // The dead band's globals were retired with a generation bump
        // and are recycled by the next insert.
        let g = router.insert(Point3::new(0.5, 0.5, 0.5)).unwrap();
        assert!(g < 200, "expected a recycled global, got fresh {g}");
        assert_eq!(router.generation(g), Some(1), "retirement bumps the tag");
    }

    /// Closed loop: hammering one neighborhood must drive `adapt_step`
    /// to split the hot shard, while results stay bit-identical to the
    /// single-tree engine and the decision log stays observable.
    #[test]
    fn adapt_step_splits_the_hot_shard_and_stays_exact() {
        let cloud = urban_cloud(4000, 35);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let policy = ShardPolicy {
            min_split_points: 64,
            min_queries: 16.0,
            max_shards: 16,
            ..ShardPolicy::default()
        };
        let ego = cloud[0];
        let hot_queries: Vec<Point3> = cloud
            .iter()
            .copied()
            .filter(|p| p.distance_squared(ego) < 64.0)
            .take(256)
            .collect();
        assert!(hot_queries.len() > 32, "seed produced too small a hot set");
        let mut batch = QueryBatch::new();
        let mut executed = 0u64;
        for _ in 0..12 {
            router.search_batch(&hot_queries, 1.0, &mut batch);
            let report = router.adapt_step(&policy, 0);
            executed += report.splits + report.merges;
        }
        let lr = router.load_report();
        assert!(lr.splits >= 1, "no split under heavy skew: {lr:?}");
        assert_eq!(lr.splits + lr.merges, executed);
        assert!(!lr.recent.is_empty(), "decisions must be logged");
        assert!(lr.shards.iter().any(|s| s.lifetime.queries > 0));
        let audit = router.audit();
        assert!(audit.is_empty(), "{audit:?}");

        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let engine = RadiusSearchEngine::bonsai(&tree);
        let queries: Vec<Point3> = cloud.iter().step_by(29).copied().collect();
        let mut single = QueryBatch::new();
        engine.search_batch(&queries, 1.2, &mut single);
        let mut routed = QueryBatch::new();
        router.search_batch(&queries, 1.2, &mut routed);
        for i in 0..single.num_queries() {
            assert_eq!(
                routed.results(i),
                &sorted(single.results(i).to_vec())[..],
                "query {i} diverged after adaptation"
            );
        }
    }

    /// A uniform query stream over an over-split fleet must walk the
    /// topology back down: a flat load profile earns nothing from a
    /// fine partition, while every populated shard taxes every routed
    /// query with one more box test.
    #[test]
    fn flat_profile_over_split_fleet_merges_back_down() {
        // A regular grid, not `urban_cloud`: the clustered cloud has
        // genuine hot spots, while this test needs per-shard work that
        // is actually flat.
        let mut cloud = Vec::with_capacity(16 * 16 * 16);
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    cloud.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        let mut router = ShardRouter::bonsai(
            &cloud,
            KdTreeConfig::default(),
            ShardConfig::with_shards(16),
        );
        // split_ratio is raised above the default: a freshly merged
        // shard inherits both halves' profiles (~2× the populated
        // mean), and decay noise around the default 2.0 threshold
        // could tip it into a spurious re-split.
        let policy = ShardPolicy {
            min_queries: 16.0,
            split_ratio: 3.0,
            flat_ratio: 2.0,
            flat_floor: 4,
            ..ShardPolicy::default()
        };
        let queries: Vec<Point3> = cloud.iter().step_by(17).copied().collect();
        let before_live = router.num_points();
        let mut batch = QueryBatch::new();
        let mut merges = 0u64;
        for _ in 0..20 {
            router.search_batch(&queries, 1.0, &mut batch);
            let report = router.adapt_step(&policy, 0);
            assert_eq!(report.splits, 0, "uniform load must never split");
            merges += report.merges;
        }
        assert!(merges >= 2, "flat profile over 16 shards must merge");
        let populated = router
            .load_report()
            .shards
            .iter()
            .filter(|s| s.points > 0)
            .count();
        assert!(
            populated >= policy.flat_floor.min(policy.min_shards.max(2)),
            "merging must respect the floors, populated {populated}"
        );
        assert!(
            populated < 16,
            "fleet must actually shrink, populated {populated}"
        );
        assert_eq!(
            router.num_points(),
            before_live,
            "merges must not lose points"
        );
        let audit = router.audit();
        assert!(audit.is_empty(), "{audit:?}");
    }

    /// The guard-fix satellite, as a regression test: a quarantined
    /// (heal-in-progress) shard is never chosen for a topology change,
    /// and neither is anything else while pinned readers lag beyond the
    /// policy's staleness bound — both land in the report as typed
    /// rejections, and the identical proposal executes once the guard
    /// clears.
    #[test]
    fn heal_in_progress_and_stale_pins_block_topology_changes() {
        let cloud = urban_cloud(3000, 37);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        // split_ratio is lowered so the hot shard stays decisively
        // above the populated-shard mean across the decay the blocked
        // steps cost it — this test exercises the guards, not the
        // hotness threshold.
        let policy = ShardPolicy {
            min_split_points: 64,
            min_queries: 16.0,
            split_ratio: 1.5,
            ..ShardPolicy::default()
        };
        let ego = cloud[0];
        let hot_queries: Vec<Point3> = cloud
            .iter()
            .copied()
            .filter(|p| p.distance_squared(ego) < 64.0)
            .take(128)
            .collect();
        let mut batch = QueryBatch::new();
        router.search_batch(&hot_queries, 1.0, &mut batch);

        // Identify the hot shard from the load report, then put it
        // into heal-in-progress state.
        let lr = router.load_report();
        let hot = (0..lr.shards.len())
            .max_by_key(|&i| {
                lr.shards[i].lifetime.nodes_visited + lr.shards[i].lifetime.points_inspected
            })
            .unwrap();
        router.quarantine(hot);
        assert_eq!(
            router.shard_is_adaptable(hot),
            Err(RejectReason::Quarantined { shard: hot })
        );

        let shards_before = router.num_shards();
        let report = router.adapt_step(&policy, 0);
        assert_eq!(report.splits, 0);
        assert_eq!(
            router.num_shards(),
            shards_before,
            "topology changed under quarantine"
        );
        assert!(
            report.decisions.iter().any(|d| matches!(
                d,
                AdaptDecision::Rejected {
                    reason: RejectReason::Quarantined { shard },
                    ..
                } if *shard == hot
            )),
            "missing the typed quarantine rejection: {report:?}"
        );

        // Direct attempts are refused identically, with no state change.
        assert_eq!(
            router.split_shard(hot, 0, 0.0),
            Err(RejectReason::Quarantined { shard: hot })
        );
        assert_eq!(
            router.merge_shards(hot, (hot + 1) % shards_before),
            Err(RejectReason::Quarantined { shard: hot })
        );

        // Heal the shard; now only stale pinned readers block topology.
        let live: Vec<(u32, Point3)> = router
            .shard_points(hot)
            .iter()
            .map(|&g| (g, cloud[g as usize]))
            .collect();
        router.rebuild_shards_from(&[hot], &live);
        assert!(router.shard_is_adaptable(hot).is_ok());
        router.search_batch(&hot_queries, 1.0, &mut batch);
        let report = router.adapt_step(&policy, policy.max_epoch_lag + 1);
        assert_eq!(report.splits + report.merges, 0);
        assert_eq!(router.num_shards(), shards_before);
        assert!(
            report.decisions.iter().any(|d| matches!(
                d,
                AdaptDecision::Rejected {
                    reason: RejectReason::StalePins { .. },
                    ..
                }
            )),
            "missing the typed staleness rejection: {report:?}"
        );

        // Readers caught up: the same proposal now executes.
        router.search_batch(&hot_queries, 1.0, &mut batch);
        let report = router.adapt_step(&policy, policy.max_epoch_lag);
        assert!(
            report.splits >= 1,
            "guarded proposal never executed: {report:?}"
        );
        let audit = router.audit();
        assert!(audit.is_empty(), "{audit:?}");
    }
}
