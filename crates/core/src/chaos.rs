//! Deterministic fault-injection harness (the `chaos` feature).
//!
//! A [`FaultPlan`] is reproducible from a single `u64` seed: the same
//! seed injects the same faults at the same sites, so a failing chaos
//! run is replayed by rerunning with the printed seed. Faults come in
//! two families:
//!
//! * **State faults** corrupt live serving structures between frames —
//!   f16 bit flips, scrambled leaf `vind` slots, truncated compressed
//!   directories, broken global→shard directory entries, skewed
//!   dividers and garbage counters. Each maps to the
//!   [`ViolationKind`] the audit is contracted to report for it
//!   ([`FaultKind::expected_violation`]).
//! * **Frame faults** mangle the *input* stream — dropped, duplicated
//!   or reordered frame points. These must be harmless: the serving
//!   stack's output over a mangled frame must equal a clean rebuild
//!   over the same mangled frame.

use bonsai_geom::Point3;
use bonsai_kdtree::{ChaosRng, ViolationKind};

use crate::shard::ShardRouter;

/// One injectable fault class, either corrupting live serving state
/// (audit-detectable) or mangling the input stream (provably
/// harmless); [`is_frame_fault`](FaultKind::is_frame_fault) gives the
/// split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip the low mantissa bit of one f16-approximate row.
    F16BitFlip,
    /// Duplicate one `vind` entry inside a leaf (breaking the
    /// slot ↔ point bijection).
    VindScramble,
    /// Redirect one compressed-directory reference past its byte array.
    DirectoryTruncate,
    /// Point one global→(shard, local) directory entry at a slot no
    /// shard holds.
    ShardDirectoryBreak,
    /// Skew one interior divider past its split value.
    DividerSkew,
    /// Skew one shard tree's garbage-slot counter.
    GarbageCounterSkew,
    /// Drop one point from the incoming frame.
    FrameDrop,
    /// Duplicate one point of the incoming frame.
    FrameDuplicate,
    /// Shuffle the incoming frame's point order.
    FrameReorder,
}

impl FaultKind {
    /// Every fault class.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::F16BitFlip,
        FaultKind::VindScramble,
        FaultKind::DirectoryTruncate,
        FaultKind::ShardDirectoryBreak,
        FaultKind::DividerSkew,
        FaultKind::GarbageCounterSkew,
        FaultKind::FrameDrop,
        FaultKind::FrameDuplicate,
        FaultKind::FrameReorder,
    ];

    /// The state-corrupting classes (each audit-detectable).
    pub const STATE: [FaultKind; 6] = [
        FaultKind::F16BitFlip,
        FaultKind::VindScramble,
        FaultKind::DirectoryTruncate,
        FaultKind::ShardDirectoryBreak,
        FaultKind::DividerSkew,
        FaultKind::GarbageCounterSkew,
    ];

    /// The input-mangling classes (each provably harmless).
    pub const FRAME: [FaultKind; 3] = [
        FaultKind::FrameDrop,
        FaultKind::FrameDuplicate,
        FaultKind::FrameReorder,
    ];

    /// Whether this class mangles the input stream instead of live
    /// state.
    pub fn is_frame_fault(self) -> bool {
        matches!(
            self,
            FaultKind::FrameDrop | FaultKind::FrameDuplicate | FaultKind::FrameReorder
        )
    }

    /// The violation class the audit is contracted to report after
    /// this fault lands (`None` for frame faults, which corrupt no
    /// state).
    pub fn expected_violation(self) -> Option<ViolationKind> {
        match self {
            FaultKind::F16BitFlip => Some(ViolationKind::F16Mismatch),
            FaultKind::VindScramble => Some(ViolationKind::SlotBijection),
            FaultKind::DirectoryTruncate => Some(ViolationKind::DirectoryBytes),
            FaultKind::ShardDirectoryBreak => Some(ViolationKind::ShardDirectory),
            FaultKind::DividerSkew => Some(ViolationKind::DividerOrder),
            FaultKind::GarbageCounterSkew => Some(ViolationKind::Accounting),
            FaultKind::FrameDrop | FaultKind::FrameDuplicate | FaultKind::FrameReorder => None,
        }
    }
}

/// A seeded, reproducible fault injector. All site choices come from
/// one [`ChaosRng`] stream, so a run is replayed exactly from its
/// seed.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rng: ChaosRng,
}

impl FaultPlan {
    /// A plan reproducible from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: ChaosRng::new(seed),
        }
    }

    /// The seed this plan replays from (print it in every failure
    /// message).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's random stream, for callers sequencing their own
    /// choices into the replayable stream.
    pub fn rng(&mut self) -> &mut ChaosRng {
        &mut self.rng
    }

    /// Picks one of `kinds`, advancing the seeded stream.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    pub fn pick(&mut self, kinds: &[FaultKind]) -> FaultKind {
        kinds[self.rng.below(kinds.len())]
    }

    /// Injects a state fault into the router, returning the attributed
    /// shard, or `None` when the router offers no applicable site (an
    /// empty router, or a baseline router for a compressed-layer
    /// fault).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a frame fault — those mangle input frames
    /// ([`mangle_frame`](FaultPlan::mangle_frame)), not router state.
    pub fn inject(&mut self, router: &mut ShardRouter, kind: FaultKind) -> Option<usize> {
        match kind {
            FaultKind::F16BitFlip => router.chaos_flip_f16(&mut self.rng),
            FaultKind::VindScramble => router.chaos_duplicate_vind(&mut self.rng),
            FaultKind::DirectoryTruncate => router.chaos_truncate_directory(&mut self.rng),
            FaultKind::ShardDirectoryBreak => router.chaos_break_directory(&mut self.rng),
            FaultKind::DividerSkew => router.chaos_skew_divider(&mut self.rng),
            FaultKind::GarbageCounterSkew => router.chaos_skew_garbage(&mut self.rng),
            FaultKind::FrameDrop | FaultKind::FrameDuplicate | FaultKind::FrameReorder => {
                panic!("{kind:?} mangles input frames, not router state")
            }
        }
    }

    /// Mangles an input frame in place (drop / duplicate / shuffle).
    /// State faults are rejected the same way
    /// [`inject`](FaultPlan::inject) rejects frame faults.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a state fault.
    pub fn mangle_frame(&mut self, kind: FaultKind, frame: &mut Vec<Point3>) {
        match kind {
            FaultKind::FrameDrop => {
                if !frame.is_empty() {
                    let i = self.rng.below(frame.len());
                    frame.remove(i);
                }
            }
            FaultKind::FrameDuplicate => {
                if !frame.is_empty() {
                    let src = self.rng.below(frame.len());
                    let dst = self.rng.below(frame.len() + 1);
                    let p = frame[src];
                    frame.insert(dst, p);
                }
            }
            FaultKind::FrameReorder => {
                // Fisher–Yates over the seeded stream.
                for i in (1..frame.len()).rev() {
                    let j = self.rng.below(i + 1);
                    frame.swap(i, j);
                }
            }
            _ => panic!("{kind:?} corrupts router state, not input frames"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardConfig;
    use bonsai_kdtree::KdTreeConfig;

    fn cloud(n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| {
                Point3::new(
                    (i % 23) as f32 * 0.4,
                    (i % 17) as f32 * 0.3,
                    (i % 5) as f32 * 0.2,
                )
            })
            .collect()
    }

    #[test]
    fn every_state_fault_is_audit_detected_on_a_router() {
        for seed in 1..=5u64 {
            for kind in FaultKind::STATE {
                let pts = cloud(600);
                let mut router =
                    ShardRouter::bonsai(&pts, KdTreeConfig::default(), ShardConfig::with_shards(3));
                assert!(
                    router.audit().is_empty(),
                    "seed {seed} {kind:?}: dirty seed"
                );
                let mut plan = FaultPlan::new(seed);
                let shard = plan.inject(&mut router, kind);
                assert!(shard.is_some(), "seed {seed} {kind:?}: no applicable site");
                let want = kind.expected_violation().unwrap();
                let found = router.audit();
                assert!(
                    found.iter().any(|v| v.kind == want),
                    "seed {seed} {kind:?}: expected {want} among {found:?}"
                );
            }
        }
    }

    #[test]
    fn frame_faults_replay_identically_from_the_seed() {
        for kind in FaultKind::FRAME {
            let mut a = cloud(40);
            let mut b = cloud(40);
            FaultPlan::new(99).mangle_frame(kind, &mut a);
            FaultPlan::new(99).mangle_frame(kind, &mut b);
            assert_eq!(a, b, "{kind:?} not reproducible");
            if kind == FaultKind::FrameReorder {
                let mut c = cloud(40);
                FaultPlan::new(100).mangle_frame(kind, &mut c);
                assert_ne!(a, c, "different seeds should shuffle differently");
            }
        }
    }
}
