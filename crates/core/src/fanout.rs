//! Shared scoped-thread fan-out plumbing for the batch front-ends
//! (compiled only with the `parallel` feature).
//!
//! [`RadiusSearchEngine`](crate::RadiusSearchEngine),
//! [`ShardRouter`](crate::ShardRouter) and the router's shard builds all
//! split work across scoped `std::thread` workers the same way: resolve
//! a thread count against the item count, chunk, run, merge in order.
//! Keeping the logic here means a change to the clamping or the merge
//! applies to every path at once.

use bonsai_geom::Point3;
use bonsai_kdtree::QueryBatch;

/// Resolves `0` (meaning "use the machine's available parallelism")
/// into a concrete worker count, unclamped.
pub(crate) fn requested_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Resolves a requested worker count: `0` means the machine's available
/// parallelism, and the result is clamped to `1..=items`.
pub(crate) fn resolve_threads(threads: usize, items: usize) -> usize {
    requested_threads(threads).min(items).max(1)
}

/// Runs `search` (any sequential whole-batch searcher) over `queries`
/// split across `threads` scoped workers, merging the per-worker
/// batches into `batch` in query order — output and aggregate stats are
/// identical to one sequential `search` call over all queries.
pub(crate) fn search_batch_across_threads<S>(
    queries: &[Point3],
    radius: f32,
    batch: &mut QueryBatch,
    threads: usize,
    search: S,
) where
    S: Fn(&[Point3], f32, &mut QueryBatch) + Sync,
{
    let threads = resolve_threads(threads, queries.len());
    if threads == 1 {
        return search(queries, radius, batch);
    }
    let chunk = queries.len().div_ceil(threads);
    let mut parts: Vec<QueryBatch> = (0..threads).map(|_| QueryBatch::new()).collect();
    std::thread::scope(|scope| {
        for (part, chunk_queries) in parts.iter_mut().zip(queries.chunks(chunk)) {
            let search = &search;
            scope.spawn(move || search(chunk_queries, radius, part));
        }
    });
    batch.reset();
    for part in &parts {
        batch.absorb(part);
    }
}
