//! The central safety property of K-D Bonsai, as property tests: the
//! compressed radius search returns **exactly** the baseline membership
//! for arbitrary clouds, queries and radii — including adversarial radii
//! placed right at point distances, where the uncertainty shell must
//! trigger re-computation rather than guess.

use bonsai_core::BonsaiTree;
use bonsai_geom::Point3;
use bonsai_kdtree::{KdTreeConfig, SearchStats};
use bonsai_sim::SimEngine;
use proptest::prelude::*;

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-100.0f32..100.0, -100.0f32..100.0, -4.0f32..4.0)
            .prop_map(|(x, y, z)| Point3::new(x, y, z)),
        2..max,
    )
}

fn memberships(tree: &BonsaiTree, q: Point3, r: f32) -> (Vec<u32>, Vec<u32>) {
    let mut bonsai: Vec<u32> = tree
        .radius_search_simple(q, r)
        .iter()
        .map(|n| n.index)
        .collect();
    let mut baseline: Vec<u32> = tree
        .kd_tree()
        .radius_search_simple(q, r)
        .iter()
        .map(|n| n.index)
        .collect();
    bonsai.sort_unstable();
    baseline.sort_unstable();
    (bonsai, baseline)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary query/radius: identical membership.
    #[test]
    fn bonsai_membership_equals_baseline(
        cloud in arb_cloud(300),
        qi in any::<prop::sample::Index>(),
        radius in 0.0f32..20.0,
        leaf in 2usize..=16,
    ) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), cfg, &mut sim);
        let q = cloud[qi.index(cloud.len())];
        let (bonsai, baseline) = memberships(&tree, q, radius);
        prop_assert_eq!(bonsai, baseline);
    }

    /// Adversarial radii: place r² exactly at (or a few ULPs around) a
    /// point's true distance, the hardest case for the shell.
    #[test]
    fn boundary_radii_still_match(
        cloud in arb_cloud(200),
        qi in any::<prop::sample::Index>(),
        ti in any::<prop::sample::Index>(),
        nudge in -3i32..=3,
    ) {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = cloud[qi.index(cloud.len())];
        let target = cloud[ti.index(cloud.len())];
        let d = q.distance(target);
        // Radius a few ULPs around the exact distance.
        let mut r = d;
        for _ in 0..nudge.unsigned_abs() {
            r = if nudge > 0 { r.next_up() } else { r.next_down() };
        }
        let (bonsai, baseline) = memberships(&tree, q, r.max(0.0));
        prop_assert_eq!(bonsai, baseline);
    }

    /// The fallback mechanism fires but stays rare on realistic radii.
    #[test]
    fn fallbacks_stay_rare(cloud in arb_cloud(400), radius in 0.5f32..5.0) {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut machine = bonsai_isa::Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        for qi in (0..cloud.len()).step_by(7) {
            tree.radius_search(&mut sim, &mut machine, cloud[qi], radius, &mut out, &mut stats);
        }
        if stats.points_inspected > 100 {
            prop_assert!(
                stats.fallback_ratio() < 0.1,
                "fallback ratio {}",
                stats.fallback_ratio()
            );
        }
    }

    /// Compression is lossless at the f16 level: every decoded leaf
    /// coordinate equals the f16 conversion of the original point.
    #[test]
    fn directory_is_f16_exact(cloud in arb_cloud(150)) {
        let mut sim = SimEngine::disabled();
        let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for (leaf_id, r) in tree.directory().refs() {
            let mut decoded = [[0u16; 3]; 16];
            bonsai_isa::codec::decompress(
                tree.directory().bytes_of(leaf_id),
                r.num_pts as usize,
                &mut decoded,
            );
            let bonsai_kdtree::Node::Leaf { start, count } =
                tree.kd_tree().nodes()[leaf_id as usize]
            else {
                panic!("directory ref for a non-leaf");
            };
            for (slot, i) in (start..start + count).enumerate() {
                let idx = tree.kd_tree().vind()[i as usize] as usize;
                for c in 0..3 {
                    prop_assert_eq!(
                        decoded[slot][c],
                        bonsai_floatfmt::Half::from_f32(cloud[idx][c]).to_bits()
                    );
                }
            }
        }
    }
}
