//! Property tests: tree searches agree with brute force on arbitrary
//! clouds, radii and leaf sizes.

use bonsai_geom::Point3;
use bonsai_kdtree::{KdTree, KdTreeConfig, SplitRule};
use bonsai_sim::SimEngine;
use proptest::prelude::*;

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (-50.0f32..50.0, -50.0f32..50.0, -5.0f32..5.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        1..max,
    )
}

fn brute_radius(cloud: &[Point3], q: Point3, r: f32) -> Vec<u32> {
    let mut out: Vec<u32> = cloud
        .iter()
        .enumerate()
        .filter(|(_, p)| p.distance_squared(q) <= r * r)
        .map(|(i, _)| i as u32)
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Radius search equals brute force for any cloud/query/radius and
    /// any legal leaf size and split rule.
    #[test]
    fn radius_search_equals_brute_force(
        cloud in arb_cloud(400),
        qx in -60.0f32..60.0,
        qy in -60.0f32..60.0,
        radius in 0.0f32..30.0,
        leaf in 1usize..=16,
        midpoint in any::<bool>(),
    ) {
        let cfg = KdTreeConfig {
            max_leaf_points: leaf,
            split_rule: if midpoint { SplitRule::SlidingMidpoint } else { SplitRule::Median },
        };
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), cfg, &mut sim);
        let q = Point3::new(qx, qy, 0.0);
        let mut got: Vec<u32> =
            tree.radius_search_simple(q, radius).iter().map(|n| n.index).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_radius(&cloud, q, radius));
    }

    /// kNN returns the k smallest distances (as a set, tolerating ties).
    #[test]
    fn knn_matches_brute_force_distances(
        cloud in arb_cloud(300),
        qx in -60.0f32..60.0,
        qy in -60.0f32..60.0,
        k in 1usize..40,
    ) {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = Point3::new(qx, qy, 0.0);
        let got = tree.knn(&mut sim, q, k);
        let mut dists: Vec<f32> = cloud.iter().map(|p| p.distance_squared(q)).collect();
        dists.sort_by(f32::total_cmp);
        let expect = &dists[..k.min(cloud.len())];
        let got_d: Vec<f32> = got.iter().map(|n| n.dist_sq).collect();
        prop_assert_eq!(got_d.len(), expect.len());
        for (g, e) in got_d.iter().zip(expect) {
            prop_assert_eq!(*g, *e);
        }
    }

    /// Every point appears in exactly one leaf, regardless of shape.
    #[test]
    fn leaves_partition_points(cloud in arb_cloud(500), leaf in 1usize..=16) {
        let cfg = KdTreeConfig { max_leaf_points: leaf, ..KdTreeConfig::default() };
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), cfg, &mut sim);
        let mut seen = vec![0u8; cloud.len()];
        for node in tree.nodes() {
            if let bonsai_kdtree::Node::Leaf { start, count } = node {
                prop_assert!(*count as usize <= leaf);
                for i in *start..start + count {
                    seen[tree.vind()[i as usize] as usize] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }
}
