use bonsai_geom::Point3;
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::baseline::BaselineLeafProcessor;
use crate::build::{sites, KdTree};
use crate::costs::TraversalCosts;
use crate::node::{LeafId, Node, NODE_BYTES};
use crate::scratch::{Frame, SearchScratch};

/// One radius-search result: a point index and its squared distance to
/// the query (PCL returns both).
///
/// `repr(C)` so the layout is the declared `(index, dist_sq)` pair —
/// the SIMD sweeps emit whole compacted lane groups of these with
/// vector stores.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the original point cloud.
    pub index: u32,
    /// Squared euclidean distance to the query.
    pub dist_sq: f32,
}

/// Work counters of one or more searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Tree nodes visited (interior + leaf).
    pub nodes_visited: u64,
    /// Leaves inspected.
    pub leaf_visits: u64,
    /// Points whose distance was evaluated.
    pub points_inspected: u64,
    /// Inconclusive shell classifications that re-computed in `f32`
    /// (Bonsai processors only).
    pub fallbacks: u64,
    /// Bytes loaded to bring *point data* into the core during leaf
    /// inspection: 12 B per point in the baseline, 16 B per compressed
    /// slice (+ 12 B per fallback) under Bonsai. This is the metric of
    /// the paper's Figure 9b (4.85 MB → 1.77 MB on frame #1).
    pub point_bytes_loaded: u64,
}

impl SearchStats {
    /// Fraction of inspected points that needed full-precision
    /// re-computation (the paper reports 0.37 %).
    pub fn fallback_ratio(&self) -> f64 {
        if self.points_inspected == 0 {
            0.0
        } else {
            self.fallbacks as f64 / self.points_inspected as f64
        }
    }
}

impl std::ops::AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.nodes_visited += rhs.nodes_visited;
        self.leaf_visits += rhs.leaf_visits;
        self.points_inspected += rhs.points_inspected;
        self.fallbacks += rhs.fallbacks;
        self.point_bytes_loaded += rhs.point_bytes_loaded;
    }
}

impl std::ops::Add for SearchStats {
    type Output = SearchStats;
    fn add(mut self, rhs: SearchStats) -> SearchStats {
        self += rhs;
        self
    }
}

/// The pluggable leaf-inspection stage of radius search.
///
/// The traversal (shared by all configurations) hands each reached leaf
/// to a processor, which classifies the leaf's points against `r²` and
/// appends the hits to `out`. Implementations:
///
/// * [`BaselineLeafProcessor`](crate::BaselineLeafProcessor) — PCL's
///   `f32` scan;
/// * `BonsaiLeafProcessor` (in `bonsai-core`) — compressed points through
///   the Bonsai-extensions with the exactness-preserving shell check;
/// * reduced-format and software-codec processors used by the Table I
///   and ablation experiments.
pub trait LeafProcessor {
    /// Classifies the points of leaf `leaf` (`tree.vind()[start..start+count]`)
    /// against the query, pushing every point with `d² ≤ r²` into `out`.
    ///
    /// Must behave identically to the baseline classification (Eq. 3);
    /// the Bonsai processor achieves this through re-computation of
    /// inconclusive shell cases.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware interface
    fn process_leaf(
        &mut self,
        sim: &mut SimEngine,
        tree: &KdTree,
        leaf: LeafId,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    );
}

/// Whether `radius` denotes a searchable ball.
///
/// Every radius-search entry point rejects non-positive and non-finite
/// radii up front and returns an empty result without visiting any
/// node. The guard exists because the traversal and the leaf scans
/// compare only against `r² = radius·radius`, which erases the sign
/// (`-r` would silently behave like `+r`) and turns NaN/∞ radii into
/// inconsistent pruning decisions. Public so layered front-ends (the
/// shard router) can apply the identical rejection before any routing
/// work of their own.
///
/// # Examples
///
/// ```
/// use bonsai_kdtree::radius_is_searchable;
/// assert!(radius_is_searchable(0.5));
/// assert!(!radius_is_searchable(0.0));
/// assert!(!radius_is_searchable(-1.0));
/// assert!(!radius_is_searchable(f32::NAN));
/// assert!(!radius_is_searchable(f32::INFINITY));
/// ```
#[inline]
pub fn radius_is_searchable(radius: f32) -> bool {
    // `radius > 0.0` is false for NaN, so finiteness is the only extra
    // check needed to exclude +∞.
    radius > 0.0 && radius != f32::INFINITY
}

/// Whether `center` denotes a searchable query point.
///
/// The twin of [`radius_is_searchable`], covering the query *center*:
/// every search entry point (radius **and** kNN) rejects a center with
/// a NaN or ±∞ coordinate up front and returns an empty result without
/// visiting any node. Without the guard the damage is worse than the
/// degenerate-radius bug: a NaN coordinate makes every `d² ≤ r²`
/// comparison false (radius search silently finds nothing after a full
/// traversal), while kNN's heap admits points whenever `heap.len() < k`
/// — so a NaN query returned `k` arbitrary "neighbors" with NaN
/// `dist_sq`. Layered front-ends (the batch engine, the shard router)
/// apply the identical rejection before any routing work so their
/// behavior can never diverge from the single-tree traversal.
///
/// # Examples
///
/// ```
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::query_is_searchable;
/// assert!(query_is_searchable(Point3::new(1.0, -2.0, 0.5)));
/// assert!(!query_is_searchable(Point3::new(f32::NAN, 0.0, 0.0)));
/// assert!(!query_is_searchable(Point3::new(0.0, f32::INFINITY, 0.0)));
/// assert!(!query_is_searchable(Point3::new(0.0, 0.0, f32::NEG_INFINITY)));
/// ```
#[inline]
pub fn query_is_searchable(center: Point3) -> bool {
    center.is_finite()
}

impl KdTree {
    /// Radius search (paper Section II-C): finds every point within
    /// `radius` of `query`, using `processor` for leaf inspection and
    /// charging traversal work to the `Traverse` kernel.
    ///
    /// Results are appended to `out` in tree order (cleared first).
    pub fn radius_search<P: LeafProcessor>(
        &self,
        sim: &mut SimEngine,
        processor: &mut P,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let mut scratch = SearchScratch::with_depth(self.build_stats().max_depth as usize);
        self.radius_search_scratch(sim, processor, query, radius, out, stats, &mut scratch);
    }

    /// [`radius_search`](KdTree::radius_search) with a caller-owned
    /// [`SearchScratch`]: the traversal stack is reused across queries,
    /// so a warmed-up query performs no heap allocation. This is the
    /// form every hot loop (cluster BFS, batch engine, benches) should
    /// use.
    ///
    /// A non-positive or non-finite `radius` — or a query center with a
    /// non-finite coordinate — yields an empty result without visiting
    /// any node (no stats, no simulated events).
    #[allow(clippy::too_many_arguments)] // mirrors radius_search + scratch
    pub fn radius_search_scratch<P: LeafProcessor>(
        &self,
        sim: &mut SimEngine,
        processor: &mut P,
        query: Point3,
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) {
        out.clear();
        if self.nodes().is_empty() || !radius_is_searchable(radius) || !query_is_searchable(query) {
            return;
        }
        let costs = TraversalCosts::default_model();
        let prev = sim.set_kernel(Kernel::Traverse);
        sim.exec(OpClass::IntAlu, costs.per_query_setup);
        let r_sq = radius * radius;

        // Explicit-stack depth-first walk. `FarCheck` frames fire after
        // the near subtree completes, reproducing the recursive walk's
        // exact event order (loads, branch outcomes, kernel switches),
        // so simulation results are unchanged while the host-side stack
        // depth becomes O(1) allocations amortized.
        let frames = &mut scratch.frames;
        frames.clear();
        frames.push(Frame::Visit {
            node: 0,
            min_dist_sq: 0.0,
            side: [0.0; 3],
        });
        while let Some(frame) = frames.pop() {
            let (node, min_dist_sq, side) = match frame {
                Frame::FarCheck {
                    node,
                    far_dist_sq,
                    side,
                } => {
                    // Exact lower bound on the distance to the far cell.
                    let visit_far = far_dist_sq <= r_sq;
                    sim.branch(sites::VISIT_FAR, visit_far);
                    if !visit_far {
                        continue;
                    }
                    (node, far_dist_sq, side)
                }
                Frame::Visit {
                    node,
                    min_dist_sq,
                    side,
                } => (node, min_dist_sq, side),
            };

            stats.nodes_visited += 1;
            // Interior-node fields span two dependent accesses in the
            // compiled FLANN walk (discriminant + split value, then the
            // child pointers).
            sim.load(self.node_addr(node), 12);
            sim.load(self.node_addr(node) + 12, (NODE_BYTES - 12) as u32);

            match self.nodes()[node as usize] {
                Node::Leaf { start, count } => {
                    stats.leaf_visits += 1;
                    let prev = sim.set_kernel(Kernel::LeafScan);
                    processor.process_leaf(sim, self, node, start, count, query, r_sq, out, stats);
                    sim.set_kernel(prev);
                }
                Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left,
                    right,
                } => {
                    sim.exec(OpClass::IntAlu, costs.per_interior_node);
                    sim.exec(OpClass::FpAlu, costs.per_interior_node_fp);

                    let val = query[axis];
                    let go_left = val <= split_val;
                    sim.branch(sites::DESCEND, go_left);
                    let (near, far, gap) = if go_left {
                        (left, right, div_high - val)
                    } else {
                        (right, left, val - div_low)
                    };

                    // Swap this axis' contribution for the gap to the
                    // far side (Arya–Mount incremental cell distance).
                    let gap = gap.max(0.0);
                    let cut = gap * gap;
                    let far_dist_sq = min_dist_sq - side[axis.index()] + cut;
                    let mut far_side = side;
                    far_side[axis.index()] = cut;
                    frames.push(Frame::FarCheck {
                        node: far,
                        far_dist_sq,
                        side: far_side,
                    });
                    frames.push(Frame::Visit {
                        node: near,
                        min_dist_sq,
                        side,
                    });
                }
            }
        }
        sim.set_kernel(prev);
    }

    /// Convenience: uninstrumented baseline radius search.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::Point3;
    /// use bonsai_kdtree::{KdTree, KdTreeConfig};
    /// use bonsai_sim::SimEngine;
    ///
    /// let pts = vec![Point3::ZERO, Point3::new(1.0, 0.0, 0.0)];
    /// let mut sim = SimEngine::disabled();
    /// let tree = KdTree::build(pts, KdTreeConfig::default(), &mut sim);
    /// assert_eq!(tree.radius_search_simple(Point3::ZERO, 0.5).len(), 1);
    /// ```
    pub fn radius_search_simple(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let mut sim = SimEngine::disabled();
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        self.radius_search(&mut sim, &mut proc, query, radius, &mut out, &mut stats);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KdTreeConfig;

    /// Deterministic pseudo-random cloud.
    fn random_cloud(n: usize, seed: u64, scale: f32) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                Point3::new(
                    (next() - 0.5) * scale,
                    (next() - 0.5) * scale,
                    (next() - 0.5) * scale * 0.1,
                )
            })
            .collect()
    }

    fn brute_force(cloud: &[Point3], q: Point3, r: f32) -> Vec<u32> {
        let mut hits: Vec<u32> = cloud
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(q) <= r * r)
            .map(|(i, _)| i as u32)
            .collect();
        hits.sort_unstable();
        hits
    }

    #[test]
    fn matches_brute_force_on_random_clouds() {
        for seed in 0..5 {
            let cloud = random_cloud(800, seed + 1, 60.0);
            let mut sim = SimEngine::disabled();
            let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
            for (qi, r) in [(3usize, 1.5f32), (100, 4.0), (400, 0.3), (700, 12.0)] {
                let q = cloud[qi];
                let mut got: Vec<u32> = tree
                    .radius_search_simple(q, r)
                    .iter()
                    .map(|n| n.index)
                    .collect();
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute_force(&cloud, q, r),
                    "seed {seed} query {qi} r {r}"
                );
            }
        }
    }

    #[test]
    fn distances_are_correct() {
        let cloud = random_cloud(300, 9, 20.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = cloud[42];
        for n in tree.radius_search_simple(q, 5.0) {
            let expect = cloud[n.index as usize].distance_squared(q);
            assert_eq!(n.dist_sq, expect);
        }
    }

    #[test]
    fn tiny_radius_finds_the_query_itself() {
        let cloud = random_cloud(200, 3, 30.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let hits = tree.radius_search_simple(cloud[17], f32::MIN_POSITIVE);
        assert!(hits.iter().any(|n| n.index == 17));
        for n in &hits {
            assert_eq!(n.dist_sq, 0.0); // only exact duplicates qualify
        }
    }

    /// The degenerate-radius contract: `radius <= 0` and non-finite
    /// radii return empty results and do no traversal work. Before the
    /// guard, `-r` silently behaved like `+r` because only
    /// `r² = radius·radius` was ever compared.
    #[test]
    fn degenerate_radii_return_empty_without_visits() {
        let cloud = random_cloud(300, 6, 20.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = cloud[50];
        // Sanity: the positive radius actually finds neighbors.
        assert!(!tree.radius_search_simple(q, 2.0).is_empty());
        for r in [0.0, -0.0, -2.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(
                tree.radius_search_simple(q, r).is_empty(),
                "radius {r} must find nothing"
            );
            let mut proc = BaselineLeafProcessor::new(&mut sim);
            let mut out = vec![Neighbor {
                index: 0,
                dist_sq: 0.0,
            }];
            let mut stats = SearchStats::default();
            tree.radius_search(&mut sim, &mut proc, q, r, &mut out, &mut stats);
            assert!(out.is_empty(), "radius {r} left stale results");
            assert_eq!(stats, SearchStats::default(), "radius {r} did work");
        }
    }

    /// The non-finite-query-center contract: NaN/±∞ coordinates return
    /// empty results with zero traversal work. Before the guard, a NaN
    /// query silently traversed (all comparisons false) and an ∞ query
    /// mis-pruned — and kNN admitted garbage (see `knn.rs`).
    #[test]
    fn non_finite_query_centers_return_empty_without_visits() {
        let cloud = random_cloud(300, 14, 20.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for q in [
            Point3::new(f32::NAN, 0.0, 0.0),
            Point3::new(0.0, f32::INFINITY, 0.0),
            Point3::new(0.0, 0.0, f32::NEG_INFINITY),
            Point3::new(f32::NAN, f32::NAN, f32::NAN),
        ] {
            assert!(
                tree.radius_search_simple(q, 2.0).is_empty(),
                "query {q:?} must find nothing"
            );
            let mut proc = BaselineLeafProcessor::new(&mut sim);
            let mut out = vec![Neighbor {
                index: 0,
                dist_sq: 0.0,
            }];
            let mut stats = SearchStats::default();
            tree.radius_search(&mut sim, &mut proc, q, 2.0, &mut out, &mut stats);
            assert!(out.is_empty(), "query {q:?} left stale results");
            assert_eq!(stats, SearchStats::default(), "query {q:?} did work");
        }
    }

    #[test]
    fn negative_radius_differs_from_its_absolute_value() {
        let cloud = random_cloud(400, 12, 25.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = cloud[123];
        assert!(!tree.radius_search_simple(q, 1.5).is_empty());
        assert!(tree.radius_search_simple(q, -1.5).is_empty());
    }

    #[test]
    fn radius_covering_everything_returns_all() {
        let cloud = random_cloud(150, 5, 10.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let hits = tree.radius_search_simple(Point3::ZERO, 1000.0);
        assert_eq!(hits.len(), cloud.len());
    }

    #[test]
    fn search_on_empty_tree_is_empty() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
        assert!(tree.radius_search_simple(Point3::ZERO, 5.0).is_empty());
    }

    #[test]
    fn stats_count_traversal_work() {
        let cloud = random_cloud(1000, 8, 50.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        tree.radius_search(&mut sim, &mut proc, cloud[0], 2.0, &mut out, &mut stats);
        assert!(stats.nodes_visited > 0);
        assert!(stats.leaf_visits >= 1);
        assert!(stats.points_inspected >= stats.leaf_visits);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn pruning_skips_most_of_a_large_tree() {
        let cloud = random_cloud(5000, 2, 200.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        tree.radius_search(&mut sim, &mut proc, cloud[10], 1.0, &mut out, &mut stats);
        let leaves = tree.build_stats().num_leaves as u64;
        assert!(
            stats.leaf_visits < leaves / 4,
            "visited {} of {} leaves",
            stats.leaf_visits,
            leaves
        );
    }

    #[test]
    fn traversal_charges_traverse_kernel_and_leaf_scan_separately() {
        let cloud = random_cloud(500, 4, 40.0);
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        tree.radius_search(&mut sim, &mut proc, cloud[5], 3.0, &mut out, &mut stats);
        assert!(sim.kernel_counters(Kernel::Traverse).micro_ops() > 0);
        assert!(sim.kernel_counters(Kernel::LeafScan).loads > 0);
    }

    #[test]
    fn search_stats_fallback_ratio_zero_denominator() {
        assert_eq!(SearchStats::default().fallback_ratio(), 0.0);
    }
}
