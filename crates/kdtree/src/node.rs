use bonsai_geom::Axis;

/// Index of a node in the tree's node pool.
pub type NodeId = u32;

/// Identifier of a leaf — its [`NodeId`]. Side tables (e.g. the
/// compressed-leaf directory of `bonsai-core`) are indexed by this.
pub type LeafId = u32;

/// One k-d tree node.
///
/// The paper's modified PCL reuses interior-node fields on leaves (via C
/// unions) to store the compressed-structure reference without growing
/// the tree. In Rust an `enum` expresses the same storage: both variants
/// occupy one pool slot, and `bonsai-core` keeps its per-leaf reference
/// in a side table indexed by [`LeafId`] whose footprint corresponds to
/// those reused fields (accounted in the simulated layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Node {
    /// An interior node splitting space on `axis`.
    Interior {
        /// The splitting coordinate.
        axis: Axis,
        /// The split threshold: points with `p[axis] <= split_val` went
        /// left.
        split_val: f32,
        /// Maximum `axis` value in the left subtree (the paper's
        /// "distance to each sub-tree" bookkeeping).
        div_low: f32,
        /// Minimum `axis` value in the right subtree.
        div_high: f32,
        /// Left child node id.
        left: NodeId,
        /// Right child node id.
        right: NodeId,
    },
    /// A leaf holding `count` points: `vind[start .. start + count]`.
    Leaf {
        /// First index into the tree's reordered index array.
        start: u32,
        /// Number of points in the leaf.
        count: u32,
    },
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }
}

/// Simulated size of one pool node in bytes.
///
/// The FLANN node holds a discriminant/axis, the split value, the two
/// divider values and two child pointers — 24 bytes packed; we round to
/// 24 (the vind range of a leaf reuses the same space, as in the paper's
/// union layout).
pub const NODE_BYTES: u64 = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_predicate() {
        let leaf = Node::Leaf { start: 0, count: 5 };
        let interior = Node::Interior {
            axis: Axis::X,
            split_val: 0.0,
            div_low: -1.0,
            div_high: 1.0,
            left: 1,
            right: 2,
        };
        assert!(leaf.is_leaf());
        assert!(!interior.is_leaf());
    }

    #[test]
    fn node_fits_declared_footprint() {
        // The Rust enum must not be bigger than the simulated layout
        // assumes (it is allowed to be smaller after niche packing).
        assert!(std::mem::size_of::<Node>() as u64 <= NODE_BYTES + 8);
    }
}
