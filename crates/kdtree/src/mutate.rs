//! Incremental (ikd-Tree-style) point insertion and deletion.
//!
//! Streaming LiDAR frames change a small fraction of the cloud per
//! scan, yet the seed pipeline rebuilt the whole tree every frame.
//! This module turns the build/search split into build/**mutate**/
//! search:
//!
//! * [`KdTree::insert`] descends to the owning leaf, widening the
//!   interior divider values along the way so pruning stays exact, and
//!   appends into the leaf's slack slots; a full leaf is split into a
//!   fresh two-leaf subtree, and a packed (build-time) leaf without
//!   slack is relocated once to a slack range at the end of the `vind`
//!   array.
//! * [`KdTree::delete`] locates the point's leaf through the divider
//!   bounds, swap-removes its slot (the SoA rows stay dense — no
//!   tombstones reach the scan loops) and shrinks the leaf count.
//! * After every mutation an ikd-Tree-style criterion walks the
//!   descent path top-down and rebuilds **only the highest violating
//!   subtree**: α-balance (one child holding more than
//!   [`ALPHA_BALANCE`] of the subtree's live points) or α-emptiness
//!   (deletions leaving the subtree's leaves under a quarter full on
//!   average). Rebuilds go through the same parts builder as
//!   [`KdTree::build_parallel`], so large rebuilds fan out across
//!   threads under the `parallel` feature.
//!
//! Relocations and rebuilds abandon their old `vind`/SoA slots
//! ([`KdTree::garbage_slots`] counts them); retired node-pool slots are
//! recycled through a free list. Every touched node id is appended to a
//! dirty log ([`KdTree::drain_dirty_nodes`]) that layered caches — the
//! compressed-leaf directory and f16 shell rows of `bonsai-core` —
//! consume to re-bake **only** the touched leaves.
//!
//! Mutations never change per-point search semantics: membership and
//! reported `dist_sq` bits depend only on a point's coordinates (and,
//! under Bonsai, its own f16 approximation), so any interleaving of
//! inserts, deletes and searches yields neighbor sets bit-identical to
//! a from-scratch rebuild over the same live points — property-tested
//! at the workspace root (`tests/incremental_equivalence.rs`).
//!
//! # Examples
//!
//! ```
//! use bonsai_geom::Point3;
//! use bonsai_kdtree::{KdTree, KdTreeConfig};
//! use bonsai_sim::SimEngine;
//!
//! let cloud: Vec<Point3> =
//!     (0..100).map(|i| Point3::new(i as f32 * 0.1, 0.0, 0.0)).collect();
//! let mut sim = SimEngine::disabled();
//! let mut tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
//!
//! let new_idx = tree.insert(&mut sim, Point3::new(5.05, 0.0, 0.0)).unwrap();
//! assert!(tree.delete(&mut sim, 3));
//! let hits = tree.radius_search_simple(Point3::new(5.0, 0.0, 0.0), 0.25);
//! assert!(hits.iter().any(|n| n.index == new_idx)); // inserted point found
//! assert!(hits.iter().all(|n| n.index != 3)); // deleted point gone
//! ```

use bonsai_geom::Point3;
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::build::{sites, KdTree};
use crate::node::{Node, NodeId, NODE_BYTES};
use crate::parts::{build_subtree, resolve_build_threads, SubtreeConfig, PAD_SLOT};
use crate::simd::{lane_padded, PAD_COORD};

/// Fraction of a subtree's live points one child may hold before the
/// subtree is rebuilt (ikd-Tree's α_bal; Cai et al. use 0.7).
pub const ALPHA_BALANCE: f32 = 0.75;

/// Live points a subtree needs before the balance criterion applies —
/// below this a rebuild costs more than the skew.
const REBALANCE_MIN_POINTS: u32 = 64;

/// Subtree size past which a criterion-triggered rebuild fans its top
/// recursion levels across threads (`parallel` feature).
const PARALLEL_REBUILD_MIN_POINTS: usize = 8192;

/// Per-node bookkeeping of the mutation layer, parallel to the node
/// pool.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeMeta {
    /// Live points in the subtree (for a leaf: its `count`).
    pub live: u32,
    /// Leaves in the subtree (1 for a leaf).
    pub leaves: u32,
    /// Leaf only: `vind` slots the leaf owns from its `start`
    /// (`count ≤ cap`). Build-time leaves are packed (`cap == count`);
    /// mutation-created leaves own `max_leaf_points` slots.
    pub cap: u32,
}

/// Counters of the mutation layer (observability + bench reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutationStats {
    /// Points inserted (accepted).
    pub inserts: u64,
    /// Points deleted.
    pub deletes: u64,
    /// Inserts absorbed by a leaf's existing slack slots.
    pub leaf_appends: u64,
    /// Packed leaves relocated once to a slack range.
    pub leaf_relocations: u64,
    /// Full leaves split into a fresh subtree.
    pub leaf_splits: u64,
    /// Criterion-triggered subtree rebuilds (α-balance / α-emptiness).
    pub subtree_rebuilds: u64,
    /// Live points re-inserted by splits and criterion rebuilds.
    pub rebuilt_points: u64,
}

impl KdTree {
    /// Inserts a point, returning its new cloud index, or `None` for a
    /// point with a non-finite coordinate (NaN/∞ coordinates cannot be
    /// routed or found again — the mutation twin of the degenerate-
    /// radius guard). Construction work is charged to the `Build`
    /// kernel.
    ///
    /// Amortized cost is one root-to-leaf descent; a full leaf splits
    /// in place, and a violated balance criterion rebuilds exactly the
    /// highest skewed subtree on the descent path.
    pub fn insert(&mut self, sim: &mut SimEngine, p: Point3) -> Option<u32> {
        if !p.is_finite() {
            return None;
        }
        let prev = sim.set_kernel(Kernel::Build);
        let idx = self.points.len() as u32;
        self.points.push(p);
        self.alive.push(true);
        self.num_live += 1;
        self.mut_stats.inserts += 1;
        sim.store(self.point_addr(idx), 12);

        if self.nodes.is_empty() {
            // Update on an empty tree behaves like a first build: one
            // slack root leaf (lane-padded footprint).
            let start = self.vind.len() as u32;
            self.push_point_slot(sim, idx);
            self.pad_slots(lane_padded(self.cfg.max_leaf_points) - 1);
            let root = self.alloc_node(
                sim,
                Node::Leaf { start, count: 1 },
                NodeMeta {
                    live: 1,
                    leaves: 1,
                    cap: self.cfg.max_leaf_points as u32,
                },
            );
            debug_assert_eq!(root, 0);
            sim.set_kernel(prev);
            return Some(idx);
        }

        // Descend to the owning leaf, widening dividers and counting
        // the new point into every subtree on the path.
        let mut path: Vec<NodeId> = Vec::with_capacity(self.stats.max_depth as usize + 2);
        let mut node: NodeId = 0;
        let leaf = loop {
            sim.load(self.node_addr(node), NODE_BYTES as u32);
            match &mut self.nodes[node as usize] {
                Node::Leaf { .. } => break node,
                Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left,
                    right,
                } => {
                    let val = p[*axis];
                    let go_left = val <= *split_val;
                    sim.branch(sites::DESCEND, go_left);
                    sim.exec(OpClass::IntAlu, 4);
                    // Keep the divider bounds sound: div_low/div_high
                    // must bound every live coordinate of their side or
                    // radius pruning would skip the new point.
                    let next = if go_left {
                        if val > *div_low {
                            *div_low = val.min(*split_val);
                            sim.store(self.nodes_addr + node as u64 * NODE_BYTES + 8, 4);
                        }
                        *left
                    } else {
                        if val < *div_high {
                            *div_high = val.max(*split_val);
                            sim.store(self.nodes_addr + node as u64 * NODE_BYTES + 12, 4);
                        }
                        *right
                    };
                    self.meta[node as usize].live += 1;
                    path.push(node);
                    node = next;
                }
            }
        };

        // ikd-style re-balance: rebuild the *highest* subtree on the
        // path whose child skew violates α-balance, folding the new
        // point into the rebuild instead of the leaf.
        for depth in 0..path.len() {
            let id = path[depth];
            if self.balance_violated(id) {
                let delta = self.rebuild_subtree(sim, id, depth as u32, Some(idx));
                self.propagate_leaves_delta(&path[..depth], delta);
                sim.set_kernel(prev);
                return Some(idx);
            }
        }

        // Leaf-level placement: slack append, one-time relocation, or
        // split.
        let Node::Leaf { start, count } = self.nodes[leaf as usize] else {
            unreachable!("descent ends at a leaf");
        };
        let cap = self.meta[leaf as usize].cap;
        if count < cap {
            self.mut_stats.leaf_appends += 1;
            let slot = (start + count) as usize;
            self.vind[slot] = idx;
            self.write_soa_slot(sim, slot, p);
            sim.store(self.vind_entry_addr(slot as u32), 4);
            self.set_leaf(sim, leaf, start, count + 1, cap);
        } else if (count as usize) < self.cfg.max_leaf_points {
            // Packed build-time leaf: relocate once to a slack range
            // (lane-padded `m`-slot footprint).
            self.mut_stats.leaf_relocations += 1;
            let new_start = self.vind.len() as u32;
            for i in start..start + count {
                let moved = self.vind[i as usize];
                sim.load(self.vind_entry_addr(i), 4);
                self.push_point_slot(sim, moved);
            }
            self.push_point_slot(sim, idx);
            self.pad_slots(lane_padded(self.cfg.max_leaf_points) - count as usize - 1);
            self.garbage_slots += lane_padded(cap as usize);
            self.set_leaf(
                sim,
                leaf,
                new_start,
                count + 1,
                self.cfg.max_leaf_points as u32,
            );
        } else {
            // Full leaf: split into a fresh slack subtree.
            self.mut_stats.leaf_splits += 1;
            let delta = self.rebuild_subtree(sim, leaf, path.len() as u32, Some(idx));
            self.propagate_leaves_delta(&path, delta);
        }
        sim.set_kernel(prev);
        Some(idx)
    }

    /// Deletes point `idx` from the tree. Returns `false` — after a
    /// constant-time liveness check, with **zero traversal** — when
    /// `idx` is out of range or already deleted.
    ///
    /// The point's slot is swap-removed from its leaf (scans stay
    /// dense), and the α-emptiness criterion rebuilds the highest
    /// path subtree whose leaves deletions have hollowed out.
    pub fn delete(&mut self, sim: &mut SimEngine, idx: u32) -> bool {
        if self.alive.get(idx as usize) != Some(&true) {
            return false;
        }
        let prev = sim.set_kernel(Kernel::Build);
        let p = self.points[idx as usize];
        let mut path: Vec<NodeId> = Vec::with_capacity(self.stats.max_depth as usize + 2);
        let leaf = self
            .locate_bounded(sim, 0, idx, p, &mut path)
            .or_else(|| {
                // Stored non-finite coordinates defeat the divider
                // bounds; fall back to an exhaustive walk so liveness
                // and the tree never disagree.
                path.clear();
                self.locate_exhaustive(0, idx, &mut path)
            })
            // lint: allow(panic-free-serving) — liveness invariant:
            // `alive[idx]` was just checked, and the exhaustive
            // fallback visits every leaf, so a live point is found.
            .expect("live point must be stored in some leaf");

        let Node::Leaf { start, count } = self.nodes[leaf as usize] else {
            unreachable!("locate ends at a leaf");
        };
        let slot = (start..start + count)
            .find(|&i| self.vind[i as usize] == idx)
            // lint: allow(panic-free-serving) — `locate_*` returned
            // this leaf precisely because it stores `idx`.
            .expect("leaf contains the located point") as usize;
        let last = (start + count - 1) as usize;
        // Swap-remove inside the leaf: SoA rows stay dense, no
        // tombstone ever reaches a scan loop.
        self.vind[slot] = self.vind[last];
        let moved = Point3::new(self.leaf_x[last], self.leaf_y[last], self.leaf_z[last]);
        self.write_soa_slot(sim, slot, moved);
        sim.store(self.vind_entry_addr(slot as u32), 4);
        // Re-pad the vacated tail slot: it may sit inside the lane
        // group covering the (shrunk) count, and a SIMD sweep would
        // read its stale coordinates otherwise. Layout upkeep, no
        // simulated events (like the build-time pads).
        self.vind[last] = PAD_SLOT;
        self.leaf_x[last] = PAD_COORD;
        self.leaf_y[last] = PAD_COORD;
        self.leaf_z[last] = PAD_COORD;
        let cap = self.meta[leaf as usize].cap;
        self.set_leaf(sim, leaf, start, count - 1, cap);

        self.alive[idx as usize] = false;
        self.num_live -= 1;
        self.mut_stats.deletes += 1;
        for &a in &path {
            self.meta[a as usize].live -= 1;
        }

        // α-emptiness / α-balance: rebuild the highest hollowed-out
        // subtree on the path.
        for depth in 0..path.len() {
            let id = path[depth];
            if self.emptiness_violated(id) || self.balance_violated(id) {
                let delta = self.rebuild_subtree(sim, id, depth as u32, None);
                self.propagate_leaves_delta(&path[..depth], delta);
                break;
            }
        }
        sim.set_kernel(prev);
        true
    }

    // ------------------------------------------------------------------
    // Mutation-state accessors.
    // ------------------------------------------------------------------

    /// Number of live (inserted or built, not deleted) points.
    pub fn num_live(&self) -> usize {
        self.num_live
    }

    /// Whether point `idx` is currently live.
    pub fn is_live(&self, idx: u32) -> bool {
        self.alive.get(idx as usize) == Some(&true)
    }

    /// Live point indices, ascending.
    pub fn live_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }

    /// Mutation counters since construction.
    pub fn mutation_stats(&self) -> MutationStats {
        self.mut_stats
    }

    /// `vind`/SoA slots abandoned by relocations and rebuilds — the
    /// fragmentation a periodic full rebuild reclaims.
    pub fn garbage_slots(&self) -> usize {
        self.garbage_slots
    }

    /// Drains the dirty-node log: every node id whose leaf content or
    /// kind changed since the last drain, sorted and deduplicated.
    /// Layered per-leaf caches (the compressed directory of
    /// `bonsai-core`) re-bake exactly these ids.
    ///
    /// The log grows by a few entries per mutation until drained. A
    /// `KdTree` used *without* a layered cache (pure baseline
    /// serving — its `vind`/SoA state is updated eagerly, so searches
    /// never need the log) should still call this periodically on
    /// long mutation streams, exactly as the baseline shards of the
    /// `ShardRouter` do on every commit, or the log is the one piece
    /// of state that grows without bound.
    pub fn drain_dirty_nodes(&mut self) -> Vec<NodeId> {
        let mut v = std::mem::take(&mut self.dirty_nodes);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether any mutations are pending in the dirty-node log.
    pub fn has_dirty_nodes(&self) -> bool {
        !self.dirty_nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Recomputes the whole meta table from the node pool (used by the
    /// builders; mutations maintain it incrementally).
    pub(crate) fn rebuild_meta(&mut self) {
        self.meta = vec![NodeMeta::default(); self.nodes.len()];
        if !self.nodes.is_empty() {
            self.fill_meta(0, None);
        }
    }

    /// Fills `meta` for the subtree at `id`; `slack_cap` overrides leaf
    /// capacities (packed build leaves own exactly `count` slots,
    /// mutation-built leaves own `max_leaf_points`).
    fn fill_meta(&mut self, id: NodeId, slack_cap: Option<u32>) -> (u32, u32) {
        match self.nodes[id as usize] {
            Node::Leaf { count, .. } => {
                self.meta[id as usize] = NodeMeta {
                    live: count,
                    leaves: 1,
                    cap: slack_cap.unwrap_or(count),
                };
                (count, 1)
            }
            Node::Interior { left, right, .. } => {
                let (ll, lv) = self.fill_meta(left, slack_cap);
                let (rl, rv) = self.fill_meta(right, slack_cap);
                self.meta[id as usize] = NodeMeta {
                    live: ll + rl,
                    leaves: lv + rv,
                    cap: 0,
                };
                (ll + rl, lv + rv)
            }
        }
    }

    fn mark_dirty(&mut self, id: NodeId) {
        self.dirty_nodes.push(id);
    }

    /// Appends one live slot (`vind` + SoA rows) at the end.
    fn push_point_slot(&mut self, sim: &mut SimEngine, idx: u32) {
        let slot = self.vind.len() as u32;
        self.vind.push(idx);
        let p = self.points[idx as usize];
        self.leaf_x.push(p.x);
        self.leaf_y.push(p.y);
        self.leaf_z.push(p.z);
        sim.store(self.vind_entry_addr(slot), 4);
        sim.store(self.reordered_point_addr(slot), 12);
        sim.exec(OpClass::IntAlu, 2);
    }

    /// Appends `n` padding slots (slack/lane tail of a mutation leaf):
    /// `PAD_SLOT` indices and `+∞` sentinel coordinates, so a SIMD
    /// lane group covering the tail can never produce a hit.
    fn pad_slots(&mut self, n: usize) {
        self.vind.resize(self.vind.len() + n, PAD_SLOT);
        self.leaf_x.resize(self.leaf_x.len() + n, PAD_COORD);
        self.leaf_y.resize(self.leaf_y.len() + n, PAD_COORD);
        self.leaf_z.resize(self.leaf_z.len() + n, PAD_COORD);
    }

    /// Overwrites SoA slot `slot` with `p`'s coordinates.
    fn write_soa_slot(&mut self, sim: &mut SimEngine, slot: usize, p: Point3) {
        self.leaf_x[slot] = p.x;
        self.leaf_y[slot] = p.y;
        self.leaf_z[slot] = p.z;
        sim.store(self.reordered_point_addr(slot as u32), 12);
    }

    /// Rewrites leaf `id` in place and keeps its meta/dirty state
    /// consistent.
    fn set_leaf(&mut self, sim: &mut SimEngine, id: NodeId, start: u32, count: u32, cap: u32) {
        self.nodes[id as usize] = Node::Leaf { start, count };
        self.meta[id as usize] = NodeMeta {
            live: count,
            leaves: 1,
            cap,
        };
        sim.store(self.node_addr(id), NODE_BYTES as u32);
        self.mark_dirty(id);
    }

    /// Allocates a node slot (free list first), writes `node`/`meta`,
    /// updates shape stats and the dirty log.
    fn alloc_node(&mut self, sim: &mut SimEngine, node: Node, meta: NodeMeta) -> NodeId {
        let id = match self.free_nodes.pop() {
            Some(id) => {
                self.nodes[id as usize] = node;
                self.meta[id as usize] = meta;
                id
            }
            None => {
                let id = self.nodes.len() as NodeId;
                self.nodes.push(node);
                self.meta.push(meta);
                id
            }
        };
        if node.is_leaf() {
            self.stats.num_leaves += 1;
        } else {
            self.stats.num_interior += 1;
        }
        sim.store(self.node_addr(id), NODE_BYTES as u32);
        self.mark_dirty(id);
        id
    }

    /// Retires node `id`: removes it from the shape stats, clears it to
    /// an empty leaf (harmless to generic pool walkers) and logs it
    /// dirty. The caller decides whether the slot goes to the free list
    /// or is reused in place.
    fn retire_node(&mut self, id: NodeId) {
        if self.nodes[id as usize].is_leaf() {
            self.stats.num_leaves -= 1;
        } else {
            self.stats.num_interior -= 1;
        }
        self.nodes[id as usize] = Node::Leaf { start: 0, count: 0 };
        self.meta[id as usize] = NodeMeta::default();
        self.mark_dirty(id);
    }

    /// One child holds more than α of the subtree's live points.
    fn balance_violated(&self, id: NodeId) -> bool {
        let Node::Interior { left, right, .. } = self.nodes[id as usize] else {
            return false;
        };
        let l = self.meta[left as usize].live;
        let r = self.meta[right as usize].live;
        let total = l + r;
        total >= REBALANCE_MIN_POINTS && l.max(r) as f32 > ALPHA_BALANCE * total as f32
    }

    /// Deletions left the subtree's leaves under a quarter full on
    /// average — compact it.
    fn emptiness_violated(&self, id: NodeId) -> bool {
        let m = self.meta[id as usize];
        m.leaves > 1 && (m.live as usize) * 4 < m.leaves as usize * self.cfg.max_leaf_points
    }

    /// Coordinate-bounded location of the leaf storing `idx`: descends
    /// every side whose divider bound admits the coordinate (duplicates
    /// on a split plane can live on both sides), pushing the ancestor
    /// path of the found leaf.
    fn locate_bounded(
        &self,
        sim: &mut SimEngine,
        node: NodeId,
        idx: u32,
        p: Point3,
        path: &mut Vec<NodeId>,
    ) -> Option<NodeId> {
        sim.load(self.node_addr(node), NODE_BYTES as u32);
        match self.nodes[node as usize] {
            Node::Leaf { start, count } => {
                for i in start..start + count {
                    sim.load(self.vind_entry_addr(i), 4);
                    sim.exec(OpClass::IntAlu, 1);
                    if self.vind[i as usize] == idx {
                        return Some(node);
                    }
                }
                None
            }
            Node::Interior {
                axis,
                div_low,
                div_high,
                left,
                right,
                ..
            } => {
                sim.exec(OpClass::IntAlu, 4);
                path.push(node);
                let val = p[axis];
                if val <= div_low {
                    if let Some(leaf) = self.locate_bounded(sim, left, idx, p, path) {
                        return Some(leaf);
                    }
                }
                if val >= div_high {
                    if let Some(leaf) = self.locate_bounded(sim, right, idx, p, path) {
                        return Some(leaf);
                    }
                }
                path.pop();
                None
            }
        }
    }

    /// Exhaustive fallback location (reachable only for stored
    /// non-finite coordinates, which no divider bound can route).
    fn locate_exhaustive(&self, node: NodeId, idx: u32, path: &mut Vec<NodeId>) -> Option<NodeId> {
        match self.nodes[node as usize] {
            Node::Leaf { start, count } => (start..start + count)
                .any(|i| self.vind[i as usize] == idx)
                .then_some(node),
            Node::Interior { left, right, .. } => {
                path.push(node);
                if let Some(leaf) = self.locate_exhaustive(left, idx, path) {
                    return Some(leaf);
                }
                if let Some(leaf) = self.locate_exhaustive(right, idx, path) {
                    return Some(leaf);
                }
                path.pop();
                None
            }
        }
    }

    /// Adds a subtree's change in leaf count to every ancestor on
    /// `path`.
    fn propagate_leaves_delta(&mut self, path: &[NodeId], delta: i64) {
        for &a in path {
            let leaves = &mut self.meta[a as usize].leaves;
            *leaves = (*leaves as i64 + delta) as u32;
        }
    }

    /// Collects the subtree's node ids and live point indices (in
    /// `vind` order).
    fn collect_subtree(&self, id: NodeId, ids: &mut Vec<NodeId>, pts: &mut Vec<u32>) {
        ids.push(id);
        match self.nodes[id as usize] {
            Node::Leaf { start, count } => {
                pts.extend_from_slice(&self.vind[start as usize..(start + count) as usize]);
            }
            Node::Interior { left, right, .. } => {
                self.collect_subtree(left, ids, pts);
                self.collect_subtree(right, ids, pts);
            }
        }
    }

    /// Rebuilds the subtree rooted at `root` (at `depth` below the
    /// tree root) over its live points plus `extra`, splicing the new
    /// root into the same pool slot so the parent link is untouched.
    /// Returns the change in the subtree's leaf count.
    fn rebuild_subtree(
        &mut self,
        sim: &mut SimEngine,
        root: NodeId,
        depth: u32,
        extra: Option<u32>,
    ) -> i64 {
        let mut ids = Vec::new();
        let mut pts = Vec::new();
        self.collect_subtree(root, &mut ids, &mut pts);
        if let Some(idx) = extra {
            pts.push(idx);
        }
        let old_leaves = self.meta[root as usize].leaves as i64;

        // Retire the old subtree: stats out, slots freed (all but the
        // root, which the new subtree reuses), vind ranges abandoned.
        for &id in &ids {
            if let Node::Leaf { .. } = self.nodes[id as usize] {
                self.garbage_slots += lane_padded(self.meta[id as usize].cap as usize);
            }
            sim.load(self.node_addr(id), NODE_BYTES as u32);
            self.retire_node(id);
            if id != root {
                self.free_nodes.push(id);
            }
        }

        self.mut_stats.subtree_rebuilds += 1;
        self.mut_stats.rebuilt_points += pts.len() as u64;

        if pts.is_empty() {
            // Everything deleted: the subtree collapses to one empty
            // leaf owning no slots.
            self.retire_placeholder_stats_fix(sim, root);
            return 1 - old_leaves;
        }

        // Charge the rebuild like a build over `pts`: one partition +
        // bbox pass per level.
        let levels = usize::BITS - pts.len().leading_zeros();
        let costs = crate::costs::TraversalCosts::default_model();
        sim.exec(
            OpClass::IntAlu,
            costs.build_partition_per_point * pts.len() as u64 * levels as u64,
        );
        sim.exec(
            OpClass::FpAlu,
            costs.build_bbox_per_point_fp * pts.len() as u64 * levels as u64,
        );

        let threads = if pts.len() >= PARALLEL_REBUILD_MIN_POINTS {
            resolve_build_threads(0)
        } else {
            1
        };
        // Rebuilds always split at the median, whatever the build-time
        // rule: median splits are what restore the α-balance invariant
        // (ikd-Tree rebuilds the same way). A sliding-midpoint tree
        // whose *natural* shape violates the criterion would otherwise
        // be rebuilt into the same violating shape and thrash — every
        // later mutation re-triggering a full-subtree rebuild. Search
        // results are shape-independent, so mixing rules is exact.
        let rebuild_cfg = crate::build::KdTreeConfig {
            split_rule: crate::build::SplitRule::Median,
            ..self.cfg
        };
        let parts = build_subtree(
            &self.points,
            &mut pts,
            SubtreeConfig {
                tree: rebuild_cfg,
                slack: true,
                threads,
            },
        );

        // Splice: append the (slack) order region, then write the new
        // nodes — local id 0 lands in `root`'s slot.
        let base_slot = self.vind.len() as u32;
        for &o in &parts.order {
            if o == PAD_SLOT {
                self.pad_slots(1);
            } else {
                self.push_point_slot(sim, o);
            }
        }
        let mut map: Vec<NodeId> = Vec::with_capacity(parts.nodes.len());
        map.push(root);
        for _ in 1..parts.nodes.len() {
            let id = match self.free_nodes.pop() {
                Some(id) => id,
                None => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::Leaf { start: 0, count: 0 });
                    self.meta.push(NodeMeta::default());
                    id
                }
            };
            map.push(id);
        }
        for (local, node) in parts.nodes.iter().enumerate() {
            let gid = map[local];
            let fixed = match *node {
                Node::Leaf { start, count } => Node::Leaf {
                    start: start + base_slot,
                    count,
                },
                Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left,
                    right,
                } => Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left: map[left as usize],
                    right: map[right as usize],
                },
            };
            self.nodes[gid as usize] = fixed;
            if fixed.is_leaf() {
                self.stats.num_leaves += 1;
            } else {
                self.stats.num_interior += 1;
            }
            sim.store(self.node_addr(gid), NODE_BYTES as u32);
            self.mark_dirty(gid);
        }
        // Meta for the spliced subtree (slack leaves own m slots).
        self.fill_meta_spliced(root, self.cfg.max_leaf_points as u32);
        self.stats.max_depth = self.stats.max_depth.max(depth + parts.stats.max_depth);
        parts.stats.num_leaves as i64 - old_leaves
    }

    /// Writes the collapsed empty leaf a fully-deleted subtree leaves
    /// behind.
    fn retire_placeholder_stats_fix(&mut self, sim: &mut SimEngine, root: NodeId) {
        self.nodes[root as usize] = Node::Leaf {
            start: self.vind.len() as u32,
            count: 0,
        };
        self.meta[root as usize] = NodeMeta {
            live: 0,
            leaves: 1,
            cap: 0,
        };
        self.stats.num_leaves += 1;
        sim.store(self.node_addr(root), NODE_BYTES as u32);
        self.mark_dirty(root);
    }

    /// `fill_meta` over a spliced subtree, with slack leaf capacities.
    fn fill_meta_spliced(&mut self, id: NodeId, cap: u32) {
        self.fill_meta(id, Some(cap));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KdTreeConfig;
    use crate::search::Neighbor;

    fn random_cloud(n: usize, seed: u64, scale: f32) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * scale, (next() - 0.5) * scale, next() * 4.0))
            .collect()
    }

    fn sorted_hits(mut hits: Vec<Neighbor>) -> Vec<(u32, u32)> {
        hits.sort_unstable_by_key(|n| n.index);
        hits.iter()
            .map(|n| (n.index, n.dist_sq.to_bits()))
            .collect()
    }

    /// Searches on the mutated tree must equal a from-scratch build
    /// over the live points (indices remapped), bit for bit.
    fn assert_matches_fresh(tree: &KdTree, queries: &[Point3], radius: f32) {
        let live: Vec<u32> = tree.live_indices().collect();
        let pts: Vec<Point3> = live.iter().map(|&i| tree.points()[i as usize]).collect();
        let mut sim = SimEngine::disabled();
        let fresh = KdTree::build(pts, KdTreeConfig::default(), &mut sim);
        for (qi, &q) in queries.iter().enumerate() {
            let got = sorted_hits(tree.radius_search_simple(q, radius));
            let expect: Vec<(u32, u32)> = sorted_hits(
                fresh
                    .radius_search_simple(q, radius)
                    .into_iter()
                    .map(|n| Neighbor {
                        index: live[n.index as usize],
                        dist_sq: n.dist_sq,
                    })
                    .collect(),
            );
            assert_eq!(got, expect, "query {qi}");
        }
    }

    /// Full structural invariant sweep over a mutated tree.
    fn check_invariants(tree: &KdTree) {
        let mut seen = vec![false; tree.points().len()];
        let mut live_found = 0usize;
        fn walk(tree: &KdTree, id: NodeId, seen: &mut [bool], live: &mut usize) -> (u32, u32) {
            match tree.nodes()[id as usize] {
                Node::Leaf { start, count } => {
                    let meta = tree.meta[id as usize];
                    assert_eq!(meta.live, count, "leaf {id} meta live");
                    assert!(count <= meta.cap.max(count), "leaf {id} cap");
                    for i in start..start + count {
                        let idx = tree.vind()[i as usize];
                        assert!(tree.is_live(idx), "dead point {idx} in leaf {id}");
                        assert!(!seen[idx as usize], "point {idx} in two leaves");
                        seen[idx as usize] = true;
                        *live += 1;
                    }
                    (count, 1)
                }
                Node::Interior {
                    axis,
                    div_low,
                    div_high,
                    left,
                    right,
                    ..
                } => {
                    let (ll, lv) = walk(tree, left, seen, live);
                    let (rl, rv) = walk(tree, right, seen, live);
                    let meta = tree.meta[id as usize];
                    assert_eq!(meta.live, ll + rl, "interior {id} live");
                    assert_eq!(meta.leaves, lv + rv, "interior {id} leaves");
                    // Divider soundness: every live coordinate bounded.
                    fn coords(
                        tree: &KdTree,
                        id: NodeId,
                        axis: bonsai_geom::Axis,
                        out: &mut Vec<f32>,
                    ) {
                        match tree.nodes()[id as usize] {
                            Node::Leaf { start, count } => {
                                for i in start..start + count {
                                    let idx = tree.vind()[i as usize];
                                    out.push(tree.points()[idx as usize][axis]);
                                }
                            }
                            Node::Interior { left, right, .. } => {
                                coords(tree, left, axis, out);
                                coords(tree, right, axis, out);
                            }
                        }
                    }
                    let mut l = Vec::new();
                    let mut r = Vec::new();
                    coords(tree, left, axis, &mut l);
                    coords(tree, right, axis, &mut r);
                    for c in l {
                        assert!(c <= div_low, "left coord {c} above div_low {div_low}");
                    }
                    for c in r {
                        assert!(c >= div_high, "right coord {c} below div_high {div_high}");
                    }
                    (ll + rl, lv + rv)
                }
            }
        }
        if !tree.nodes().is_empty() {
            walk(tree, 0, &mut seen, &mut live_found);
        }
        assert_eq!(live_found, tree.num_live(), "live count vs leaves");
        for (i, &s) in seen.iter().enumerate() {
            assert_eq!(s, tree.is_live(i as u32), "point {i} liveness vs tree");
        }
    }

    #[test]
    fn insert_then_search_finds_the_point() {
        let cloud = random_cloud(500, 1, 40.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let p = Point3::new(1.25, -2.5, 0.75);
        let idx = tree.insert(&mut sim, p).unwrap();
        assert_eq!(idx, 500);
        assert!(tree.is_live(idx));
        let hits = tree.radius_search_simple(p, 0.05);
        assert!(hits.iter().any(|n| n.index == idx && n.dist_sq == 0.0));
        check_invariants(&tree);
    }

    #[test]
    fn delete_removes_and_is_idempotent() {
        let cloud = random_cloud(400, 2, 30.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        assert!(tree.delete(&mut sim, 123));
        assert!(!tree.delete(&mut sim, 123), "double delete is a no-op");
        assert!(!tree.is_live(123));
        assert_eq!(tree.num_live(), 399);
        let hits = tree.radius_search_simple(cloud[123], 10.0);
        assert!(hits.iter().all(|n| n.index != 123));
        check_invariants(&tree);
    }

    #[test]
    fn nonexistent_delete_is_rejected_without_traversal() {
        let cloud = random_cloud(100, 3, 10.0);
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        let mut tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        let before = sim.totals().micro_ops();
        assert!(!tree.delete(&mut sim, 100)); // out of range
        assert!(!tree.delete(&mut sim, u32::MAX));
        assert_eq!(sim.totals().micro_ops(), before, "no-op delete did work");
    }

    #[test]
    fn non_finite_inserts_are_rejected() {
        let cloud = random_cloud(50, 4, 10.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        for p in [
            Point3::new(f32::NAN, 0.0, 0.0),
            Point3::new(0.0, f32::INFINITY, 0.0),
            Point3::new(0.0, 0.0, f32::NEG_INFINITY),
        ] {
            assert!(tree.insert(&mut sim, p).is_none(), "{p:?} accepted");
        }
        assert_eq!(tree.num_live(), 50);
        assert_eq!(tree.points().len(), 50, "rejected insert grew the cloud");
    }

    #[test]
    fn update_on_empty_tree_behaves_like_build() {
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
        for (i, p) in random_cloud(40, 5, 15.0).into_iter().enumerate() {
            assert_eq!(tree.insert(&mut sim, p), Some(i as u32));
        }
        assert_eq!(tree.num_live(), 40);
        check_invariants(&tree);
        assert_matches_fresh(&tree, &random_cloud(10, 6, 15.0), 3.0);
    }

    #[test]
    fn heavy_churn_stays_equivalent_to_fresh_builds() {
        let cloud = random_cloud(1500, 7, 60.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let extra = random_cloud(1500, 8, 60.0);
        let queries = random_cloud(24, 9, 60.0);
        let mut next_del = 0u32;
        for round in 0..6 {
            // Delete a deterministic slice of live points…
            for k in 0..150 {
                let idx = (next_del + k * 7) % tree.points().len() as u32;
                tree.delete(&mut sim, idx);
            }
            next_del += 31;
            // …and insert a fresh batch.
            for k in 0..150 {
                let p = extra[(round * 150 + k) % extra.len()];
                tree.insert(&mut sim, p).unwrap();
            }
            check_invariants(&tree);
            assert_matches_fresh(&tree, &queries, 2.5);
        }
        let stats = tree.mutation_stats();
        assert!(stats.inserts == 900 && stats.deletes > 0);
        assert!(
            stats.leaf_appends
                + stats.leaf_relocations
                + stats.leaf_splits
                + stats.subtree_rebuilds
                > 0
        );
    }

    #[test]
    fn skewed_inserts_trigger_rebalance() {
        // A line cloud then a burst of points at one end: without the
        // α-balance rebuild the descent path degenerates.
        let cloud: Vec<Point3> = (0..256).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        for i in 0..1024 {
            tree.insert(&mut sim, Point3::new(256.0 + i as f32 * 0.01, 0.0, 0.0))
                .unwrap();
        }
        assert!(
            tree.mutation_stats().subtree_rebuilds > 0,
            "skewed growth never rebalanced: {:?}",
            tree.mutation_stats()
        );
        check_invariants(&tree);
        assert_matches_fresh(&tree, &[Point3::new(256.5, 0.0, 0.0)], 1.0);
    }

    #[test]
    fn deleting_everything_collapses_cleanly() {
        let cloud = random_cloud(300, 11, 25.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for i in 0..300 {
            assert!(tree.delete(&mut sim, i));
        }
        assert_eq!(tree.num_live(), 0);
        assert!(tree.radius_search_simple(cloud[0], 100.0).is_empty());
        check_invariants(&tree);
        // The tree still accepts inserts afterwards.
        let idx = tree.insert(&mut sim, Point3::ZERO).unwrap();
        assert_eq!(tree.radius_search_simple(Point3::ZERO, 0.1)[0].index, idx);
        check_invariants(&tree);
    }

    #[test]
    fn dirty_log_reports_touched_nodes_once() {
        let cloud = random_cloud(200, 13, 20.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        assert!(!tree.has_dirty_nodes(), "build leaves a clean log");
        tree.insert(&mut sim, Point3::new(0.5, 0.5, 0.5)).unwrap();
        assert!(tree.has_dirty_nodes());
        let dirty = tree.drain_dirty_nodes();
        assert!(!dirty.is_empty());
        let mut deduped = dirty.clone();
        deduped.dedup();
        assert_eq!(dirty, deduped, "log is sorted and deduplicated");
        assert!(!tree.has_dirty_nodes(), "drain clears the log");
    }

    /// Regression: criterion rebuilds must restore the balance
    /// invariant even when the tree was built with SlidingMidpoint,
    /// whose natural shape on skewed data violates α-balance. Before
    /// rebuilds forced median splits, every mutation on such a tree
    /// re-triggered a full-subtree rebuild (~n points re-inserted per
    /// delete).
    #[test]
    fn sliding_midpoint_rebuilds_do_not_thrash() {
        // Exponentially spaced coordinates: midpoint splits put almost
        // everything on one side.
        let cloud: Vec<Point3> = (0..4000)
            .map(|i| Point3::new(1.5f32.powi((i % 80) - 40) + i as f32 * 1e-7, 0.0, 0.0))
            .collect();
        let cfg = KdTreeConfig {
            split_rule: crate::build::SplitRule::SlidingMidpoint,
            ..KdTreeConfig::default()
        };
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), cfg, &mut sim);
        for i in 0..50 {
            assert!(tree.delete(&mut sim, i * 13));
        }
        let stats = tree.mutation_stats();
        assert!(
            stats.rebuilt_points < 50 * 4000 / 10,
            "criterion thrashed: {} points rebuilt for 50 deletes ({:?})",
            stats.rebuilt_points,
            stats
        );
        check_invariants(&tree);
        assert_matches_fresh(&tree, &cloud[..8], 0.5);
    }

    #[test]
    fn knn_sees_mutations_too() {
        let cloud = random_cloud(600, 15, 40.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let q = Point3::new(3.0, 3.0, 1.0);
        tree.delete(&mut sim, tree.radius_search_simple(q, 50.0)[0].index);
        let inserted = tree.insert(&mut sim, q).unwrap();
        let nn = tree.knn(&mut sim, q, 1);
        assert_eq!(nn[0].index, inserted);
        assert_eq!(nn[0].dist_sq, 0.0);
    }
}
