use bonsai_geom::Point3;
use bonsai_sim::{OpClass, SimEngine};

use crate::build::{sites, KdTree};
use crate::node::LeafId;
use crate::search::{LeafProcessor, Neighbor, SearchStats};

/// The baseline (PCL) leaf-inspection path: load every point of the leaf
/// in full `f32` precision, compute the squared distance (Eq. 2) and
/// classify against `r²` (Eq. 3).
///
/// Per point the processor charges what the compiled FLANN inner loop
/// executes: one 12-byte load from the *reordered* data matrix (FLANN's
/// `reorder=true` streams leaf points consecutively), 8 floating-point
/// ops (3 subs, 3 muls, 2 adds), loop/address arithmetic and a
/// classification branch. Hits additionally load `vind` to map the slot
/// back to a cloud index and commit three stores (`k_indices` push,
/// `k_sqr_distances` push, result-set size update — the PCL interface).
///
/// # Examples
///
/// ```
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::{BaselineLeafProcessor, KdTree, KdTreeConfig, SearchStats};
/// use bonsai_sim::SimEngine;
///
/// let cloud = vec![Point3::ZERO, Point3::new(0.1, 0.0, 0.0)];
/// let mut sim = SimEngine::disabled();
/// let tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
/// let mut proc = BaselineLeafProcessor::new(&mut sim);
/// let mut out = Vec::new();
/// let mut stats = SearchStats::default();
/// tree.radius_search(&mut sim, &mut proc, Point3::ZERO, 0.5, &mut out, &mut stats);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug)]
pub struct BaselineLeafProcessor {
    /// Simulated base of PCL's `k_indices` output vector.
    indices_addr: u64,
    /// Simulated base of PCL's `k_sqr_distances` output vector.
    dists_addr: u64,
}

/// Scalar loop/address ops per inspected point.
const PER_POINT_INT_OPS: u64 = 3;
/// Floating-point ops per inspected point (3 sub + 3 mul + 2 add).
const PER_POINT_FP_OPS: u64 = 8;

impl BaselineLeafProcessor {
    /// Creates a processor, reserving simulated space for the two PCL
    /// output vectors (`radiusSearch` fills `k_indices` and
    /// `k_sqr_distances` separately — two stores per accepted point).
    pub fn new(sim: &mut SimEngine) -> BaselineLeafProcessor {
        // Result vectors in the cluster pipeline hold at most a few
        // thousand neighbours; reserve generous regions.
        BaselineLeafProcessor {
            indices_addr: sim.alloc(32 * 1024, 64),
            dists_addr: sim.alloc(32 * 1024, 64),
        }
    }
}

impl LeafProcessor for BaselineLeafProcessor {
    fn process_leaf(
        &mut self,
        sim: &mut SimEngine,
        tree: &KdTree,
        _leaf: LeafId,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        stats.points_inspected += count as u64;
        stats.point_bytes_loaded += count as u64 * 12;
        let (xs, ys, zs) = tree.leaf_soa();
        for i in start..start + count {
            let idx = tree.vind()[i as usize];
            sim.load(tree.reordered_point_addr(i), 12);
            sim.exec(OpClass::IntAlu, PER_POINT_INT_OPS);
            sim.exec(OpClass::FpAlu, PER_POINT_FP_OPS);

            // Linear sweep over the leaf-contiguous SoA rows (the data
            // the modelled reordered-matrix load fetches).
            let dx = xs[i as usize] - query.x;
            let dy = ys[i as usize] - query.y;
            let dz = zs[i as usize] - query.z;
            let d_sq = dx * dx + dy * dy + dz * dz;
            let inside = d_sq <= r_sq;
            sim.branch(sites::CLASSIFY, inside);
            if inside {
                sim.load(tree.vind_entry_addr(i), 4);
                sim.store(self.indices_addr + out.len() as u64 * 4, 4);
                sim.store(self.dists_addr + out.len() as u64 * 4, 4);
                sim.store(self.indices_addr, 8); // result-set size fields
                out.push(Neighbor {
                    index: idx,
                    dist_sq: d_sq,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KdTreeConfig;
    use bonsai_sim::{Counters, CpuConfig, Kernel};

    fn line_cloud(n: usize) -> Vec<Point3> {
        (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn per_point_cost_charges() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let tree = KdTree::build(line_cloud(15), KdTreeConfig::default(), &mut sim);
        sim.reset_counters();
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        // One leaf of 15 points, all within radius.
        tree.radius_search(
            &mut sim,
            &mut proc,
            Point3::new(7.0, 0.0, 0.0),
            100.0,
            &mut out,
            &mut stats,
        );
        assert_eq!(out.len(), 15);
        let c: Counters = *sim.kernel_counters(Kernel::LeafScan);
        assert_eq!(
            c.loads, 30,
            "reordered point load per point + vind load per hit"
        );
        assert_eq!(
            c.stores, 45,
            "indices + dists + size update per hit (PCL interface)"
        );
        assert_eq!(c.ops_of(OpClass::FpAlu), 15 * PER_POINT_FP_OPS);
        assert_eq!(c.loaded_bytes, 15 * 16);
    }

    #[test]
    fn results_match_simple_search() {
        let cloud: Vec<Point3> = (0..200)
            .map(|i| Point3::new((i % 20) as f32, (i / 20) as f32, 0.0))
            .collect();
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        let q = Point3::new(10.0, 5.0, 0.0);
        let mut via_trait = Vec::new();
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut stats = SearchStats::default();
        tree.radius_search(&mut sim, &mut proc, q, 2.5, &mut via_trait, &mut stats);
        let simple = tree.radius_search_simple(q, 2.5);
        assert_eq!(via_trait, simple);
        assert!(stats.points_inspected >= via_trait.len() as u64);
    }
}
