//! The SIMD lane engine behind the leaf sweeps.
//!
//! K-D Bonsai's `SQDWE` instruction evaluates many squared-distance
//! lanes per cycle; the software reproduction gets the same effect by
//! sweeping each leaf's lane-padded SoA rows eight `f32` lanes at a
//! time. This module owns everything lane-shaped:
//!
//! * the lane geometry ([`LANES`], [`lane_padded`]) and the padding
//!   sentinel ([`PAD_COORD`]) every leaf's SoA tail is filled with,
//! * runtime backend selection ([`active_backend`]): AVX2 or SSE2 on
//!   `x86_64`, NEON on `aarch64`, detected once per process, plus a
//!   scalar fallback that is byte-for-byte the pre-SIMD loop,
//! * the vectorized baseline leaf sweep, used by
//!   `KdTree::sweep_leaf_visits` / `KdTree::scan_leaf_baseline` over
//!   collected [`LeafVisit`] lists (the compressed sweep lives in
//!   `bonsai-core`, built on the same geometry and dispatch).
//!
//! # Bit-identical by construction
//!
//! Every backend evaluates, per lane, exactly the scalar expression
//! `(x−qx)² + (y−qy)² + (z−qz)²` with the same operation order and no
//! FMA contraction, so the `dist_sq` a hit reports has the same bits
//! whichever backend ran. Hits are compacted from the lane mask in
//! ascending slot order, so the `Neighbor` *sequence* is identical
//! too. Padding slots hold [`PAD_COORD`] (`+∞`): their squared
//! distance is `+∞` (or NaN for a non-finite query), which no finite
//! `r²` admits, so sentinels can never produce a hit and the tail of a
//! partially-filled lane group costs nothing to mask.
//!
//! Everything here is compiled regardless of the `simd` cargo feature
//! so layouts stay stable; without the feature (or on other
//! architectures) [`active_backend`] reports [`LaneBackend::Scalar`]
//! and the sweeps decline, leaving the caller's scalar loop in charge.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use bonsai_geom::Point3;

use crate::search::Neighbor;

/// Lanes per sweep step: the 8-wide `f32` vector the hardware SQDWE
/// model and the AVX2 backend both use (narrower backends split it).
pub const LANES: usize = 8;

/// Sentinel coordinate of padding slots (`+∞`): farther than any
/// finite radius from any query, so a padded lane can never match.
pub const PAD_COORD: f32 = f32::INFINITY;

/// Sentinel `vind()` entry of padding slots. No live slot ever holds
/// it (cloud indices are dense `u32`s far below it), so layered caches
/// (the f16 rows of `bonsai-core`) use it to recognize padding when
/// they mirror the layout.
pub const PAD_SLOT: u32 = u32::MAX;

/// Rounds a leaf's point count up to its lane-padded slot footprint.
///
/// # Examples
///
/// ```
/// use bonsai_kdtree::simd::lane_padded;
/// assert_eq!(lane_padded(0), 0);
/// assert_eq!(lane_padded(7), 8);
/// assert_eq!(lane_padded(8), 8);
/// assert_eq!(lane_padded(15), 16);
/// ```
pub const fn lane_padded(n: usize) -> usize {
    (n + LANES - 1) & !(LANES - 1)
}

/// Which lane implementation [`active_backend`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneBackend {
    /// 8-wide `core::arch::x86_64` AVX2.
    Avx2,
    /// 4-wide `core::arch::x86_64` SSE2 (the `x86_64` baseline), run
    /// twice per lane group.
    Sse2,
    /// 4-wide `core::arch::aarch64` NEON, run twice per lane group.
    Neon,
    /// The plain scalar loop (no `simd` feature, an unsupported
    /// architecture, or a [`scalar_override`] in force).
    Scalar,
}

impl fmt::Display for LaneBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LaneBackend::Avx2 => "avx2",
            LaneBackend::Sse2 => "sse2",
            LaneBackend::Neon => "neon",
            LaneBackend::Scalar => "scalar",
        })
    }
}

/// The best backend this host supports, detected once per process
/// (independent of the `simd` feature and of any override).
pub fn detected_backend() -> LaneBackend {
    static DETECTED: OnceLock<LaneBackend> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                LaneBackend::Avx2
            } else {
                LaneBackend::Sse2
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            LaneBackend::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            LaneBackend::Scalar
        }
    })
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// The backend the sweeps will actually use right now.
///
/// [`LaneBackend::Scalar`] when the `simd` feature is off, the host
/// supports no vector backend, or a [`scalar_override`] is active.
pub fn active_backend() -> LaneBackend {
    // HB: none forgone — writers serialize on OVERRIDE_LOCK's mutex;
    // a racing reader at worst picks a backend one toggle stale, and
    // both backends return identical results.
    if !cfg!(feature = "simd") || FORCE_SCALAR.load(Ordering::Relaxed) {
        return LaneBackend::Scalar;
    }
    detected_backend()
}

/// Exclusive handle for toggling the process-wide scalar override —
/// how benches and equivalence tests run the scalar reference path in
/// a SIMD-enabled build. See [`scalar_override`].
#[derive(Debug)]
pub struct ScalarOverride {
    _serialize: MutexGuard<'static, ()>,
}

impl ScalarOverride {
    /// Forces (or releases) the scalar path for every sweep in the
    /// process while this handle is alive.
    pub fn set(&self, force_scalar: bool) {
        // HB: the `_serialize` MutexGuard held by this handle orders
        // every store against other override holders; readers need no
        // edge (see `active_backend`).
        FORCE_SCALAR.store(force_scalar, Ordering::Relaxed);
    }
}

impl Drop for ScalarOverride {
    fn drop(&mut self) {
        // HB: still under the handle's `_serialize` MutexGuard — the
        // release-on-drop store is ordered with `set` by the mutex.
        FORCE_SCALAR.store(false, Ordering::Relaxed);
    }
}

/// Acquires the scalar-override handle, serializing every caller that
/// wants to compare backends (concurrent tests would otherwise flip
/// the flag under each other — results would still be identical, by
/// the module invariant, but the comparison would silently test
/// scalar against scalar). The override is cleared on drop.
pub fn scalar_override() -> ScalarOverride {
    ScalarOverride {
        _serialize: OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner),
    }
}

/// One collected leaf visit of a two-phase radius search: the leaf's
/// id and its `(start, count)` slot range, in traversal order.
/// Produced by `KdTree::collect_leaves_in_radius`, consumed by the
/// range sweeps — collecting first lets a whole query's leaves run
/// through **one** backend dispatch with the lane constants hoisted,
/// instead of paying dispatch + broadcast per leaf.
pub type LeafVisit = (u32, u32, u32);

/// Vectorized baseline sweep over a query's collected leaf visits:
/// for each visit, in order, pushes a [`Neighbor`] for every slot
/// with `(x−q.x)² + (y−q.y)² + (z−q.z)² ≤ r_sq`, in ascending slot
/// order, with bit-identical `dist_sq` to the scalar loop. Returns
/// `false` without touching `out` when only the scalar backend is
/// active (the caller then runs its scalar loop).
///
/// The rows and `vind` must cover each visit's lane-padded footprint,
/// and slots beyond a leaf's `count` must hold [`PAD_COORD`] — the
/// layout invariant the builders and the mutation layer maintain.
#[allow(unused_variables)] // scalar-only builds use none of the inputs
#[allow(clippy::needless_return)] // the returns close per-arch cfg arms
#[allow(clippy::too_many_arguments)] // the flattened sweep state
#[allow(clippy::ptr_arg)] // the lane kernels push; scalar builds never touch `out`
#[inline]
pub(crate) fn sweep_baseline_visited(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    vind: &[u32],
    visited: &[LeafVisit],
    query: Point3,
    r_sq: f32,
    out: &mut Vec<Neighbor>,
) -> bool {
    let backend = active_backend();
    if backend == LaneBackend::Scalar {
        return false;
    }
    for &(_, start, count) in visited {
        let hi = start as usize + lane_padded(count as usize);
        // lint: allow(debug-assert-discipline) — this assert *is* the
        // bounds contract of the unsafe lane kernels below; eliding it
        // in release builds would turn a layout bug into UB.
        assert!(
            hi <= xs.len() && hi <= ys.len() && hi <= zs.len() && hi <= vind.len(),
            "leaf sweep past the SoA rows: start {start} count {count} rows {}",
            xs.len()
        );
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // SAFETY: bounds asserted above; AVX2 presence established by
        // `detected_backend` before that arm is ever selected; SSE2 is
        // part of the x86_64 baseline.
        unsafe {
            match backend {
                LaneBackend::Avx2 => {
                    x86::sweep_visited_avx2(xs, ys, zs, vind, visited, query, r_sq, out)
                }
                LaneBackend::Sse2 => {
                    x86::sweep_visited_sse2(xs, ys, zs, vind, visited, query, r_sq, out)
                }
                _ => unreachable!("x86_64 detects Avx2 or Sse2"),
            }
        }
        return true;
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        // SAFETY: bounds asserted above; NEON is part of the aarch64
        // baseline.
        unsafe {
            aarch64::sweep_visited_neon(xs, ys, zs, vind, visited, query, r_sq, out);
        }
        return true;
    }
    #[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        unreachable!("active_backend() is Scalar off x86_64/aarch64 or without the simd feature")
    }
}

/// The AVX2 hit-compaction primitive, shared with the compressed
/// sweep of `bonsai-core` (see its documentation in the `x86` module).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub use x86::compact_hits_avx2;

/// AVX2 / SSE2 lane kernels.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// Lane-compaction shuffle table: entry `m` lists the set bit
    /// positions of `m` in ascending order (tail entries repeat 0 and
    /// are never read past the popcount).
    static COMPACT: [[u32; 8]; 256] = compact_table();

    const fn compact_table() -> [[u32; 8]; 256] {
        let mut t = [[0u32; 8]; 256];
        let mut m = 0usize;
        while m < 256 {
            let mut k = 0usize;
            let mut j = 0usize;
            while j < 8 {
                if m & (1 << j) != 0 {
                    t[m][k] = j as u32;
                    k += 1;
                }
                j += 1;
            }
            m += 1;
        }
        t
    }

    /// Emits the hits of one 8-lane group in ascending lane order with
    /// two vector stores: the distance lanes and the group's `vind`
    /// entries are compacted through one shuffle-table permute, then
    /// interleaved into `(index, dist_sq)` pairs — `Neighbor`'s
    /// `repr(C)` layout — and written as whole registers (only the
    /// first `popcount(mask)` pairs become visible via `set_len`).
    /// Constant work per group however many lanes hit, where a
    /// bit-scan loop pays per hit.
    ///
    /// # Safety
    ///
    /// `mask` must be an 8-bit lane mask, slots `g..g + 8` must be
    /// within `vind`, and AVX2 must be available.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn compact_hits_avx2(
        vind: *const u32,
        g: usize,
        d: __m256,
        mask: u32,
        out: &mut Vec<Neighbor>,
    ) {
        let hits = mask.count_ones() as usize;
        // SAFETY: `mask` is an 8-bit lane mask, so it indexes the
        // 256-entry `COMPACT` table, and slots `g..g + 8` are within
        // `vind` per the function contract — the two unaligned loads
        // read only owned memory.
        let (first, second) = unsafe {
            let perm = _mm256_loadu_si256(COMPACT[mask as usize].as_ptr() as *const __m256i);
            let dv = _mm256_castps_si256(_mm256_permutevar8x32_ps(d, perm));
            let iv = _mm256_permutevar8x32_epi32(
                _mm256_loadu_si256(vind.add(g) as *const __m256i),
                perm,
            );
            // Interleave to (index, dist) pairs: unpack works per
            // 128-bit half (pairs 0,1|4,5 and 2,3|6,7), the cross-lane
            // permutes restore ascending order.
            let lo = _mm256_unpacklo_epi32(iv, dv);
            let hi = _mm256_unpackhi_epi32(iv, dv);
            (
                _mm256_permute2x128_si256::<0x20>(lo, hi),
                _mm256_permute2x128_si256::<0x31>(lo, hi),
            )
        };
        out.reserve(8);
        let len = out.len();
        // SAFETY: `reserve(8)` guarantees capacity for the two whole
        // 32-byte stores (8 `Neighbor` pairs past `len`); `set_len`
        // exposes only the first `hits ≤ 8` pairs, all initialized by
        // the stores.
        unsafe {
            let p = out.as_mut_ptr().add(len) as *mut __m256i;
            _mm256_storeu_si256(p, first);
            _mm256_storeu_si256(p.add(1), second);
            out.set_len(len + hits);
        }
    }

    /// # Safety
    ///
    /// Caller guarantees every visit's lane-padded footprint is within
    /// every slice and AVX2 is available.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // the flattened sweep state
    pub(super) unsafe fn sweep_visited_avx2(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        vind: &[u32],
        visited: &[LeafVisit],
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
    ) {
        let (px, py, pz) = (xs.as_ptr(), ys.as_ptr(), zs.as_ptr());
        // The lane constants broadcast once per *query*, not per leaf.
        let qx = _mm256_set1_ps(query.x);
        let qy = _mm256_set1_ps(query.y);
        let qz = _mm256_set1_ps(query.z);
        let rs = _mm256_set1_ps(r_sq);
        for &(_, start, count) in visited {
            let lo = start as usize;
            let hi = lo + lane_padded(count as usize);
            let mut g = lo;
            // Two lane groups per step (a full default-size leaf):
            // independent chains for the OoO core, one hit branch.
            while g + 2 * LANES <= hi {
                // SAFETY: `g + 2·LANES ≤ hi`, and the caller asserted
                // `hi` is within every lane-padded SoA row.
                let (d0, d1) = unsafe {
                    (
                        distance_lanes(px, py, pz, g, qx, qy, qz),
                        distance_lanes(px, py, pz, g + LANES, qx, qy, qz),
                    )
                };
                // Ordered ≤: false for the NaN a non-finite query
                // produces against the +∞ sentinel, exactly like the
                // scalar `<=`.
                let m0 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LE_OQ>(d0, rs)) as u32;
                let m1 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LE_OQ>(d1, rs)) as u32;
                if m0 | m1 != 0 {
                    let vp = vind.as_ptr();
                    // SAFETY: `m0`/`m1` are 8-bit movemask lane masks
                    // and both groups lie within `vind` (same padded
                    // footprint as the loads above); AVX2 is enabled
                    // on this fn.
                    unsafe {
                        if m0 != 0 {
                            compact_hits_avx2(vp, g, d0, m0, out);
                        }
                        if m1 != 0 {
                            compact_hits_avx2(vp, g + LANES, d1, m1, out);
                        }
                    }
                }
                g += 2 * LANES;
            }
            if g < hi {
                // SAFETY: `g < hi` with `hi` within every padded row,
                // and the mask passed on is the compare's 8-bit lane
                // mask over that same in-bounds group.
                unsafe {
                    let d = distance_lanes(px, py, pz, g, qx, qy, qz);
                    let mask = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LE_OQ>(d, rs)) as u32;
                    if mask != 0 {
                        compact_hits_avx2(vind.as_ptr(), g, d, mask, out);
                    }
                }
            }
        }
    }

    /// One 8-lane squared-distance group at slot `g`, with the scalar
    /// loop's exact association: `(dx² + dy²) + dz²`, no FMA.
    ///
    /// # Safety
    ///
    /// Caller guarantees slots `g..g + 8` are in bounds and AVX2 is
    /// available.
    #[target_feature(enable = "avx2")]
    #[inline]
    #[allow(clippy::too_many_arguments)] // lane kernel plumbing
    unsafe fn distance_lanes(
        px: *const f32,
        py: *const f32,
        pz: *const f32,
        g: usize,
        qx: __m256,
        qy: __m256,
        qz: __m256,
    ) -> __m256 {
        // SAFETY: slots `g..g + 8` are in bounds per the contract, so
        // each unaligned 8-lane load reads only owned row memory.
        let (dx, dy, dz) = unsafe {
            (
                _mm256_sub_ps(_mm256_loadu_ps(px.add(g)), qx),
                _mm256_sub_ps(_mm256_loadu_ps(py.add(g)), qy),
                _mm256_sub_ps(_mm256_loadu_ps(pz.add(g)), qz),
            )
        };
        _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz),
        )
    }

    /// # Safety
    ///
    /// Caller guarantees every visit's lane-padded footprint is within
    /// every slice (SSE2 is part of the `x86_64` baseline).
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)] // the flattened sweep state
    pub(super) unsafe fn sweep_visited_sse2(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        vind: &[u32],
        visited: &[LeafVisit],
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
    ) {
        let (px, py, pz) = (xs.as_ptr(), ys.as_ptr(), zs.as_ptr());
        let qx = _mm_set1_ps(query.x);
        let qy = _mm_set1_ps(query.y);
        let qz = _mm_set1_ps(query.z);
        let rs = _mm_set1_ps(r_sq);
        for &(_, start, count) in visited {
            let lo = start as usize;
            let hi = lo + lane_padded(count as usize);
            let mut g = lo;
            while g < hi {
                // SAFETY: `g..g + 4` is within the lane-padded rows
                // the caller asserted, so the three unaligned 4-lane
                // loads read only owned row memory.
                let d = unsafe {
                    let dx = _mm_sub_ps(_mm_loadu_ps(px.add(g)), qx);
                    let dy = _mm_sub_ps(_mm_loadu_ps(py.add(g)), qy);
                    let dz = _mm_sub_ps(_mm_loadu_ps(pz.add(g)), qz);
                    _mm_add_ps(
                        _mm_add_ps(_mm_mul_ps(dx, dx), _mm_mul_ps(dy, dy)),
                        _mm_mul_ps(dz, dz),
                    )
                };
                let mask = _mm_movemask_ps(_mm_cmple_ps(d, rs)) as u32;
                if mask != 0 {
                    let mut dv = [0.0f32; 4];
                    // SAFETY: `dv` is a 4-float stack buffer sized for
                    // the 4-lane store; the mask's set bits are `< 4`
                    // with `g + j` within `vind` for each (same padded
                    // footprint as the loads).
                    unsafe {
                        _mm_storeu_ps(dv.as_mut_ptr(), d);
                        push_mask_hits(vind, g, mask, &dv, out);
                    }
                }
                g += 4;
            }
        }
    }
}

/// NEON lane kernels.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod aarch64 {
    use super::*;
    use core::arch::aarch64::*;

    /// # Safety
    ///
    /// Caller guarantees every visit's lane-padded footprint is within
    /// every slice (NEON is part of the `aarch64` baseline).
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)] // the flattened sweep state
    pub(super) unsafe fn sweep_visited_neon(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        vind: &[u32],
        visited: &[LeafVisit],
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
    ) {
        let (px, py, pz) = (xs.as_ptr(), ys.as_ptr(), zs.as_ptr());
        let qx = vdupq_n_f32(query.x);
        let qy = vdupq_n_f32(query.y);
        let qz = vdupq_n_f32(query.z);
        let rs = vdupq_n_f32(r_sq);
        for &(_, start, count) in visited {
            let lo = start as usize;
            let hi = lo + lane_padded(count as usize);
            let mut g = lo;
            while g < hi {
                // SAFETY: `g..g + 4` is within the lane-padded rows
                // the caller asserted, so the three 4-lane loads read
                // only owned row memory. vmulq + vaddq, never vfmaq:
                // FMA contraction would change result bits relative to
                // the scalar loop.
                let (d, le) = unsafe {
                    let dx = vsubq_f32(vld1q_f32(px.add(g)), qx);
                    let dy = vsubq_f32(vld1q_f32(py.add(g)), qy);
                    let dz = vsubq_f32(vld1q_f32(pz.add(g)), qz);
                    let d = vaddq_f32(
                        vaddq_f32(vmulq_f32(dx, dx), vmulq_f32(dy, dy)),
                        vmulq_f32(dz, dz),
                    );
                    (d, vcleq_f32(d, rs))
                };
                if vmaxvq_u32(le) != 0 {
                    let mut dv = [0.0f32; 4];
                    let mut mv = [0u32; 4];
                    // SAFETY: `dv`/`mv` are 4-lane stack buffers sized
                    // for the stores; the mask built from `mv` only
                    // sets bits `< 4`, each with `g + j` within `vind`
                    // (same padded footprint as the loads).
                    unsafe {
                        vst1q_f32(dv.as_mut_ptr(), d);
                        vst1q_u32(mv.as_mut_ptr(), le);
                        let mut mask = 0u32;
                        for (j, &m) in mv.iter().enumerate() {
                            mask |= u32::from(m != 0) << j;
                        }
                        push_mask_hits(vind, g, mask, &dv, out);
                    }
                }
                g += 4;
            }
        }
    }
}

/// Compacts one lane group's hits in ascending slot order: lane `j` of
/// `mask` set means slot `base + j` is a hit with distance `dists[j]`.
/// One reservation covers the whole group, and the writes skip the
/// per-push capacity/bounds checks the optimizer cannot elide for a
/// `trailing_zeros`-derived lane index.
///
/// # Safety
///
/// `mask` must only have bits `< dists.len()` set, and `base + j` must
/// be within `vind` for every set bit `j`.
#[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline]
unsafe fn push_mask_hits(
    vind: &[u32],
    base: usize,
    mask: u32,
    dists: &[f32],
    out: &mut Vec<Neighbor>,
) {
    let hits = mask.count_ones() as usize;
    out.reserve(hits);
    let len = out.len();
    // SAFETY: `reserve(hits)` made room for `hits` writes past `len`;
    // every set bit `j` has `j < dists.len()` and `base + j` within
    // `vind` per the contract, and `set_len` exposes exactly the
    // `hits` pairs just written.
    unsafe {
        let mut p = out.as_mut_ptr().add(len);
        let mut bits = mask;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            p.write(Neighbor {
                index: *vind.get_unchecked(base + j),
                dist_sq: *dists.get_unchecked(j),
            });
            p = p.add(1);
            bits &= bits - 1;
        }
        out.set_len(len + hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_padding_rounds_up_to_lane_multiples() {
        for n in 0..64 {
            let p = lane_padded(n);
            assert!(
                p >= n && p.is_multiple_of(LANES) && p < n + LANES,
                "n {n} → {p}"
            );
        }
    }

    #[test]
    fn backend_is_stable_and_printable() {
        let a = detected_backend();
        let b = detected_backend();
        assert_eq!(a, b, "detection is cached");
        assert!(!a.to_string().is_empty());
        #[cfg(target_arch = "x86_64")]
        assert!(matches!(a, LaneBackend::Avx2 | LaneBackend::Sse2));
    }

    #[test]
    fn scalar_override_forces_and_restores() {
        {
            let ov = scalar_override();
            ov.set(true);
            assert_eq!(active_backend(), LaneBackend::Scalar);
            ov.set(false);
            if cfg!(feature = "simd") {
                assert_eq!(active_backend(), detected_backend());
            } else {
                assert_eq!(active_backend(), LaneBackend::Scalar);
            }
            ov.set(true);
        }
        // Drop clears the override even when left set.
        let _ov = scalar_override();
        if cfg!(feature = "simd") {
            assert_eq!(active_backend(), detected_backend());
        }
    }

    #[test]
    fn sentinel_lanes_never_match() {
        // A full +∞ pad group against a huge radius: no hits, whatever
        // backend runs.
        let xs = vec![PAD_COORD; LANES];
        let ys = vec![PAD_COORD; LANES];
        let zs = vec![PAD_COORD; LANES];
        let vind = vec![u32::MAX; LANES];
        let mut out = Vec::new();
        // One visit of a leaf whose live points were all deleted down
        // to a single slot, leaving 7 sentinel lanes in its group.
        let ran = sweep_baseline_visited(
            &xs,
            &ys,
            &zs,
            &vind,
            &[(0, 0, 1)],
            Point3::new(0.0, 0.0, 0.0),
            f32::MAX,
            &mut out,
        );
        assert!(out.is_empty());
        if cfg!(feature = "simd") && detected_backend() != LaneBackend::Scalar {
            assert!(ran, "a vector backend should have taken the sweep");
        }
    }
}
