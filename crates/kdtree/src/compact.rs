//! Criterion-ready fragmentation compaction: a full repack of the
//! tree's `vind`/SoA slot arrays and node pool.
//!
//! Relocations and subtree rebuilds abandon their old slot ranges
//! ([`KdTree::garbage_slots`] counts them, in lane-padded footprints)
//! and retire node-pool slots into a free list. On a long churn stream
//! neither is ever reclaimed, so the arrays grow without bound — the
//! classic ikd-Tree fragmentation problem, which that paper solves with
//! criterion-triggered re-building. [`KdTree::compact`] is the repack
//! primitive those criteria invoke:
//!
//! * every **reachable** node is renumbered in preorder (root stays 0,
//!   parents before children — the numbering a fresh build produces)
//!   and unreachable (free-list) pool slots are dropped;
//! * every leaf's lane-padded slot footprint is copied to its new,
//!   densely packed position, preserving the in-leaf point order and
//!   each leaf's capacity (slack leaves keep their slack), so the
//!   lane-padding invariant ([`KdTree::assert_lane_padding`]) holds by
//!   construction and `garbage_slots()` drops to zero;
//! * the returned [`CompactRemap`] records the old→new slot and node
//!   renumbering so layered caches (the compressed directory and f16
//!   rows of `bonsai-core`) can **move** their baked bytes instead of
//!   re-encoding anything.
//!
//! Compaction never changes the tree's *topology* — node parent/child
//! relationships, per-leaf point sets and in-leaf order are untouched —
//! so search results, their order, and every [`SearchStats`] counter
//! are bit-identical before and after. Only storage addresses move.
//! Point cloud indices are stable too: `points`/`alive` are not
//! touched, so reported `Neighbor::index` values cannot shift. (Full
//! reclamation of dead *points* needs an index-remapping rebuild — the
//! shard router's rolling `rebuild_shard` does that, because it owns
//! the local→global index translation.)
//!
//! [`SearchStats`]: crate::SearchStats

use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::build::KdTree;
use crate::node::{Node, NodeId, NODE_BYTES};

/// The old→new renumbering one [`KdTree::compact`] performed.
///
/// Both maps use [`CompactRemap::DROPPED`] for entries that no longer
/// exist: abandoned (garbage) slot ranges and unreachable node-pool
/// slots.
#[derive(Debug, Clone)]
pub struct CompactRemap {
    /// Old `vind`/SoA slot index → new slot index.
    pub slot_map: Vec<u32>,
    /// Old node-pool id → new node-pool id.
    pub node_map: Vec<u32>,
}

impl CompactRemap {
    /// Sentinel for a slot or node the compaction dropped.
    pub const DROPPED: u32 = u32::MAX;
}

impl KdTree {
    /// Repacks the `vind`/SoA slot arrays and the node pool, dropping
    /// every garbage slot and every retired (free-list) node. Returns
    /// the old→new renumbering so layered caches can replay it.
    ///
    /// After the call `garbage_slots()` is 0, the free list is empty,
    /// and [`assert_lane_padding`](KdTree::assert_lane_padding) holds.
    /// Search results, their order and all [`SearchStats`] counters are
    /// bit-identical to the pre-compaction tree in every mode; only
    /// storage moved. Pending dirty-log entries are renumbered through
    /// the same map, so a layered cache that compacts *with* the tree
    /// (see `BonsaiTree::compact`) stays consistent.
    ///
    /// The copy work (one load + store per live slot, one store per
    /// node) is charged to the `Build` kernel.
    ///
    /// [`SearchStats`]: crate::SearchStats
    pub fn compact(&mut self, sim: &mut SimEngine) -> CompactRemap {
        let old_slots = self.vind.len();
        let mut slot_map = vec![CompactRemap::DROPPED; old_slots];
        let mut node_map = vec![CompactRemap::DROPPED; self.nodes.len()];
        if self.nodes.is_empty() {
            // Nothing reachable: drop any stray state outright.
            self.vind.clear();
            self.leaf_x.clear();
            self.leaf_y.clear();
            self.leaf_z.clear();
            self.meta.clear();
            self.free_nodes.clear();
            self.dirty_nodes.clear();
            self.garbage_slots = 0;
            return CompactRemap { slot_map, node_map };
        }

        let prev = sim.set_kernel(Kernel::Build);
        // Preorder renumbering: parent first, left subtree, then right
        // — the order a fresh build emits, with the root staying 0.
        let mut order: Vec<NodeId> = Vec::with_capacity(self.nodes.len() - self.free_nodes.len());
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            node_map[id as usize] = order.len() as u32;
            order.push(id);
            if let Node::Interior { left, right, .. } = self.nodes[id as usize] {
                stack.push(right);
                stack.push(left);
            }
        }

        let mut nodes = Vec::with_capacity(order.len());
        let mut meta = Vec::with_capacity(order.len());
        let mut vind = Vec::with_capacity(old_slots - self.garbage_slots);
        let mut leaf_x = Vec::with_capacity(vind.capacity());
        let mut leaf_y = Vec::with_capacity(vind.capacity());
        let mut leaf_z = Vec::with_capacity(vind.capacity());
        for &old_id in &order {
            let new_id = nodes.len() as NodeId;
            let node = match self.nodes[old_id as usize] {
                Node::Leaf { start, count } => {
                    let fp = self.leaf_slot_footprint(old_id) as usize;
                    let new_start = vind.len() as u32;
                    for (k, i) in (start as usize..start as usize + fp).enumerate() {
                        let new_slot = new_start + k as u32;
                        slot_map[i] = new_slot;
                        let idx = self.vind[i];
                        // Live slots move like the build's reorder pass;
                        // padding slots are layout upkeep (no events).
                        if idx != crate::parts::PAD_SLOT {
                            sim.load(self.reordered_point_addr(i as u32), 12);
                            sim.store(self.reordered_point_addr(new_slot), 12);
                            sim.exec(OpClass::IntAlu, 2);
                        }
                        vind.push(idx);
                        leaf_x.push(self.leaf_x[i]);
                        leaf_y.push(self.leaf_y[i]);
                        leaf_z.push(self.leaf_z[i]);
                    }
                    Node::Leaf {
                        start: new_start,
                        count,
                    }
                }
                Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left,
                    right,
                } => Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left: node_map[left as usize],
                    right: node_map[right as usize],
                },
            };
            sim.store(self.node_addr(new_id), NODE_BYTES as u32);
            nodes.push(node);
            meta.push(self.meta[old_id as usize]);
        }
        sim.set_kernel(prev);

        debug_assert_eq!(
            vind.len() + self.garbage_slots,
            old_slots,
            "garbage_slots accounting drifted from the slot arrays"
        );
        self.nodes = nodes;
        self.meta = meta;
        self.vind = vind;
        self.leaf_x = leaf_x;
        self.leaf_y = leaf_y;
        self.leaf_z = leaf_z;
        self.garbage_slots = 0;
        self.free_nodes.clear();
        // Renumber (don't drop) the pending dirty log: a layered cache
        // that has not drained it yet must keep seeing the same leaves
        // under their new ids. Retired ids vanish with their slots.
        self.dirty_nodes = self
            .dirty_nodes
            .iter()
            .filter_map(|&id| {
                let new = node_map[id as usize];
                (new != CompactRemap::DROPPED).then_some(new)
            })
            .collect();
        CompactRemap { slot_map, node_map }
    }

    /// Host-side structural memory footprint, in bytes: the point
    /// cloud, the `vind`/SoA slot arrays (including garbage), the node
    /// pool and its per-node metadata. The observability hook of the
    /// long-stream soak bench — what compaction bounds.
    pub fn resident_bytes(&self) -> u64 {
        let slots = self.vind.len() as u64;
        let nodes = self.nodes.len() as u64;
        self.points.len() as u64 * 12
            + self.alive.len() as u64
            + slots * (4 + 3 * 4)
            + nodes * (NODE_BYTES + std::mem::size_of::<crate::mutate::NodeMeta>() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KdTreeConfig;
    use crate::scratch::SearchScratch;
    use crate::search::{Neighbor, SearchStats};
    use bonsai_geom::Point3;

    fn random_cloud(n: usize, seed: u64, scale: f32) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * scale, (next() - 0.5) * scale, next() * 4.0))
            .collect()
    }

    /// Churns a tree until it carries garbage slots and a free list.
    fn churned_tree(n: usize, seed: u64) -> (KdTree, Vec<Point3>) {
        let cloud = random_cloud(n, seed, 50.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let extra = random_cloud(n, seed + 1, 50.0);
        for round in 0..4 {
            for k in 0..n / 8 {
                tree.delete(
                    &mut sim,
                    ((round * 13 + k * 7) % tree.points().len()) as u32,
                );
            }
            for k in 0..n / 8 {
                tree.insert(&mut sim, extra[(round * n / 8 + k) % extra.len()])
                    .unwrap();
            }
        }
        (tree, cloud)
    }

    #[test]
    fn compact_drops_all_garbage_and_keeps_padding() {
        let (mut tree, _) = churned_tree(1200, 3);
        assert!(tree.garbage_slots() > 0, "churn never fragmented");
        let slots_before = tree.vind().len();
        let mut sim = SimEngine::disabled();
        let remap = tree.compact(&mut sim);
        assert_eq!(tree.garbage_slots(), 0);
        assert!(tree.vind().len() < slots_before);
        tree.assert_lane_padding();
        // Every live slot is mapped, every map target is in range and
        // unique.
        let mut seen = vec![false; tree.vind().len()];
        for &new in &remap.slot_map {
            if new == CompactRemap::DROPPED {
                continue;
            }
            assert!(!seen[new as usize], "slot {new} mapped twice");
            seen[new as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "unmapped new slot");
        // Node map covers exactly the reachable pool.
        let live_nodes = remap
            .node_map
            .iter()
            .filter(|&&n| n != CompactRemap::DROPPED)
            .count();
        assert_eq!(live_nodes, tree.nodes().len());
    }

    #[test]
    fn searches_and_stats_are_bit_identical_across_compaction() {
        let (mut tree, cloud) = churned_tree(1500, 7);
        let queries: Vec<Point3> = cloud.iter().step_by(41).copied().collect();
        let mut scratch = SearchScratch::new();
        let mut before: Vec<(Vec<Neighbor>, SearchStats)> = Vec::new();
        for &q in &queries {
            let mut out = Vec::new();
            let mut stats = SearchStats::default();
            tree.radius_search_fast(q, 2.5, &mut scratch, &mut out, &mut stats);
            before.push((out, stats));
        }
        let knn_before: Vec<Vec<Neighbor>> = {
            let mut sim = SimEngine::disabled();
            queries.iter().map(|&q| tree.knn(&mut sim, q, 7)).collect()
        };

        let mut sim = SimEngine::disabled();
        tree.compact(&mut sim);
        tree.assert_lane_padding();

        for (qi, &q) in queries.iter().enumerate() {
            let mut out = Vec::new();
            let mut stats = SearchStats::default();
            tree.radius_search_fast(q, 2.5, &mut scratch, &mut out, &mut stats);
            assert_eq!(out, before[qi].0, "query {qi}: hits moved");
            assert_eq!(stats, before[qi].1, "query {qi}: stats moved");
            let nn = tree.knn(&mut sim, q, 7);
            assert_eq!(nn, knn_before[qi], "query {qi}: knn moved");
        }
    }

    #[test]
    fn compact_preserves_mutability() {
        let (mut tree, cloud) = churned_tree(800, 11);
        let mut sim = SimEngine::disabled();
        tree.compact(&mut sim);
        // The compacted tree keeps accepting mutations and stays
        // equivalent to a fresh build.
        let p = Point3::new(3.3, -4.4, 1.1);
        let idx = tree.insert(&mut sim, p).unwrap();
        tree.delete(&mut sim, 5);
        let hits = tree.radius_search_simple(p, 0.05);
        assert!(hits.iter().any(|n| n.index == idx));
        assert!(tree
            .radius_search_simple(cloud[5], 10.0)
            .iter()
            .all(|n| n.index != 5));
        tree.assert_lane_padding();
    }

    #[test]
    fn compact_is_idempotent_and_safe_on_fresh_trees() {
        let cloud = random_cloud(600, 5, 30.0);
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let nodes_before = tree.nodes().to_vec();
        let vind_before = tree.vind().to_vec();
        tree.compact(&mut sim);
        // A fresh build is already preorder-numbered and densely
        // packed, so compaction is the identity on it.
        assert_eq!(tree.nodes(), &nodes_before[..]);
        assert_eq!(tree.vind(), &vind_before[..]);
        tree.compact(&mut sim);
        assert_eq!(tree.nodes(), &nodes_before[..]);
    }

    #[test]
    fn compact_on_empty_tree_is_a_no_op() {
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
        let remap = tree.compact(&mut sim);
        assert!(remap.slot_map.is_empty());
        assert!(remap.node_map.is_empty());
        assert!(tree.radius_search_simple(Point3::ZERO, 1.0).is_empty());
    }

    #[test]
    fn resident_bytes_shrink_with_compaction() {
        let (mut tree, _) = churned_tree(1200, 13);
        let before = tree.resident_bytes();
        let mut sim = SimEngine::disabled();
        tree.compact(&mut sim);
        assert!(
            tree.resident_bytes() < before,
            "compaction did not shrink the footprint ({before} bytes)"
        );
    }
}
