//! The pure (uninstrumented) subtree builder behind
//! [`KdTree::build_parallel`] and the criterion-triggered subtree
//! rebuilds of the mutation layer.
//!
//! [`build_subtree`] turns a set of point indices into a relocatable
//! [`SubtreeParts`]: preorder-numbered nodes whose leaf `start` fields
//! index a private `order` array. The caller splices the parts wherever
//! it needs them — `build_tree_parallel` makes them the whole tree,
//! [`KdTree::insert`](crate::KdTree::insert)'s re-balance splices them
//! over one violating subtree. The recursion fans its top levels across
//! scoped threads (the dinotree idiom: each half of a partition gets
//! its own worker until the workers run out), which is safe because the
//! two halves of a partition touch disjoint `order` ranges and build
//! disjoint node sets.
//!
//! The partitioning is byte-for-byte the sequential build's (same
//! median selection, same sliding-midpoint fallback), so the assembled
//! tree is **identical** to [`KdTree::build`]'s regardless of the
//! thread count — property-tested in this module and at the workspace
//! root.

use bonsai_geom::{Aabb, Axis, Point3};
use bonsai_sim::SimEngine;

use crate::build::{itertools_partition, BuildStats, KdTree, KdTreeConfig, SplitRule};
use crate::node::{Node, NodeId, NODE_BYTES};
use crate::simd::{lane_padded, LANES, PAD_COORD};
// The padding sentinel for leaf slack/lane tails in `order` and the
// tree's `vind`; defined (publicly) by the lane-engine module, since
// the SIMD sweeps and layered caches are what the sentinel protects.
pub(crate) use crate::simd::PAD_SLOT;

/// Minimum points in a range before the builder forks a worker for one
/// of its halves; below this the spawn costs more than the subtree.
const PARALLEL_MIN_POINTS: usize = 2048;

/// A built subtree, relative to itself: nodes are numbered in preorder
/// starting at 0 (the subtree root), and leaf `start` offsets index
/// [`SubtreeParts::order`].
#[derive(Debug)]
pub(crate) struct SubtreeParts {
    /// Preorder node pool of the subtree.
    pub nodes: Vec<Node>,
    /// The `vind` arrangement of the subtree's points. Each leaf owns
    /// a lane-padded footprint of consecutive slots —
    /// `lane_padded(count)` packed, `lane_padded(max_leaf_points)`
    /// with slack — the tail padded with [`PAD_SLOT`].
    pub order: Vec<u32>,
    /// Shape statistics of the subtree (`max_depth` relative to its
    /// root).
    pub stats: BuildStats,
}

/// Build configuration of one [`build_subtree`] call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubtreeConfig {
    pub tree: KdTreeConfig,
    /// Pad every leaf's `order` range to the full (lane-padded)
    /// `max_leaf_points` capacity so later inserts append in place
    /// instead of relocating the leaf. The initial full build stays
    /// packed apart from its lane-padding tails; only mutation-created
    /// leaves carry slack.
    pub slack: bool,
    /// Worker threads the recursion may still fork (1 = sequential).
    pub threads: usize,
}

/// Builds a subtree over `idxs` (rearranged in place exactly as the
/// sequential build would rearrange the same `vind` range).
pub(crate) fn build_subtree(
    points: &[Point3],
    idxs: &mut [u32],
    cfg: SubtreeConfig,
) -> SubtreeParts {
    debug_assert!(!idxs.is_empty(), "build_subtree over an empty range");
    build_rec(points, idxs, cfg, cfg.threads, 0)
}

fn build_rec(
    points: &[Point3],
    idxs: &mut [u32],
    cfg: SubtreeConfig,
    threads: usize,
    depth: u32,
) -> SubtreeParts {
    let count = idxs.len();
    let m = cfg.tree.max_leaf_points;
    if count <= m {
        let mut order = idxs.to_vec();
        // Every leaf owns a lane-padded slot footprint; slack leaves
        // additionally reserve the full `m`-point capacity so later
        // inserts append in place.
        let footprint = if cfg.slack {
            lane_padded(m)
        } else {
            lane_padded(count)
        };
        order.resize(footprint, PAD_SLOT);
        return SubtreeParts {
            nodes: vec![Node::Leaf {
                start: 0,
                count: count as u32,
            }],
            order,
            stats: BuildStats {
                num_leaves: 1,
                num_interior: 0,
                max_depth: depth,
            },
        };
    }

    // lint: allow(panic-free-serving) — build recursion invariant:
    // every partition range holds at least one point.
    let bbox = Aabb::from_points(idxs.iter().map(|&i| points[i as usize]))
        .expect("non-empty range has a bounding box");
    let axis = bbox.widest_axis();
    let mid = match cfg.tree.split_rule {
        SplitRule::Median => partition_median(points, idxs, axis),
        SplitRule::SlidingMidpoint => partition_midpoint(points, idxs, axis, bbox.center()[axis]),
    };
    let div_low = max_coord(points, &idxs[..mid], axis);
    let div_high = min_coord(points, &idxs[mid..], axis);
    let split_val = 0.5 * (div_low + div_high);

    let (left_idxs, right_idxs) = idxs.split_at_mut(mid);
    let fork = threads > 1 && count >= PARALLEL_MIN_POINTS;
    let (left, right) = if fork {
        let lt = threads / 2;
        let rt = threads - lt;
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| build_rec(points, left_idxs, cfg, lt, depth + 1));
            let right = build_rec(points, right_idxs, cfg, rt, depth + 1);
            // lint: allow(panic-free-serving) — join() only fails when
            // the worker panicked; re-raising is correct propagation.
            (handle.join().expect("subtree build worker panicked"), right)
        })
    } else {
        (
            build_rec(points, left_idxs, cfg, 1, depth + 1),
            build_rec(points, right_idxs, cfg, 1, depth + 1),
        )
    };

    // Stitch in the sequential numbering: parent first, then the whole
    // left subtree, then the right (the preorder `build_range` emits).
    let left_nodes = left.nodes.len() as NodeId;
    let left_slots = left.order.len() as u32;
    let mut nodes = Vec::with_capacity(1 + left.nodes.len() + right.nodes.len());
    nodes.push(Node::Interior {
        axis,
        split_val,
        div_low,
        div_high,
        left: 1,
        right: 1 + left_nodes,
    });
    nodes.extend(left.nodes.iter().map(|n| shift_node(n, 1, 0)));
    nodes.extend(
        right
            .nodes
            .iter()
            .map(|n| shift_node(n, 1 + left_nodes, left_slots)),
    );
    let mut order = left.order;
    order.extend_from_slice(&right.order);
    SubtreeParts {
        nodes,
        order,
        stats: BuildStats {
            num_leaves: left.stats.num_leaves + right.stats.num_leaves,
            num_interior: left.stats.num_interior + right.stats.num_interior + 1,
            max_depth: left.stats.max_depth.max(right.stats.max_depth).max(depth),
        },
    }
}

/// Re-bases one local node: child ids shift by `id_off`, leaf starts by
/// `slot_off`.
fn shift_node(node: &Node, id_off: NodeId, slot_off: u32) -> Node {
    match *node {
        Node::Leaf { start, count } => Node::Leaf {
            start: start + slot_off,
            count,
        },
        Node::Interior {
            axis,
            split_val,
            div_low,
            div_high,
            left,
            right,
        } => Node::Interior {
            axis,
            split_val,
            div_low,
            div_high,
            left: left + id_off,
            right: right + id_off,
        },
    }
}

/// Median partition of `idxs` on `axis`; both sides non-empty. Same
/// selection as the instrumented `partition_median`.
fn partition_median(points: &[Point3], idxs: &mut [u32], axis: Axis) -> usize {
    let mid = idxs.len() / 2;
    idxs.select_nth_unstable_by(mid, |&a, &b| {
        points[a as usize][axis].total_cmp(&points[b as usize][axis])
    });
    mid
}

/// Sliding-midpoint partition, degenerating to the median exactly like
/// the instrumented `partition_midpoint`.
fn partition_midpoint(points: &[Point3], idxs: &mut [u32], axis: Axis, threshold: f32) -> usize {
    let mid = itertools_partition(idxs, |&i| points[i as usize][axis] < threshold);
    if mid == 0 || mid == idxs.len() {
        partition_median(points, idxs, axis)
    } else {
        mid
    }
}

fn max_coord(points: &[Point3], idxs: &[u32], axis: Axis) -> f32 {
    idxs.iter()
        .map(|&i| points[i as usize][axis])
        .fold(f32::NEG_INFINITY, f32::max)
}

fn min_coord(points: &[Point3], idxs: &[u32], axis: Axis) -> f32 {
    idxs.iter()
        .map(|&i| points[i as usize][axis])
        .fold(f32::INFINITY, f32::min)
}

/// Resolves a requested worker count: `0` means available parallelism.
/// Without the `parallel` feature the result is always 1.
pub(crate) fn resolve_build_threads(threads: usize) -> usize {
    if cfg!(feature = "parallel") {
        if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
    } else {
        1
    }
}

/// The whole-tree assembly behind [`KdTree::build_parallel`].
pub(crate) fn build_tree_parallel(
    points: Vec<Point3>,
    cfg: KdTreeConfig,
    threads: usize,
) -> KdTree {
    assert!(
        (1..=16).contains(&cfg.max_leaf_points),
        "max_leaf_points must be in 1..=16, got {}",
        cfg.max_leaf_points
    );
    let n = points.len();
    let mut sim = SimEngine::disabled();
    let points_addr = sim.alloc(n as u64 * crate::build::POINT_STRIDE, 64);
    // Same lane-padded bound as the instrumented build: each (non-
    // empty) leaf pads to at most LANES − 1 extra slots.
    let padded_bound = n as u64 * LANES as u64;
    let vind_addr = sim.alloc(padded_bound * 4, 64);
    let nodes_addr = sim.alloc((2 * n as u64 + 1) * NODE_BYTES, 64);
    let reordered_addr = sim.alloc(padded_bound * crate::build::REORDERED_STRIDE, 64);

    let mut idxs: Vec<u32> = (0..n as u32).collect();
    let (nodes, vind, stats) = if n == 0 {
        (Vec::new(), Vec::new(), BuildStats::default())
    } else {
        let parts = build_subtree(
            &points,
            &mut idxs,
            SubtreeConfig {
                tree: cfg,
                slack: false,
                threads: resolve_build_threads(threads),
            },
        );
        // `order` is the permuted range plus each leaf's lane-padding
        // tail — exactly the layout the sequential build's padding
        // pass produces.
        (parts.nodes, parts.order, parts.stats)
    };

    let mut leaf_x = Vec::with_capacity(vind.len());
    let mut leaf_y = Vec::with_capacity(vind.len());
    let mut leaf_z = Vec::with_capacity(vind.len());
    for &idx in &vind {
        if idx == PAD_SLOT {
            leaf_x.push(PAD_COORD);
            leaf_y.push(PAD_COORD);
            leaf_z.push(PAD_COORD);
            continue;
        }
        let p = points[idx as usize];
        leaf_x.push(p.x);
        leaf_y.push(p.y);
        leaf_z.push(p.z);
    }

    let mut tree = KdTree {
        points,
        vind,
        nodes,
        leaf_x,
        leaf_y,
        leaf_z,
        cfg,
        stats,
        alive: vec![true; n],
        num_live: n,
        meta: Vec::new(),
        garbage_slots: 0,
        free_nodes: Vec::new(),
        dirty_nodes: Vec::new(),
        mut_stats: crate::mutate::MutationStats::default(),
        points_addr,
        vind_addr,
        nodes_addr,
        reordered_addr,
    };
    tree.rebuild_meta();
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_cloud(n: usize, seed: u64, scale: f32) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * scale, (next() - 0.5) * scale, next() * 4.0))
            .collect()
    }

    #[test]
    fn parallel_build_is_bitwise_identical_to_sequential() {
        for seed in [1, 5, 9] {
            let cloud = random_cloud(6000, seed, 80.0);
            let mut sim = SimEngine::disabled();
            let seq = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
            for threads in [1, 2, 3, 8] {
                let par = KdTree::build_parallel(cloud.clone(), KdTreeConfig::default(), threads);
                assert_eq!(par.nodes(), seq.nodes(), "seed {seed} threads {threads}");
                assert_eq!(par.vind(), seq.vind(), "seed {seed} threads {threads}");
                assert_eq!(
                    par.leaf_soa(),
                    seq.leaf_soa(),
                    "seed {seed} threads {threads}"
                );
                assert_eq!(par.build_stats(), seq.build_stats());
            }
        }
    }

    #[test]
    fn parallel_build_matches_for_sliding_midpoint_and_tiny_clouds() {
        let cfg = KdTreeConfig {
            split_rule: SplitRule::SlidingMidpoint,
            ..KdTreeConfig::default()
        };
        for n in [0, 1, 15, 16, 17, 300] {
            let cloud = random_cloud(n, 3, 20.0);
            let mut sim = SimEngine::disabled();
            let seq = KdTree::build(cloud.clone(), cfg, &mut sim);
            let par = KdTree::build_parallel(cloud, cfg, 4);
            assert_eq!(par.nodes(), seq.nodes(), "n {n}");
            assert_eq!(par.vind(), seq.vind(), "n {n}");
        }
    }

    #[test]
    fn slack_parts_pad_every_leaf_to_capacity() {
        let cloud = random_cloud(500, 7, 50.0);
        let mut idxs: Vec<u32> = (0..cloud.len() as u32).collect();
        let cfg = SubtreeConfig {
            tree: KdTreeConfig::default(),
            slack: true,
            threads: 1,
        };
        let parts = build_subtree(&cloud, &mut idxs, cfg);
        let m = cfg.tree.max_leaf_points;
        let footprint = lane_padded(m);
        assert_eq!(
            parts.order.len(),
            parts.stats.num_leaves as usize * footprint,
            "every slack leaf owns a lane-padded m-slot footprint"
        );
        let mut seen = vec![false; cloud.len()];
        for node in &parts.nodes {
            if let Node::Leaf { start, count } = *node {
                assert!(count as usize <= m);
                for s in start..start + count {
                    let idx = parts.order[s as usize];
                    assert_ne!(idx, PAD_SLOT);
                    assert!(!seen[idx as usize], "point {idx} twice");
                    seen[idx as usize] = true;
                }
                for s in start + count..start + footprint as u32 {
                    assert_eq!(parts.order[s as usize], PAD_SLOT);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn packed_parts_lane_pad_every_leaf() {
        let cloud = random_cloud(777, 11, 40.0);
        let mut idxs: Vec<u32> = (0..cloud.len() as u32).collect();
        let cfg = SubtreeConfig {
            tree: KdTreeConfig::default(),
            slack: false,
            threads: 1,
        };
        let parts = build_subtree(&cloud, &mut idxs, cfg);
        let mut slots = 0usize;
        for node in &parts.nodes {
            if let Node::Leaf { start, count } = *node {
                assert_eq!(start as usize % LANES, 0, "leaf starts lane-aligned");
                slots += lane_padded(count as usize);
                for s in start + count..start + lane_padded(count as usize) as u32 {
                    assert_eq!(parts.order[s as usize], PAD_SLOT);
                }
            }
        }
        assert_eq!(parts.order.len(), slots);
        assert_eq!(
            parts.order.iter().filter(|&&o| o != PAD_SLOT).count(),
            cloud.len()
        );
    }
}
