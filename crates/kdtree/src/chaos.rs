//! Deterministic fault injection for [`KdTree`] internals (`chaos`
//! feature only).
//!
//! These hooks corrupt a live tree the way a stray write or a flipped
//! bit would, in ways the [auditor](crate::audit) is *guaranteed* to
//! flag — the chaos test suite uses them to prove the audit coverage
//! and the self-healing layer above. Every mutation is driven by a
//! [`ChaosRng`] so a failing run reproduces from its `u64` seed alone.
//!
//! None of this is compiled into normal builds: the module (and the
//! methods it adds to [`KdTree`]) exist only under `--features chaos`.

use crate::build::KdTree;
use crate::node::{Node, NodeId};

/// A tiny deterministic generator (splitmix64) for fault planning.
/// Not a statistical RNG — it only needs to be seedable, fast and
/// stable across platforms so chaos runs replay exactly.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Seeds the generator. Distinct seeds give unrelated streams; the
    /// same seed always gives the same stream.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Reachable nodes satisfying `pick`, in walk order.
fn reachable_matching(tree: &KdTree, pick: impl Fn(&Node) -> bool) -> Vec<NodeId> {
    let mut out = Vec::new();
    if tree.nodes.is_empty() {
        return out;
    }
    let mut stack = vec![0 as NodeId];
    while let Some(id) = stack.pop() {
        let node = tree.nodes[id as usize];
        if pick(&node) {
            out.push(id);
        }
        if let Node::Interior { left, right, .. } = node {
            stack.push(left);
            stack.push(right);
        }
    }
    out
}

impl KdTree {
    /// Chaos hook: duplicates one live `vind` entry over a neighbouring
    /// slot of the same leaf, breaking the slot↔point bijection (the
    /// overwritten point keeps its alive bit but loses its only slot;
    /// the duplicated point gains two). Returns `false` when no leaf
    /// holds two points (nothing corrupted).
    ///
    /// Guaranteed to surface as at least one `SlotBijection` violation.
    pub fn chaos_duplicate_vind(&mut self, rng: &mut ChaosRng) -> bool {
        let leaves = reachable_matching(
            self,
            |n| matches!(n, Node::Leaf { count, .. } if *count >= 2),
        );
        if leaves.is_empty() {
            return false;
        }
        let id = leaves[rng.below(leaves.len())];
        let Node::Leaf { start, count } = self.nodes[id as usize] else {
            return false;
        };
        let a = rng.below(count as usize);
        let b = (a + 1 + rng.below(count as usize - 1)) % count as usize;
        let (a, b) = (start as usize + a, start as usize + b);
        self.vind[b] = self.vind[a];
        true
    }

    /// Chaos hook: skews one interior node's `div_low` above its split
    /// value — the shape a torn divider write takes. Returns `false`
    /// on a tree without interior nodes.
    ///
    /// Guaranteed to surface as a `DividerOrder` violation
    /// (`div_low ≤ split_val` is maintained exactly by build and
    /// insert).
    pub fn chaos_skew_divider(&mut self, rng: &mut ChaosRng) -> bool {
        let interiors = reachable_matching(self, |n| !n.is_leaf());
        if interiors.is_empty() {
            return false;
        }
        let id = interiors[rng.below(interiors.len())];
        if let Node::Interior {
            split_val, div_low, ..
        } = &mut self.nodes[id as usize]
        {
            // An offset that survives f32 rounding at any magnitude.
            *div_low = *split_val + split_val.abs().max(1.0);
            true
        } else {
            false
        }
    }

    /// Chaos hook: drifts the `garbage_slots` counter by a small random
    /// amount, the shape silent accounting rot takes.
    ///
    /// Guaranteed to surface as an `Accounting` violation.
    pub fn chaos_skew_garbage(&mut self, rng: &mut ChaosRng) -> bool {
        self.garbage_slots += 1 + rng.below(7);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::ViolationKind;
    use crate::build::KdTreeConfig;
    use bonsai_geom::Point3;
    use bonsai_sim::SimEngine;

    fn tree(n: usize) -> KdTree {
        let cloud: Vec<Point3> = (0..n)
            .map(|i| {
                Point3::new(
                    (i % 17) as f32 * 0.7,
                    (i % 23) as f32 * 0.5,
                    (i % 5) as f32 * 0.3,
                )
            })
            .collect();
        KdTree::build(cloud, KdTreeConfig::default(), &mut SimEngine::disabled())
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(ChaosRng::new(1).next_u64(), ChaosRng::new(2).next_u64());
    }

    #[test]
    fn each_kdtree_fault_is_audit_detected() {
        for seed in 0..5u64 {
            let mut rng = ChaosRng::new(seed);
            let mut t = tree(400);
            assert!(t.chaos_duplicate_vind(&mut rng), "seed {seed}");
            assert!(
                t.audit()
                    .iter()
                    .any(|v| v.kind == ViolationKind::SlotBijection),
                "seed {seed}"
            );

            let mut t = tree(400);
            assert!(t.chaos_skew_divider(&mut rng), "seed {seed}");
            assert!(
                t.audit()
                    .iter()
                    .any(|v| v.kind == ViolationKind::DividerOrder),
                "seed {seed}"
            );

            let mut t = tree(400);
            assert!(t.chaos_skew_garbage(&mut rng), "seed {seed}");
            assert!(
                t.audit()
                    .iter()
                    .any(|v| v.kind == ViolationKind::Accounting),
                "seed {seed}"
            );
        }
    }
}
