use bonsai_geom::{Aabb, Axis, Point3};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::costs::TraversalCosts;
use crate::mutate::{MutationStats, NodeMeta};
use crate::node::{Node, NodeId, NODE_BYTES};
use crate::parts::PAD_SLOT;
use crate::simd::{lane_padded, LANES, PAD_COORD};

/// How an interior node chooses its split threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitRule {
    /// Split at the median coordinate (the paper's description of the
    /// PCL build: "the median value in coordinate c … is found").
    #[default]
    Median,
    /// FLANN's sliding-midpoint rule: split at the bounding-box centre,
    /// sliding to the nearest point when one side would be empty. Used
    /// by the `ablation_split_rule` bench.
    SlidingMidpoint,
}

/// Construction parameters.
///
/// # Examples
///
/// ```
/// use bonsai_kdtree::KdTreeConfig;
/// assert_eq!(KdTreeConfig::default().max_leaf_points, 15); // the PCL default
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KdTreeConfig {
    /// Maximum points per leaf (`m`). PCL defaults to 15; the ZipPts
    /// buffer supports up to 16.
    pub max_leaf_points: usize,
    /// Split-threshold rule.
    pub split_rule: SplitRule,
}

impl Default for KdTreeConfig {
    fn default() -> KdTreeConfig {
        KdTreeConfig {
            max_leaf_points: 15,
            split_rule: SplitRule::Median,
        }
    }
}

/// Shape statistics recorded while building.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Number of leaves.
    pub num_leaves: u32,
    /// Number of interior nodes.
    pub num_interior: u32,
    /// Deepest leaf depth (root = 0).
    pub max_depth: u32,
}

/// The bucketed k-d tree. See the [crate docs](crate) for an overview.
#[derive(Debug, Clone)]
pub struct KdTree {
    pub(crate) points: Vec<Point3>,
    pub(crate) vind: Vec<u32>,
    pub(crate) nodes: Vec<Node>,
    /// Leaf-contiguous SoA copy of the cloud, baked by the reorder pass:
    /// slot `i` holds `points[vind[i]]`, so a leaf scan is one linear
    /// sweep over three dense `f32` rows instead of an indexed gather.
    /// This is the host-side realization of FLANN's `reorder=true`
    /// matrix the simulated layout already modelled.
    pub(crate) leaf_x: Vec<f32>,
    pub(crate) leaf_y: Vec<f32>,
    pub(crate) leaf_z: Vec<f32>,
    pub(crate) cfg: KdTreeConfig,
    pub(crate) stats: BuildStats,
    /// Liveness of each point index: `false` after [`KdTree::delete`].
    pub(crate) alive: Vec<bool>,
    /// Number of `true` entries in `alive`.
    pub(crate) num_live: usize,
    /// Per-node mutation bookkeeping (subtree live counts, leaf counts,
    /// leaf slot capacities), parallel to `nodes`.
    pub(crate) meta: Vec<NodeMeta>,
    /// `vind`/SoA slots abandoned by leaf relocations and subtree
    /// rebuilds (fragmentation; reclaimed only by a full rebuild).
    pub(crate) garbage_slots: usize,
    /// Node-pool slots freed by subtree rebuilds, reusable by later
    /// rebuilds so churn does not grow the pool unboundedly.
    pub(crate) free_nodes: Vec<NodeId>,
    /// Node ids touched since the last [`KdTree::drain_dirty_nodes`] —
    /// the invalidation feed of layered caches (the compressed-leaf
    /// directory of `bonsai-core`).
    pub(crate) dirty_nodes: Vec<NodeId>,
    /// Mutation counters.
    pub(crate) mut_stats: MutationStats,
    /// Simulated base of the 16-byte-stride point array (PCL `PointXYZ`
    /// is 16 bytes: x, y, z + SSE padding).
    pub(crate) points_addr: u64,
    /// Simulated base of the reordered index array.
    pub(crate) vind_addr: u64,
    /// Simulated base of the node pool.
    pub(crate) nodes_addr: u64,
    /// Simulated base of the *reordered* point-data matrix: FLANN's
    /// `reorder=true` (the PCL default) copies the points into `vind`
    /// order after building, so leaf scans read consecutive 12-byte rows
    /// instead of gathering through the index array.
    pub(crate) reordered_addr: u64,
}

/// Simulated bytes per stored point (PCL `PointXYZ` stride).
pub(crate) const POINT_STRIDE: u64 = 16;

/// Simulated bytes per row of the reordered FLANN data matrix
/// (3 × f32, densely packed).
pub(crate) const REORDERED_STRIDE: u64 = 12;

impl KdTree {
    /// Builds a tree over `points`, charging construction work to the
    /// `Build` kernel of `sim`.
    ///
    /// An empty cloud yields an empty tree (searches return nothing).
    pub fn build(points: Vec<Point3>, cfg: KdTreeConfig, sim: &mut SimEngine) -> KdTree {
        assert!(
            (1..=bonsai_isa_max_leaf()).contains(&cfg.max_leaf_points),
            "max_leaf_points must be in 1..=16, got {}",
            cfg.max_leaf_points
        );
        let n = points.len();
        let points_addr = sim.alloc(n as u64 * POINT_STRIDE, 64);
        // The vind/reordered regions hold lane-padded leaf footprints:
        // every leaf is non-empty and pads to at most LANES − 1 extra
        // slots, so n · LANES slots bound any tree shape.
        let padded_bound = n as u64 * LANES as u64;
        let vind_addr = sim.alloc(padded_bound * 4, 64);
        // Node-pool bound: every interior split leaves both sides
        // non-empty, so there are at most 2n − 1 nodes.
        let nodes_addr = sim.alloc((2 * n as u64 + 1) * NODE_BYTES, 64);
        let reordered_addr = sim.alloc(padded_bound * REORDERED_STRIDE, 64);

        let mut tree = KdTree {
            points,
            vind: (0..n as u32).collect(),
            nodes: Vec::new(),
            leaf_x: Vec::new(),
            leaf_y: Vec::new(),
            leaf_z: Vec::new(),
            cfg,
            stats: BuildStats::default(),
            alive: vec![true; n],
            num_live: n,
            meta: Vec::new(),
            garbage_slots: 0,
            free_nodes: Vec::new(),
            dirty_nodes: Vec::new(),
            mut_stats: MutationStats::default(),
            points_addr,
            vind_addr,
            nodes_addr,
            reordered_addr,
        };
        if n > 0 {
            let prev = sim.set_kernel(Kernel::Build);
            let costs = TraversalCosts::default_model();
            tree.build_range(sim, &costs, 0, n, 0);
            tree.apply_lane_padding();
            // FLANN's reorder pass: copy the points into vind order so
            // leaf scans stream instead of gathering. Host-side this
            // bakes the leaf-contiguous SoA rows the fast scans sweep;
            // padding slots get the +∞ sentinel (layout upkeep, no
            // simulated events — the paper's layout carries no pads).
            let slots = tree.vind.len();
            tree.leaf_x.reserve_exact(slots);
            tree.leaf_y.reserve_exact(slots);
            tree.leaf_z.reserve_exact(slots);
            for i in 0..slots {
                let idx = tree.vind[i];
                if idx == PAD_SLOT {
                    tree.leaf_x.push(PAD_COORD);
                    tree.leaf_y.push(PAD_COORD);
                    tree.leaf_z.push(PAD_COORD);
                    continue;
                }
                sim.load(tree.vind_entry_addr(i as u32), 4);
                sim.load(tree.point_addr(idx), 12);
                sim.store(tree.reordered_point_addr(i as u32), 12);
                sim.exec(OpClass::IntAlu, 2);
                let p = tree.points[idx as usize];
                tree.leaf_x.push(p.x);
                tree.leaf_y.push(p.y);
                tree.leaf_z.push(p.z);
            }
            sim.set_kernel(prev);
        }
        tree.rebuild_meta();
        tree
    }

    /// Builds a tree with the top levels of the recursion fanned out
    /// across scoped worker threads (`threads == 0` uses the machine's
    /// available parallelism) — the dinotree idiom of handing each
    /// half of a partition to its own worker until the workers run out.
    ///
    /// The resulting tree is **identical** (nodes, `vind` order, SoA
    /// rows, shape stats) to [`KdTree::build`] over the same cloud; only
    /// the wall-clock construction differs. No simulator events are
    /// recorded — this is the uninstrumented production build, also
    /// reused by criterion-triggered subtree rebuilds. Without the
    /// `parallel` feature the fan degenerates to the sequential walk.
    pub fn build_parallel(points: Vec<Point3>, cfg: KdTreeConfig, threads: usize) -> KdTree {
        crate::parts::build_tree_parallel(points, cfg, threads)
    }

    /// Recursively builds `vind[lo..hi]`; returns the created node id.
    fn build_range(
        &mut self,
        sim: &mut SimEngine,
        costs: &TraversalCosts,
        lo: usize,
        hi: usize,
        depth: u32,
    ) -> NodeId {
        let count = hi - lo;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        // Bounding-box pass over the subtree (FLANN recomputes per node).
        let bbox = self.charged_bbox(sim, costs, lo, hi);

        if count <= self.cfg.max_leaf_points {
            sim.exec(OpClass::IntAlu, costs.build_per_leaf);
            return self.push_node(
                sim,
                Node::Leaf {
                    start: lo as u32,
                    count: count as u32,
                },
            );
        }

        let axis = bbox.widest_axis();
        let mid = match self.cfg.split_rule {
            SplitRule::Median => self.partition_median(sim, costs, lo, hi, axis),
            SplitRule::SlidingMidpoint => {
                self.partition_midpoint(sim, costs, lo, hi, axis, bbox.center()[axis])
            }
        };

        // Divider values: the gap between the children along `axis`.
        let div_low = self.max_coord(lo, mid, axis);
        let div_high = self.min_coord(mid, hi, axis);
        let split_val = 0.5 * (div_low + div_high);
        sim.exec(OpClass::IntAlu, costs.build_per_node);

        // Reserve the slot so children are numbered after their parent.
        let id = self.push_node(sim, Node::Leaf { start: 0, count: 0 });
        let left = self.build_range(sim, costs, lo, mid, depth + 1);
        let right = self.build_range(sim, costs, mid, hi, depth + 1);
        self.stats.num_leaves -= 1; // The placeholder was counted as a leaf.
        self.stats.num_interior += 1;
        self.nodes[id as usize] = Node::Interior {
            axis,
            split_val,
            div_low,
            div_high,
            left,
            right,
        };
        id
    }

    /// Rewrites the freshly-built dense `vind` into the lane-padded
    /// layout: every leaf's slot range grows to
    /// [`lane_padded`]`(count)` slots, the tail filled with
    /// [`PAD_SLOT`], and leaf `start` fields are rebased. Leaves are
    /// laid out in the same (ascending-start) order as the dense
    /// build, so the sequential and parallel builders produce
    /// identical padded layouts.
    fn apply_lane_padding(&mut self) {
        let mut leaves: Vec<(u32, u32, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| match *n {
                Node::Leaf { start, count } => Some((start, count, id as NodeId)),
                Node::Interior { .. } => None,
            })
            .collect();
        leaves.sort_unstable_by_key(|&(start, _, _)| start);
        let dense = std::mem::take(&mut self.vind);
        let mut vind = Vec::with_capacity(lane_padded(dense.len()) + leaves.len() * (LANES - 1));
        for (start, count, id) in leaves {
            let new_start = vind.len() as u32;
            vind.extend_from_slice(&dense[start as usize..(start + count) as usize]);
            vind.resize(new_start as usize + lane_padded(count as usize), PAD_SLOT);
            self.nodes[id as usize] = Node::Leaf {
                start: new_start,
                count,
            };
        }
        self.vind = vind;
    }

    /// Computes the bounding box of `vind[lo..hi]`, charging one index
    /// load, one point load and the box-update FP ops per point.
    fn charged_bbox(
        &self,
        sim: &mut SimEngine,
        costs: &TraversalCosts,
        lo: usize,
        hi: usize,
    ) -> Aabb {
        let mut bbox: Option<Aabb> = None;
        for i in lo..hi {
            let idx = self.vind[i];
            sim.load(self.vind_addr + 4 * i as u64, 4);
            sim.load(self.point_addr(idx), 12);
            sim.exec(OpClass::FpAlu, costs.build_bbox_per_point_fp);
            let p = self.points[idx as usize];
            match &mut bbox {
                Some(b) => b.insert(p),
                None => bbox = Some(Aabb::new(p, p)),
            }
        }
        // lint: allow(panic-free-serving) — build recursion invariant:
        // every partition range holds at least one point.
        bbox.expect("non-empty range")
    }

    /// Median partition of `vind[lo..hi]` on `axis`; returns the split
    /// index `mid` (both sides non-empty).
    fn partition_median(
        &mut self,
        sim: &mut SimEngine,
        costs: &TraversalCosts,
        lo: usize,
        hi: usize,
        axis: Axis,
    ) -> usize {
        let mid = lo + (hi - lo) / 2;
        let points = &self.points;
        self.vind[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        self.charge_partition(sim, costs, lo, hi - lo);
        mid
    }

    /// Sliding-midpoint partition: splits at `threshold`, sliding so both
    /// sides are non-empty.
    fn partition_midpoint(
        &mut self,
        sim: &mut SimEngine,
        costs: &TraversalCosts,
        lo: usize,
        hi: usize,
        axis: Axis,
        threshold: f32,
    ) -> usize {
        let points = &self.points;
        let slice = &mut self.vind[lo..hi];
        let mid = itertools_partition(slice, |&idx| points[idx as usize][axis] < threshold);
        self.charge_partition(sim, costs, lo, hi - lo);
        let mid = lo + mid;
        if mid == lo || mid == hi {
            // All points on one side: slide to the median so both sides
            // stay non-empty (FLANN's slide degenerates similarly when
            // duplicates collapse the box).
            self.partition_median(sim, costs, lo, hi, axis)
        } else {
            mid
        }
    }

    /// Charges the per-point partitioning work: index load, coordinate
    /// load, compare/swap arithmetic, the swap's write-back, and one
    /// data-dependent branch per point.
    fn charge_partition(
        &self,
        sim: &mut SimEngine,
        costs: &TraversalCosts,
        lo: usize,
        count: usize,
    ) {
        for i in lo..lo + count {
            sim.load(self.vind_addr + 4 * i as u64, 4);
            let idx = self.vind[i];
            sim.load(self.point_addr(idx), 4); // the splitting coordinate
            sim.exec(OpClass::IntAlu, costs.build_partition_per_point);
            // Partition outcomes look random to the predictor; roughly
            // half the elements are swapped (stored back).
            let swapped = i % 2 == 0;
            sim.branch(sites::BUILD_PARTITION, swapped);
            if swapped {
                sim.store(self.vind_addr + 4 * i as u64, 4);
            }
        }
    }

    fn max_coord(&self, lo: usize, hi: usize, axis: Axis) -> f32 {
        self.vind[lo..hi]
            .iter()
            .map(|&i| self.points[i as usize][axis])
            .fold(f32::NEG_INFINITY, f32::max)
    }

    fn min_coord(&self, lo: usize, hi: usize, axis: Axis) -> f32 {
        self.vind[lo..hi]
            .iter()
            .map(|&i| self.points[i as usize][axis])
            .fold(f32::INFINITY, f32::min)
    }

    fn push_node(&mut self, sim: &mut SimEngine, node: Node) -> NodeId {
        let id = self.nodes.len() as NodeId;
        if node.is_leaf() {
            self.stats.num_leaves += 1;
        }
        sim.store(self.node_addr(id), NODE_BYTES as u32);
        self.nodes.push(node);
        id
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// The point cloud the tree was built over (original order).
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The reordered index array; leaves reference ranges of it. Slots
    /// past a leaf's live count (its lane-padding tail) hold a
    /// sentinel index no live slot ever carries.
    pub fn vind(&self) -> &[u32] {
        &self.vind
    }

    /// The leaf-contiguous SoA point rows `(x, y, z)`: live slot `i`
    /// holds the coordinates of `points()[vind()[i]]`, so each leaf's
    /// points occupy a dense range per coordinate. Every leaf's range
    /// is padded to a [`LANES`](crate::simd::LANES) multiple with
    /// [`PAD_COORD`](crate::simd::PAD_COORD) sentinels so the SIMD
    /// sweeps read whole lane groups without tail handling. Baked by
    /// the build's reorder pass; empty for an empty tree.
    pub fn leaf_soa(&self) -> (&[f32], &[f32], &[f32]) {
        (&self.leaf_x, &self.leaf_y, &self.leaf_z)
    }

    /// The number of `vind`/SoA slots leaf `leaf` owns from its
    /// `start`: its capacity rounded up to the lane multiple. Slots
    /// beyond the live count hold padding sentinels.
    ///
    /// # Panics
    ///
    /// Panics when `leaf` is not a leaf node.
    pub fn leaf_slot_footprint(&self, leaf: NodeId) -> u32 {
        let Node::Leaf { count, .. } = self.nodes[leaf as usize] else {
            // lint: allow(panic-free-serving) — documented `# Panics`
            // contract: callers pass leaf ids only.
            panic!("leaf_slot_footprint of interior node {leaf}");
        };
        let cap = self.meta[leaf as usize].cap.max(count);
        lane_padded(cap as usize) as u32
    }

    /// Validates the lane-padding invariant the SIMD sweeps rely on:
    /// every leaf's slots between its live count and its
    /// [footprint](KdTree::leaf_slot_footprint) hold the `vind`
    /// sentinel and [`PAD_COORD`](crate::simd::PAD_COORD) in all three
    /// SoA rows, footprints stay inside the arrays, and the rows are
    /// the same length. A test/debug aid — the builders and the
    /// mutation layer maintain the invariant.
    ///
    /// # Panics
    ///
    /// Panics describing the first violation found.
    pub fn assert_lane_padding(&self) {
        let slots = self.vind.len();
        assert_eq!(self.leaf_x.len(), slots, "x row length");
        assert_eq!(self.leaf_y.len(), slots, "y row length");
        assert_eq!(self.leaf_z.len(), slots, "z row length");
        for (id, node) in self.nodes.iter().enumerate() {
            let Node::Leaf { start, count } = *node else {
                continue;
            };
            let fp = self.leaf_slot_footprint(id as NodeId) as usize;
            let (s, c) = (start as usize, count as usize);
            assert!(
                c <= fp && lane_padded(c) <= fp && s + fp <= slots,
                "leaf {id}: count {c} footprint {fp} start {s} of {slots} slots"
            );
            for i in s + c..s + fp {
                assert_eq!(
                    self.vind[i], PAD_SLOT,
                    "leaf {id} slot {i}: vind not padded"
                );
                assert!(
                    self.leaf_x[i] == PAD_COORD
                        && self.leaf_y[i] == PAD_COORD
                        && self.leaf_z[i] == PAD_COORD,
                    "leaf {id} slot {i}: SoA rows not padded"
                );
            }
        }
    }

    /// The node pool; index 0 is the root (when non-empty).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Construction parameters.
    pub fn config(&self) -> KdTreeConfig {
        self.cfg
    }

    /// Shape statistics.
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }

    /// Simulated address of point `idx` in the 16-byte-stride array.
    pub fn point_addr(&self, idx: u32) -> u64 {
        self.points_addr + idx as u64 * POINT_STRIDE
    }

    /// Simulated address of slot `i` of the reordered data matrix (the
    /// point `vind[i]`, stored densely in leaf order).
    pub fn reordered_point_addr(&self, i: u32) -> u64 {
        self.reordered_addr + i as u64 * REORDERED_STRIDE
    }

    /// Simulated address of `vind[i]`.
    pub fn vind_entry_addr(&self, i: u32) -> u64 {
        self.vind_addr + i as u64 * 4
    }

    /// Simulated address of node `id`.
    pub fn node_addr(&self, id: NodeId) -> u64 {
        self.nodes_addr + id as u64 * NODE_BYTES
    }
}

/// Branch-site ids of the tree code (used by the gshare predictor).
pub(crate) mod sites {
    /// Build-time partition compare.
    pub const BUILD_PARTITION: u32 = 0x10;
    /// Search descend direction.
    pub const DESCEND: u32 = 0x11;
    /// Visit-far-subtree decision.
    pub const VISIT_FAR: u32 = 0x12;
    /// Baseline in-radius classification.
    pub const CLASSIFY: u32 = 0x13;
    /// kNN worst-distance update.
    pub const KNN_UPDATE: u32 = 0x14;
}

/// Stable in-place partition; returns the number of elements satisfying
/// the predicate (moved to the front).
pub(crate) fn itertools_partition<T, F: FnMut(&T) -> bool>(slice: &mut [T], mut pred: F) -> usize {
    let mut next = 0;
    for i in 0..slice.len() {
        if pred(&slice[i]) {
            slice.swap(i, next);
            next += 1;
        }
    }
    next
}

/// The ZipPts buffer capacity bound on leaf size (kept here so the tree
/// crate does not depend on `bonsai-isa`; asserted equal in integration
/// tests).
fn bonsai_isa_max_leaf() -> usize {
    16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cloud(n_side: usize) -> Vec<Point3> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point3::new(
                    i as f32,
                    j as f32,
                    ((i * 7 + j) % 5) as f32 * 0.1,
                ));
            }
        }
        pts
    }

    #[test]
    fn all_points_appear_in_exactly_one_leaf() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(grid_cloud(20), KdTreeConfig::default(), &mut sim);
        let mut seen = vec![false; tree.points().len()];
        for node in tree.nodes() {
            if let Node::Leaf { start, count } = node {
                for i in *start..(start + count) {
                    let idx = tree.vind()[i as usize] as usize;
                    assert!(!seen[idx], "point {idx} in two leaves");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every point assigned");
    }

    #[test]
    fn leaves_respect_max_size() {
        let mut sim = SimEngine::disabled();
        for m in [1, 4, 15, 16] {
            let cfg = KdTreeConfig {
                max_leaf_points: m,
                ..KdTreeConfig::default()
            };
            let tree = KdTree::build(grid_cloud(12), cfg, &mut sim);
            for node in tree.nodes() {
                if let Node::Leaf { count, .. } = node {
                    assert!(*count as usize <= m, "leaf of {count} > {m}");
                    assert!(*count > 0, "empty leaf");
                }
            }
        }
    }

    #[test]
    fn interior_invariants_hold() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(grid_cloud(15), KdTreeConfig::default(), &mut sim);
        // Every interior node: all left-subtree points have axis coord
        // <= div_low <= split_val <= div_high <= all right coords.
        fn collect(tree: &KdTree, id: NodeId, out: &mut Vec<u32>) {
            match tree.nodes()[id as usize] {
                Node::Leaf { start, count } => {
                    out.extend_from_slice(&tree.vind()[start as usize..(start + count) as usize])
                }
                Node::Interior { left, right, .. } => {
                    collect(tree, left, out);
                    collect(tree, right, out);
                }
            }
        }
        for node in tree.nodes() {
            if let Node::Interior {
                axis,
                split_val,
                div_low,
                div_high,
                left,
                right,
            } = *node
            {
                let mut l = Vec::new();
                let mut r = Vec::new();
                collect(&tree, left, &mut l);
                collect(&tree, right, &mut r);
                assert!(!l.is_empty() && !r.is_empty());
                for i in l {
                    assert!(tree.points()[i as usize][axis] <= div_low + 1e-6);
                }
                for i in r {
                    assert!(tree.points()[i as usize][axis] >= div_high - 1e-6);
                }
                assert!(div_low <= split_val + 1e-6 && split_val <= div_high + 1e-6);
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(grid_cloud(20), KdTreeConfig::default(), &mut sim);
        let s = tree.build_stats();
        assert_eq!(s.num_leaves + s.num_interior, tree.nodes().len() as u32);
        // A binary tree with L leaves has L − 1 interior nodes.
        assert_eq!(s.num_interior, s.num_leaves - 1);
        // 400 points at ≤15/leaf → at least 27 leaves.
        assert!(s.num_leaves >= 27);
        assert!(s.max_depth >= 5);
    }

    #[test]
    fn build_charges_the_build_kernel() {
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        KdTree::build(grid_cloud(10), KdTreeConfig::default(), &mut sim);
        let build = *sim.kernel_counters(Kernel::Build);
        assert!(build.loads > 100, "bbox/partition passes load points");
        assert!(build.stores > 10, "node pool writes");
        assert!(build.branches > 50, "partition branches");
        assert_eq!(sim.kernel_counters(Kernel::Traverse).micro_ops(), 0);
    }

    #[test]
    fn sliding_midpoint_also_builds_valid_trees() {
        let mut sim = SimEngine::disabled();
        let cfg = KdTreeConfig {
            split_rule: SplitRule::SlidingMidpoint,
            ..Default::default()
        };
        let tree = KdTree::build(grid_cloud(15), cfg, &mut sim);
        let s = tree.build_stats();
        assert_eq!(s.num_interior, s.num_leaves - 1);
    }

    #[test]
    fn duplicate_points_build_without_infinite_recursion() {
        let mut sim = SimEngine::disabled();
        let pts = vec![Point3::new(1.0, 2.0, 3.0); 100];
        let tree = KdTree::build(pts, KdTreeConfig::default(), &mut sim);
        assert!(tree.build_stats().num_leaves >= 7);
    }

    #[test]
    #[should_panic(expected = "max_leaf_points")]
    fn oversized_leaf_config_rejected() {
        let mut sim = SimEngine::disabled();
        let cfg = KdTreeConfig {
            max_leaf_points: 17,
            ..Default::default()
        };
        KdTree::build(vec![Point3::ZERO], cfg, &mut sim);
    }

    #[test]
    fn empty_cloud_builds_empty_tree() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
        assert!(tree.nodes().is_empty());
    }

    #[test]
    fn single_point_tree_is_one_leaf() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(
            vec![Point3::new(1.0, 2.0, 3.0)],
            KdTreeConfig::default(),
            &mut sim,
        );
        assert_eq!(tree.nodes().len(), 1);
        assert!(tree.nodes()[0].is_leaf());
    }
}
