//! Deep invariant auditor for a (possibly mutated) [`KdTree`].
//!
//! The mutation layer maintains a web of cross-array invariants — leaf
//! slot ownership, lane padding, divider soundness, subtree meta
//! counters, garbage accounting — that the test suite asserts with
//! panicking helpers ([`KdTree::assert_lane_padding`] and the private
//! `check_invariants` of the mutation tests). A *serving* stack needs
//! the opposite contract: inspect a tree that may already be corrupted
//! (bit flips, torn writes, harness-injected faults) and report what is
//! wrong without crashing. [`TreeAuditor`] walks every structure with
//! bounds-checked accesses only and returns typed
//! [`AuditViolation`]s — an empty vector certifies the full invariant
//! web below:
//!
//! * **Structure** — node-pool shape: children in range, no node
//!   reachable twice (cycles / shared subtrees), every unreachable node
//!   accounted for on the free list, per-node meta table parallel to
//!   the pool.
//! * **DividerOrder** — for every interior node, all live left-subtree
//!   coordinates `≤ div_low ≤ split_val` and all live right-subtree
//!   coordinates `≥ div_high ≥ split_val` (exact, the pruning
//!   soundness condition).
//! * **SlotBijection** — live leaf slots and the live point set are in
//!   bijection: no padded/dead/out-of-range index under a live slot, no
//!   point in two slots, no live point missing from every leaf, no two
//!   leaves claiming the same `vind` slot.
//! * **LanePadding** — every leaf's padding tail holds the `vind`
//!   sentinel and `+∞` in all SoA rows; rows are slot-parallel.
//! * **SoaMismatch** — the leaf-contiguous SoA rows are bit-identical
//!   to the points they mirror.
//! * **Accounting** — subtree live/leaf meta counters, `num_live`
//!   versus the alive mask, and `garbage_slots` versus the slots no
//!   leaf owns.
//!
//! The two remaining [`ViolationKind`]s (`F16Mismatch`,
//! `DirectoryBytes`, `ShardDirectory`) are emitted by the compressed
//! and sharded layers in `bonsai-core`, which extend this walk.

use std::collections::HashSet;
use std::fmt;

use crate::build::KdTree;
use crate::node::{Node, NodeId};
use crate::simd::{lane_padded, PAD_COORD, PAD_SLOT};

/// The invariant class an [`AuditViolation`] breaks. See
/// [`KdTree::audit`] for the per-class contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Node-pool shape: bad child ids, cycles, orphaned nodes, meta
    /// table length drift.
    Structure,
    /// Interior divider bounds no longer bound their subtree (pruning
    /// would silently drop results).
    DividerOrder,
    /// The live-slot ↔ live-point bijection is broken.
    SlotBijection,
    /// A leaf's padding tail lost its sentinels (SIMD sweeps would read
    /// stale lanes).
    LanePadding,
    /// A leaf-contiguous SoA row disagrees with the point it mirrors.
    SoaMismatch,
    /// A bookkeeping counter (subtree meta, `num_live`,
    /// `garbage_slots`) disagrees with a recount.
    Accounting,
    /// An f16-approximate row is not the f16 decode of its point
    /// (emitted by `bonsai-core`).
    F16Mismatch,
    /// A compressed-directory reference or its bytes are unsound
    /// (emitted by `bonsai-core`).
    DirectoryBytes,
    /// The global→(shard, local) directory and the shard live sets are
    /// not in bijection (emitted by `bonsai-core`).
    ShardDirectory,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Structure => "structure",
            ViolationKind::DividerOrder => "divider-order",
            ViolationKind::SlotBijection => "slot-bijection",
            ViolationKind::LanePadding => "lane-padding",
            ViolationKind::SoaMismatch => "soa-mismatch",
            ViolationKind::Accounting => "accounting",
            ViolationKind::F16Mismatch => "f16-mismatch",
            ViolationKind::DirectoryBytes => "directory-bytes",
            ViolationKind::ShardDirectory => "shard-directory",
        };
        f.write_str(s)
    }
}

/// One detected invariant violation. Carries the broken class plus
/// whatever locators apply (node id, point/slot index, shard id) and a
/// human-readable detail string for logs.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// The invariant class that failed.
    pub kind: ViolationKind,
    /// The tree node involved, when one is.
    pub node: Option<NodeId>,
    /// The point index or slot involved, when one is.
    pub index: Option<u32>,
    /// The shard involved (sharded audits only).
    pub shard: Option<u32>,
    /// What exactly disagreed.
    pub detail: String,
}

impl AuditViolation {
    /// A violation of `kind` with no locators.
    pub fn new(kind: ViolationKind, detail: impl Into<String>) -> AuditViolation {
        AuditViolation {
            kind,
            node: None,
            index: None,
            shard: None,
            detail: detail.into(),
        }
    }

    /// Attaches the involved node id.
    pub fn at_node(mut self, node: NodeId) -> AuditViolation {
        self.node = Some(node);
        self
    }

    /// Attaches the involved point index or slot.
    pub fn at_index(mut self, index: u32) -> AuditViolation {
        self.index = Some(index);
        self
    }

    /// Attaches the involved shard id.
    pub fn at_shard(mut self, shard: u32) -> AuditViolation {
        self.shard = Some(shard);
        self
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(s) = self.shard {
            write!(f, " shard {s}")?;
        }
        if let Some(n) = self.node {
            write!(f, " node {n}")?;
        }
        if let Some(i) = self.index {
            write!(f, " index {i}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Per-subtree facts the audit walk accumulates bottom-up.
struct SubtreeFacts {
    live: u64,
    leaves: u64,
    /// Per-axis live-coordinate bounds; `[+∞, -∞]` for an empty
    /// subtree.
    min: [f32; 3],
    max: [f32; 3],
}

impl SubtreeFacts {
    fn empty() -> SubtreeFacts {
        SubtreeFacts {
            live: 0,
            leaves: 0,
            min: [f32::INFINITY; 3],
            max: [f32::NEG_INFINITY; 3],
        }
    }

    fn absorb(&mut self, other: &SubtreeFacts) {
        self.live += other.live;
        self.leaves += other.leaves;
        for a in 0..3 {
            self.min[a] = self.min[a].min(other.min[a]);
            self.max[a] = self.max[a].max(other.max[a]);
        }
    }
}

/// Walks a [`KdTree`] and collects every invariant violation it can
/// find. Every access is bounds-checked and cycles are cut by a
/// visited set, so the auditor never panics — even on a tree whose
/// arrays have been arbitrarily corrupted.
pub struct TreeAuditor<'a> {
    tree: &'a KdTree,
    out: Vec<AuditViolation>,
    /// Whether `meta` is parallel to `nodes` (meta checks are skipped
    /// otherwise).
    meta_ok: bool,
    /// Whether the SoA rows are slot-parallel to `vind` (row checks are
    /// skipped otherwise).
    rows_ok: bool,
    visited: Vec<bool>,
    /// Which leaf (if any) owns each `vind` slot.
    slot_owner: Vec<Option<NodeId>>,
    /// Which leaf slot (if any) indexes each point.
    point_seen: Vec<bool>,
    live_slots: u64,
}

impl<'a> TreeAuditor<'a> {
    /// Prepares an auditor over `tree`.
    pub fn new(tree: &'a KdTree) -> TreeAuditor<'a> {
        TreeAuditor {
            tree,
            out: Vec::new(),
            meta_ok: true,
            rows_ok: true,
            visited: vec![false; tree.nodes().len()],
            slot_owner: vec![None; tree.vind().len()],
            point_seen: vec![false; tree.points().len()],
            live_slots: 0,
        }
    }

    /// Runs the full audit and returns every violation found (empty =
    /// the tree is sound).
    pub fn run(mut self) -> Vec<AuditViolation> {
        self.check_parallel_arrays();
        if !self.tree.nodes().is_empty() {
            self.walk(0);
        }
        self.check_reachability();
        self.check_global_accounting();
        self.out
    }

    fn push(&mut self, v: AuditViolation) {
        self.out.push(v);
    }

    fn check_parallel_arrays(&mut self) {
        let t = self.tree;
        if t.meta.len() != t.nodes.len() {
            self.meta_ok = false;
            self.push(AuditViolation::new(
                ViolationKind::Structure,
                format!(
                    "meta table holds {} entries for {} nodes",
                    t.meta.len(),
                    t.nodes.len()
                ),
            ));
        }
        let slots = t.vind.len();
        for (name, len) in [
            ("x", t.leaf_x.len()),
            ("y", t.leaf_y.len()),
            ("z", t.leaf_z.len()),
        ] {
            if len != slots {
                self.rows_ok = false;
                self.push(AuditViolation::new(
                    ViolationKind::LanePadding,
                    format!("SoA {name} row holds {len} slots, vind holds {slots}"),
                ));
            }
        }
        if t.alive.len() != t.points.len() {
            self.push(AuditViolation::new(
                ViolationKind::Accounting,
                format!(
                    "alive mask holds {} entries for {} points",
                    t.alive.len(),
                    t.points.len()
                ),
            ));
        }
    }

    /// Recursive audit walk; returns the subtree's recounted facts.
    // The negated comparisons below are deliberate: `!(x <= y)` is
    // true for NaN dividers, which the positive form would wave
    // through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn walk(&mut self, id: NodeId) -> SubtreeFacts {
        self.visited[id as usize] = true;
        match self.tree.nodes()[id as usize] {
            Node::Leaf { start, count } => self.walk_leaf(id, start, count),
            Node::Interior {
                axis,
                split_val,
                div_low,
                div_high,
                left,
                right,
            } => {
                let mut facts = SubtreeFacts::empty();
                let mut child_facts = [SubtreeFacts::empty(), SubtreeFacts::empty()];
                for (side, child) in [(0usize, left), (1usize, right)] {
                    let name = if side == 0 { "left" } else { "right" };
                    match self.visited.get(child as usize) {
                        None => self.push(
                            AuditViolation::new(
                                ViolationKind::Structure,
                                format!("{name} child {child} out of node-pool range"),
                            )
                            .at_node(id),
                        ),
                        Some(true) => self.push(
                            AuditViolation::new(
                                ViolationKind::Structure,
                                format!("{name} child {child} reachable twice (cycle or shared subtree)"),
                            )
                            .at_node(id),
                        ),
                        Some(false) => child_facts[side] = self.walk(child),
                    }
                }
                let a = axis as usize;
                // Exact divider soundness — the builders set the
                // dividers to the extreme child coordinate and inserts
                // only widen them, so `≤`/`≥` hold exactly (the `!`
                // form also flags NaN dividers).
                if child_facts[0].live > 0 && !(child_facts[0].max[a] <= div_low) {
                    self.push(
                        AuditViolation::new(
                            ViolationKind::DividerOrder,
                            format!(
                                "left live max {} exceeds div_low {div_low}",
                                child_facts[0].max[a]
                            ),
                        )
                        .at_node(id),
                    );
                }
                if child_facts[1].live > 0 && !(child_facts[1].min[a] >= div_high) {
                    self.push(
                        AuditViolation::new(
                            ViolationKind::DividerOrder,
                            format!(
                                "right live min {} undercuts div_high {div_high}",
                                child_facts[1].min[a]
                            ),
                        )
                        .at_node(id),
                    );
                }
                if !(div_low <= split_val && split_val <= div_high) {
                    self.push(
                        AuditViolation::new(
                            ViolationKind::DividerOrder,
                            format!(
                                "dividers not ordered: div_low {div_low}, split {split_val}, div_high {div_high}"
                            ),
                        )
                        .at_node(id),
                    );
                }
                facts.absorb(&child_facts[0]);
                facts.absorb(&child_facts[1]);
                if self.meta_ok {
                    let m = self.tree.meta[id as usize];
                    if u64::from(m.live) != facts.live {
                        self.push(
                            AuditViolation::new(
                                ViolationKind::Accounting,
                                format!(
                                    "interior meta live {} but subtree holds {}",
                                    m.live, facts.live
                                ),
                            )
                            .at_node(id),
                        );
                    }
                    if u64::from(m.leaves) != facts.leaves {
                        self.push(
                            AuditViolation::new(
                                ViolationKind::Accounting,
                                format!(
                                    "interior meta leaves {} but subtree holds {}",
                                    m.leaves, facts.leaves
                                ),
                            )
                            .at_node(id),
                        );
                    }
                }
                facts
            }
        }
    }

    fn walk_leaf(&mut self, id: NodeId, start: u32, count: u32) -> SubtreeFacts {
        let t = self.tree;
        let slots = t.vind.len();
        let mut facts = SubtreeFacts::empty();
        facts.leaves = 1;
        let cap = if self.meta_ok {
            let m = t.meta[id as usize];
            if m.live != count {
                self.push(
                    AuditViolation::new(
                        ViolationKind::Accounting,
                        format!("leaf meta live {} but count {count}", m.live),
                    )
                    .at_node(id),
                );
            }
            m.cap
        } else {
            0
        };
        let fp = lane_padded(cap.max(count) as usize);
        let s = start as usize;
        let c = count as usize;
        if c > fp || lane_padded(c) > fp || s.checked_add(fp).is_none_or(|end| end > slots) {
            self.push(
                AuditViolation::new(
                    ViolationKind::SlotBijection,
                    format!(
                        "leaf range unsound: start {s} count {c} footprint {fp} of {slots} slots"
                    ),
                )
                .at_node(id),
            );
            // The claimed range is not trustworthy — audit only the
            // slots that exist, and claim ownership of none (the
            // global accounting will flag the fallout too).
            for i in s..slots.min(s + c) {
                self.audit_live_slot(id, i, &mut facts);
            }
            return facts;
        }
        for i in s..s + fp {
            if let Some(owner) = self.slot_owner[i] {
                self.push(
                    AuditViolation::new(
                        ViolationKind::SlotBijection,
                        format!("slot {i} owned by leaf {owner} and leaf {id}"),
                    )
                    .at_node(id)
                    .at_index(i as u32),
                );
            } else {
                self.slot_owner[i] = Some(id);
            }
        }
        for i in s..s + c {
            self.audit_live_slot(id, i, &mut facts);
        }
        for i in s + c..s + fp {
            if t.vind[i] != PAD_SLOT {
                self.push(
                    AuditViolation::new(
                        ViolationKind::LanePadding,
                        format!(
                            "padding slot {i} holds index {} instead of the sentinel",
                            t.vind[i]
                        ),
                    )
                    .at_node(id)
                    .at_index(i as u32),
                );
            }
            if self.rows_ok {
                let padded = t.leaf_x[i].to_bits() == PAD_COORD.to_bits()
                    && t.leaf_y[i].to_bits() == PAD_COORD.to_bits()
                    && t.leaf_z[i].to_bits() == PAD_COORD.to_bits();
                if !padded {
                    self.push(
                        AuditViolation::new(
                            ViolationKind::LanePadding,
                            format!("padding slot {i} SoA rows not sentinelled"),
                        )
                        .at_node(id)
                        .at_index(i as u32),
                    );
                }
            }
        }
        facts
    }

    /// Audits one live leaf slot: index validity, liveness, uniqueness,
    /// SoA row fidelity; folds the point into `facts`.
    fn audit_live_slot(&mut self, id: NodeId, i: usize, facts: &mut SubtreeFacts) {
        let t = self.tree;
        self.live_slots += 1;
        let idx = t.vind[i];
        if idx == PAD_SLOT {
            self.push(
                AuditViolation::new(
                    ViolationKind::SlotBijection,
                    format!("live slot {i} holds the padding sentinel"),
                )
                .at_node(id)
                .at_index(i as u32),
            );
            return;
        }
        let Some(&p) = t.points.get(idx as usize) else {
            self.push(
                AuditViolation::new(
                    ViolationKind::SlotBijection,
                    format!("live slot {i} indexes point {idx} of {}", t.points.len()),
                )
                .at_node(id)
                .at_index(idx),
            );
            return;
        };
        if !t.alive.get(idx as usize).copied().unwrap_or(false) {
            self.push(
                AuditViolation::new(
                    ViolationKind::SlotBijection,
                    format!("dead point {idx} under live slot {i}"),
                )
                .at_node(id)
                .at_index(idx),
            );
        }
        if self.point_seen[idx as usize] {
            self.push(
                AuditViolation::new(
                    ViolationKind::SlotBijection,
                    format!("point {idx} indexed by more than one live slot"),
                )
                .at_node(id)
                .at_index(idx),
            );
        }
        self.point_seen[idx as usize] = true;
        if self.rows_ok {
            let same = t.leaf_x[i].to_bits() == p.x.to_bits()
                && t.leaf_y[i].to_bits() == p.y.to_bits()
                && t.leaf_z[i].to_bits() == p.z.to_bits();
            if !same {
                self.push(
                    AuditViolation::new(
                        ViolationKind::SoaMismatch,
                        format!(
                            "slot {i} SoA row ({}, {}, {}) != point {idx} ({}, {}, {})",
                            t.leaf_x[i], t.leaf_y[i], t.leaf_z[i], p.x, p.y, p.z
                        ),
                    )
                    .at_node(id)
                    .at_index(idx),
                );
            }
        }
        facts.live += 1;
        for (a, v) in [p.x, p.y, p.z].into_iter().enumerate() {
            facts.min[a] = facts.min[a].min(v);
            facts.max[a] = facts.max[a].max(v);
        }
    }

    /// Every node is either reachable from the root or parked on the
    /// free list — never both, never neither.
    fn check_reachability(&mut self) {
        let t = self.tree;
        let mut free: HashSet<NodeId> = HashSet::with_capacity(t.free_nodes.len());
        for &f in &t.free_nodes {
            if f as usize >= t.nodes.len() {
                self.push(AuditViolation::new(
                    ViolationKind::Structure,
                    format!("free-list node {f} out of node-pool range"),
                ));
                continue;
            }
            if !free.insert(f) {
                self.push(
                    AuditViolation::new(ViolationKind::Structure, "node on the free list twice")
                        .at_node(f),
                );
            }
            if self.visited[f as usize] {
                self.push(
                    AuditViolation::new(
                        ViolationKind::Structure,
                        "node is both reachable and on the free list",
                    )
                    .at_node(f),
                );
            }
        }
        for id in 0..t.nodes.len() {
            if !self.visited[id] && !free.contains(&(id as NodeId)) {
                self.push(
                    AuditViolation::new(
                        ViolationKind::Structure,
                        "node neither reachable from the root nor on the free list",
                    )
                    .at_node(id as NodeId),
                );
            }
        }
    }

    fn check_global_accounting(&mut self) {
        let t = self.tree;
        let live_points = t.alive.iter().filter(|&&a| a).count() as u64;
        if live_points != t.num_live as u64 {
            self.push(AuditViolation::new(
                ViolationKind::Accounting,
                format!(
                    "num_live {} but alive mask counts {live_points}",
                    t.num_live
                ),
            ));
        }
        if self.live_slots != live_points {
            // Individual missing/duplicated points are reported below /
            // in the walk; the aggregate still pins the count drift.
            self.push(AuditViolation::new(
                ViolationKind::Accounting,
                format!(
                    "{} live leaf slots for {live_points} live points",
                    self.live_slots
                ),
            ));
        }
        let missing: Vec<usize> = self
            .point_seen
            .iter()
            .zip(t.alive.iter())
            .enumerate()
            .filter(|(_, (&seen, &alive))| alive && !seen)
            .map(|(idx, _)| idx)
            .collect();
        for idx in missing {
            self.push(
                AuditViolation::new(
                    ViolationKind::SlotBijection,
                    format!("live point {idx} not indexed by any leaf"),
                )
                .at_index(idx as u32),
            );
        }
        let uncovered = self.slot_owner.iter().filter(|o| o.is_none()).count();
        if uncovered != t.garbage_slots {
            self.push(AuditViolation::new(
                ViolationKind::Accounting,
                format!(
                    "garbage_slots {} but {uncovered} slots are unowned",
                    t.garbage_slots
                ),
            ));
        }
    }
}

impl KdTree {
    /// Audits every structural invariant (the
    /// [`ViolationKind`] classes) and returns the violations found —
    /// empty means the tree is sound. Unlike the panicking debug
    /// helpers, this never panics, whatever state the tree is in.
    pub fn audit(&self) -> Vec<AuditViolation> {
        TreeAuditor::new(self).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KdTreeConfig;
    use bonsai_geom::Point3;
    use bonsai_sim::SimEngine;

    fn cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new(next() * 60.0, next() * 60.0, next() * 4.0))
            .collect()
    }

    #[test]
    fn clean_trees_audit_clean() {
        let mut sim = SimEngine::disabled();
        for n in [0usize, 1, 16, 500] {
            let tree = KdTree::build(cloud(n, n as u64 + 1), KdTreeConfig::default(), &mut sim);
            let violations = tree.audit();
            assert!(violations.is_empty(), "n={n}: {violations:?}");
        }
    }

    #[test]
    fn mutated_tree_audits_clean() {
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud(400, 7), KdTreeConfig::default(), &mut sim);
        for i in 0..200u32 {
            tree.delete(&mut sim, i * 2);
        }
        for p in cloud(150, 8) {
            tree.insert(&mut sim, p);
        }
        tree.drain_dirty_nodes();
        assert!(tree.audit().is_empty(), "{:?}", tree.audit());
    }

    #[test]
    fn corrupted_counter_is_detected_without_panicking() {
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud(300, 3), KdTreeConfig::default(), &mut sim);
        tree.garbage_slots += 5;
        let violations = tree.audit();
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::Accounting));
    }

    #[test]
    fn scrambled_vind_is_detected() {
        let mut sim = SimEngine::disabled();
        let mut tree = KdTree::build(cloud(300, 4), KdTreeConfig::default(), &mut sim);
        // Duplicate one live index over another inside the first
        // multi-point leaf.
        let (start, count) = tree
            .nodes
            .iter()
            .find_map(|n| match *n {
                Node::Leaf { start, count } if count >= 2 => Some((start, count)),
                _ => None,
            })
            .expect("a multi-point leaf");
        tree.vind[start as usize + 1] = tree.vind[start as usize];
        let violations = tree.audit();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::SlotBijection),
            "{violations:?} (leaf start {start} count {count})"
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let v = AuditViolation::new(ViolationKind::DividerOrder, "split drifted")
            .at_node(3)
            .at_index(17)
            .at_shard(1);
        let s = v.to_string();
        assert!(s.contains("divider-order") && s.contains("node 3") && s.contains("shard 1"));
    }
}
