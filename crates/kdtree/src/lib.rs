//! A PCL/FLANN-style bucketed k-d tree with radius and nearest-neighbour
//! search.
//!
//! This is the baseline data structure of the paper (Section II-B): a
//! binary tree whose interior nodes split on the most spread-out
//! coordinate and whose leaves hold up to `m` points (15 by default, the
//! PCL value). During construction every subtree's bounding box is
//! computed; interior nodes keep the per-axis gap to each child
//! (`div_low`/`div_high`), which radius search uses to prune subtrees
//! farther than `r` from the query.
//!
//! Two things make this crate more than a textbook k-d tree:
//!
//! * **Instrumentation** — build and search charge micro-ops, memory
//!   references (with realistic simulated layouts: a 16-byte-stride point
//!   array, a reordered index array, a node pool) and branch outcomes to
//!   a [`SimEngine`](bonsai_sim::SimEngine), attributed to the `Build`,
//!   `Traverse` and `LeafScan` kernels.
//! * **A pluggable leaf stage** — [`LeafProcessor`] abstracts how leaf
//!   points are inspected. [`BaselineLeafProcessor`] is the PCL `f32`
//!   path; the `bonsai-core` crate plugs in the compressed path, which is
//!   the paper's entire contribution.
//!
//! # Examples
//!
//! ```
//! use bonsai_geom::Point3;
//! use bonsai_kdtree::{KdTree, KdTreeConfig};
//! use bonsai_sim::SimEngine;
//!
//! let cloud: Vec<Point3> =
//!     (0..100).map(|i| Point3::new(i as f32 * 0.1, 0.0, 0.0)).collect();
//! let mut sim = SimEngine::disabled();
//! let tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
//! let hits = tree.radius_search_simple(Point3::new(5.0, 0.0, 0.0), 0.25);
//! assert_eq!(hits.len(), 5); // 4.8, 4.9, 5.0, 5.1, 5.2
//! ```

mod audit;
mod baseline;
mod build;
#[cfg(feature = "chaos")]
mod chaos;
mod compact;
mod costs;
mod knn;
mod mutate;
mod node;
mod parts;
mod scratch;
mod search;
pub mod simd;

pub use audit::{AuditViolation, TreeAuditor, ViolationKind};
pub use baseline::BaselineLeafProcessor;
pub use build::{BuildStats, KdTree, KdTreeConfig, SplitRule};
#[cfg(feature = "chaos")]
pub use chaos::ChaosRng;
pub use compact::CompactRemap;
pub use costs::TraversalCosts;
pub use mutate::{MutationStats, ALPHA_BALANCE};
pub use node::{LeafId, Node, NodeId};
pub use scratch::{QueryBatch, SearchScratch};
pub use search::{query_is_searchable, radius_is_searchable, LeafProcessor, Neighbor, SearchStats};
