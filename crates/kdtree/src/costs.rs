//! Micro-op cost model of the un-accelerated tree code paths.
//!
//! The event-based simulator does not execute real machine code, so each
//! algorithm step charges a documented number of micro-ops modelled on
//! what the compiled PCL/FLANN code executes. The constants below cover
//! the parts shared by baseline and Bonsai runs (construction and
//! traversal); the leaf-inspection costs live with their processors
//! (`baseline.rs` here, `search.rs` in `bonsai-core`).
//!
//! All constants are scalar micro-op counts *in addition to* the loads,
//! stores and branches that the instrumented code emits explicitly
//! (those are charged where the memory reference happens, with its real
//! simulated address).

/// Cost constants for tree construction and traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalCosts {
    /// Integer/address arithmetic per interior node visited during a
    /// search: fetch fields, compare with the query coordinate, pick the
    /// near child, compute the far-side cut distance.
    pub per_interior_node: u64,
    /// Floating-point ops per interior node (compare + cut-distance
    /// multiply-add).
    pub per_interior_node_fp: u64,
    /// Scalar ops per point per tree level during construction
    /// (partitioning compares/swaps, amortized).
    pub build_partition_per_point: u64,
    /// Floating-point ops per point per level for the bounding-box pass.
    pub build_bbox_per_point_fp: u64,
    /// Scalar ops to emit one interior node (select axis, compute
    /// dividers, write the node).
    pub build_per_node: u64,
    /// Scalar ops to finalize one leaf.
    pub build_per_leaf: u64,
    /// Scalar ops per query for search setup (stack init, r² compute).
    pub per_query_setup: u64,
}

impl TraversalCosts {
    /// Defaults calibrated against what `-O2` x86/AArch64 code for the
    /// FLANN single-index executes per step. Construction costs include
    /// FLANN's per-node allocator and recursion overhead and the two
    /// passes (bounding box, then median selection) it makes over each
    /// subtree's points.
    pub fn default_model() -> TraversalCosts {
        TraversalCosts {
            per_interior_node: 6,
            per_interior_node_fp: 3,
            build_partition_per_point: 10,
            build_bbox_per_point_fp: 8,
            build_per_node: 40,
            build_per_leaf: 16,
            // radiusSearch call overhead: result-vector clears/reserves,
            // result-set construction, parameter marshalling.
            per_query_setup: 30,
        }
    }
}

impl Default for TraversalCosts {
    fn default() -> TraversalCosts {
        TraversalCosts::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_plausible() {
        let c = TraversalCosts::default_model();
        // A traversal step is much cheaper than a 15-point leaf scan
        // (~14 ops/point in the baseline processor).
        assert!(c.per_interior_node + c.per_interior_node_fp < 15);
        assert!(c.build_per_node > c.build_per_leaf);
    }
}
