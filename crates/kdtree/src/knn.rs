//! k-nearest-neighbour search.
//!
//! NN/kNN on k-d trees is the sibling operation of radius search in the
//! AD workloads the paper surveys (registration pipelines, Tigris,
//! QuickNN). The euclidean-cluster and Fig. 2 experiments only need
//! radius search, but a credible k-d tree library ships kNN, and the NDT
//! workload uses it to seed voxel neighbourhoods.

use std::collections::BinaryHeap;

use bonsai_geom::Point3;
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::build::{sites, KdTree};
use crate::costs::TraversalCosts;
use crate::node::{Node, NODE_BYTES};
use crate::search::Neighbor;

/// Max-heap entry so the worst current neighbour is at the top.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist_sq: f32,
    index: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq.total_cmp(&other.dist_sq)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl KdTree {
    /// Finds the `k` nearest neighbours of `query`, sorted by ascending
    /// distance. Returns fewer when the cloud is smaller than `k`.
    ///
    /// A query center with a non-finite coordinate returns an empty
    /// result without visiting any node. The guard matters more here
    /// than in radius search: the heap admits a point whenever
    /// `heap.len() < k` **or** the NaN comparison mis-orders, so an
    /// unguarded NaN query returned `k` arbitrary "neighbors" with NaN
    /// `dist_sq` instead of nothing.
    ///
    /// Traversal is charged like radius search (baseline costs); leaf
    /// scans charge the baseline per-point model.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_geom::Point3;
    /// use bonsai_kdtree::{KdTree, KdTreeConfig};
    /// use bonsai_sim::SimEngine;
    ///
    /// let pts: Vec<Point3> = (0..50).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
    /// let mut sim = SimEngine::disabled();
    /// let tree = KdTree::build(pts, KdTreeConfig::default(), &mut sim);
    /// let nn = tree.knn(&mut sim, Point3::new(20.2, 0.0, 0.0), 3);
    /// assert_eq!(nn[0].index, 20);
    /// assert_eq!(nn.len(), 3);
    /// ```
    pub fn knn(&self, sim: &mut SimEngine, query: Point3, k: usize) -> Vec<Neighbor> {
        if self.nodes().is_empty() || k == 0 || !crate::search::query_is_searchable(query) {
            return Vec::new();
        }
        let costs = TraversalCosts::default_model();
        let prev = sim.set_kernel(Kernel::Traverse);
        sim.exec(OpClass::IntAlu, costs.per_query_setup);
        let heap_addr = sim.alloc(8 * (k as u64 + 1), 64);
        let mut heap = BinaryHeap::with_capacity(k + 1);
        let mut side_dists = [0.0f32; 3];
        self.knn_rec(
            sim,
            &costs,
            0,
            query,
            k,
            0.0,
            &mut side_dists,
            &mut heap,
            heap_addr,
        );
        sim.set_kernel(prev);
        let mut result: Vec<Neighbor> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|h| Neighbor {
                index: h.index,
                dist_sq: h.dist_sq,
            })
            .collect();
        result.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq));
        result
    }

    /// The single nearest neighbour (`None` on an empty tree or for a
    /// query center with a non-finite coordinate).
    pub fn nearest(&self, sim: &mut SimEngine, query: Point3) -> Option<Neighbor> {
        self.knn(sim, query, 1).into_iter().next()
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_rec(
        &self,
        sim: &mut SimEngine,
        costs: &TraversalCosts,
        node_id: u32,
        query: Point3,
        k: usize,
        min_dist_sq: f32,
        side_dists: &mut [f32; 3],
        heap: &mut BinaryHeap<HeapItem>,
        heap_addr: u64,
    ) {
        sim.load(self.node_addr(node_id), NODE_BYTES as u32);
        match self.nodes()[node_id as usize] {
            Node::Leaf { start, count } => {
                let prev = sim.set_kernel(Kernel::LeafScan);
                for i in start..start + count {
                    let idx = self.vind()[i as usize];
                    sim.load(self.reordered_point_addr(i), 12);
                    sim.exec(OpClass::IntAlu, 3);
                    sim.exec(OpClass::FpAlu, 8);
                    let d_sq = self.points()[idx as usize].distance_squared(query);
                    // lint: allow(panic-free-serving) — short-circuit:
                    // peek runs only when `heap.len() ≥ k ≥ 1` (k = 0
                    // early-returned at the entry point).
                    let accept =
                        heap.len() < k || d_sq < heap.peek().expect("non-empty heap").dist_sq;
                    sim.branch(sites::KNN_UPDATE, accept);
                    if accept {
                        sim.load(self.vind_entry_addr(i), 4);
                        sim.store(heap_addr + (heap.len() as u64 % (k as u64 + 1)) * 8, 8);
                        heap.push(HeapItem {
                            dist_sq: d_sq,
                            index: idx,
                        });
                        if heap.len() > k {
                            heap.pop();
                        }
                    }
                }
                sim.set_kernel(prev);
            }
            Node::Interior {
                axis,
                split_val,
                div_low,
                div_high,
                left,
                right,
            } => {
                sim.exec(OpClass::IntAlu, costs.per_interior_node);
                sim.exec(OpClass::FpAlu, costs.per_interior_node_fp);
                let val = query[axis];
                let go_left = val <= split_val;
                sim.branch(sites::DESCEND, go_left);
                let (near, far, gap) = if go_left {
                    (left, right, div_high - val)
                } else {
                    (right, left, val - div_low)
                };
                self.knn_rec(
                    sim,
                    costs,
                    near,
                    query,
                    k,
                    min_dist_sq,
                    side_dists,
                    heap,
                    heap_addr,
                );

                let gap = gap.max(0.0);
                let cut = gap * gap;
                let far_dist_sq = min_dist_sq - side_dists[axis.index()] + cut;
                let worst = if heap.len() < k {
                    f32::INFINITY
                } else {
                    // lint: allow(panic-free-serving) — this branch
                    // has `heap.len() ≥ k ≥ 1`, so the heap is
                    // non-empty (k = 0 early-returned at the entry).
                    heap.peek().expect("full heap").dist_sq
                };
                let visit_far = far_dist_sq <= worst;
                sim.branch(sites::VISIT_FAR, visit_far);
                if visit_far {
                    let saved = side_dists[axis.index()];
                    side_dists[axis.index()] = cut;
                    self.knn_rec(
                        sim,
                        costs,
                        far,
                        query,
                        k,
                        far_dist_sq,
                        side_dists,
                        heap,
                        heap_addr,
                    );
                    side_dists[axis.index()] = saved;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KdTreeConfig;

    fn random_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new(next() * 50.0, next() * 50.0, next() * 5.0))
            .collect()
    }

    fn brute_knn(cloud: &[Point3], q: Point3, k: usize) -> Vec<u32> {
        let mut all: Vec<(f32, u32)> = cloud
            .iter()
            .enumerate()
            .map(|(i, p)| (p.distance_squared(q), i as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        all.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let cloud = random_cloud(600, 7);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        for (qi, k) in [(0usize, 1usize), (10, 5), (50, 16), (99, 40)] {
            let got: Vec<u32> = tree
                .knn(&mut sim, cloud[qi], k)
                .iter()
                .map(|n| n.index)
                .collect();
            let expect = brute_knn(&cloud, cloud[qi], k);
            // Distances are unique with this generator, so index sets match
            // exactly and in order.
            assert_eq!(got, expect, "query {qi} k {k}");
        }
    }

    #[test]
    fn knn_with_k_larger_than_cloud_returns_everything() {
        let cloud = random_cloud(10, 3);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let nn = tree.knn(&mut sim, Point3::ZERO, 50);
        assert_eq!(nn.len(), 10);
    }

    #[test]
    fn nearest_is_the_point_itself_when_in_cloud() {
        let cloud = random_cloud(300, 11);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let nn = tree.nearest(&mut sim, cloud[123]).unwrap();
        assert_eq!(nn.index, 123);
        assert_eq!(nn.dist_sq, 0.0);
    }

    /// Regression: before the query-center guard, a NaN query returned
    /// `k` garbage neighbors with NaN `dist_sq` — `heap.len() < k`
    /// admitted the first `k` points scanned, and the NaN comparison
    /// never evicted them.
    #[test]
    fn non_finite_queries_return_no_neighbors() {
        let cloud = random_cloud(200, 9);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        for q in [
            Point3::new(f32::NAN, 0.0, 0.0),
            Point3::new(0.0, f32::INFINITY, 0.0),
            Point3::new(0.0, 0.0, f32::NEG_INFINITY),
            Point3::new(f32::NAN, f32::NAN, f32::NAN),
        ] {
            assert!(tree.knn(&mut sim, q, 5).is_empty(), "{q:?} found neighbors");
            assert!(tree.nearest(&mut sim, q).is_none(), "{q:?} has a nearest");
        }
    }

    #[test]
    fn knn_on_empty_tree() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
        assert!(tree.nearest(&mut sim, Point3::ZERO).is_none());
        assert!(tree.knn(&mut sim, Point3::ZERO, 0).is_empty());
    }

    #[test]
    fn results_sorted_ascending() {
        let cloud = random_cloud(200, 5);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        let nn = tree.knn(&mut sim, Point3::new(25.0, 25.0, 2.0), 20);
        for w in nn.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }
}
