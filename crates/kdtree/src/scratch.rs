//! Reusable search state and the batch-query containers.
//!
//! The seed implementation recursed per query and allocated fresh
//! result vectors per call. Production radius search instead reuses a
//! [`SearchScratch`] (the explicit traversal stack) and a
//! [`QueryBatch`] (flat results of many queries), so a warmed-up query
//! performs **zero heap allocations**: the stack, the neighbor buffer
//! and the per-query offset table all retain their capacity across
//! calls.

use bonsai_geom::Point3;

use crate::build::KdTree;
use crate::node::{LeafId, Node, NodeId};
use crate::search::{Neighbor, SearchStats};

/// One explicit-stack traversal frame.
///
/// `FarCheck` defers the far-subtree radius test until the near subtree
/// has been fully processed — exactly the event order of the recursive
/// FLANN walk, which the instrumented path must reproduce so simulated
/// branch-history and cache sequences stay comparable across PRs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Frame {
    /// Visit a node whose cell is known to intersect the query ball.
    Visit {
        /// Node to visit.
        node: NodeId,
        /// Exact squared distance from the query to the node's cell.
        min_dist_sq: f32,
        /// Per-axis contributions to `min_dist_sq`.
        side: [f32; 3],
    },
    /// Test the far child after its sibling's subtree completed.
    FarCheck {
        /// The far child.
        node: NodeId,
        /// Squared distance from the query to the far cell.
        far_dist_sq: f32,
        /// Per-axis contributions for the far cell.
        side: [f32; 3],
    },
}

/// Reusable per-thread radius-search state.
///
/// Create one per worker (or borrow one from a [`QueryBatch`]) and pass
/// it to every search; after the first few queries the internal stack
/// stops growing and searches allocate nothing.
///
/// # Examples
///
/// ```
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::{KdTree, KdTreeConfig, SearchScratch, SearchStats};
/// use bonsai_sim::SimEngine;
///
/// let pts: Vec<Point3> = (0..100).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let mut sim = SimEngine::disabled();
/// let tree = KdTree::build(pts, KdTreeConfig::default(), &mut sim);
///
/// let mut scratch = SearchScratch::new();
/// let mut out = Vec::new();
/// let mut stats = SearchStats::default();
/// tree.radius_search_fast(Point3::new(50.0, 0.0, 0.0), 1.5, &mut scratch, &mut out, &mut stats);
/// assert_eq!(out.len(), 3); // 49, 50, 51
/// ```
#[derive(Debug, Default)]
pub struct SearchScratch {
    pub(crate) frames: Vec<Frame>,
    /// Reusable visit buffer of the two-phase (collect-then-sweep)
    /// searches; borrowed out via
    /// [`take_visited`](SearchScratch::take_visited) so the traversal
    /// can fill it while the frame stack is borrowed too.
    visited: Vec<crate::simd::LeafVisit>,
}

impl SearchScratch {
    /// An empty scratch; grows to the tree depth on first use.
    pub fn new() -> SearchScratch {
        SearchScratch::default()
    }

    /// A scratch pre-sized for trees of the given depth.
    pub fn with_depth(depth: usize) -> SearchScratch {
        SearchScratch {
            frames: Vec::with_capacity(2 * depth + 2),
            visited: Vec::new(),
        }
    }

    /// Borrows the reusable leaf-visit buffer out of the scratch
    /// (cleared). Two-phase search fronts fill it with
    /// [`KdTree::collect_leaves_in_radius`], sweep it, and hand it
    /// back with [`store_visited`](SearchScratch::store_visited) so
    /// steady-state queries allocate nothing.
    pub fn take_visited(&mut self) -> Vec<crate::simd::LeafVisit> {
        let mut v = std::mem::take(&mut self.visited);
        v.clear();
        v
    }

    /// Returns a visit buffer taken with
    /// [`take_visited`](SearchScratch::take_visited), keeping its
    /// capacity for the next query.
    pub fn store_visited(&mut self, visited: Vec<crate::simd::LeafVisit>) {
        self.visited = visited;
    }
}

/// Results of a batch of radius queries, stored flat.
///
/// `neighbors` holds every query's hits back to back;
/// `offsets[i]..offsets[i + 1]` delimits query `i`. The buffers (and
/// the embedded [`SearchScratch`]) are retained across batches, so a
/// steady-state batch allocates nothing.
///
/// Populated by `RadiusSearchEngine::search_batch` (in `bonsai-core`)
/// or [`KdTree::radius_search_batch`].
#[derive(Debug, Default)]
pub struct QueryBatch {
    neighbors: Vec<Neighbor>,
    offsets: Vec<usize>,
    stats: SearchStats,
    scratch: SearchScratch,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> QueryBatch {
        QueryBatch::default()
    }

    /// Discards results (keeps capacity) to start a new batch.
    pub fn reset(&mut self) {
        self.neighbors.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.stats = SearchStats::default();
    }

    /// Number of queries answered in the current batch.
    pub fn num_queries(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The neighbors of query `i`, in tree (leaf) order.
    pub fn results(&self, i: usize) -> &[Neighbor] {
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Per-query result slices, in query order.
    pub fn iter(&self) -> impl Iterator<Item = &[Neighbor]> + '_ {
        (0..self.num_queries()).map(|i| self.results(i))
    }

    /// Total neighbors found across the batch.
    pub fn total_matches(&self) -> usize {
        self.neighbors.len()
    }

    /// Work counters aggregated over the whole batch.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Runs one query body against the batch's buffers and closes the
    /// query's result range. The body appends hits to the neighbor
    /// buffer (it must not drain or reorder earlier queries' results).
    pub fn push_query<F>(&mut self, body: F)
    where
        F: FnOnce(&mut SearchScratch, &mut Vec<Neighbor>, &mut SearchStats),
    {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        body(&mut self.scratch, &mut self.neighbors, &mut self.stats);
        self.offsets.push(self.neighbors.len());
    }

    /// Appends another batch's queries after this batch's (used to
    /// merge per-thread partial batches in query order).
    pub fn absorb(&mut self, other: &QueryBatch) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let base = self.neighbors.len();
        self.neighbors.extend_from_slice(&other.neighbors);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| base + o));
        self.stats += other.stats;
    }
}

impl KdTree {
    /// Iterative, uninstrumented radius traversal: calls
    /// `visit(leaf, start, count, stats)` for every leaf whose cell
    /// intersects the query ball, in the same depth-first near-to-far
    /// order as the instrumented search. Traversal counters
    /// (`nodes_visited`, `leaf_visits`) are updated identically.
    ///
    /// This is the substrate of the fast (`SimEngine::disabled`) path:
    /// leaf-scan loops plug in here without paying for the event model.
    ///
    /// A non-positive or non-finite `radius` — or a non-finite query
    /// center — visits nothing, matching the instrumented search's
    /// up-front rejection of degenerate queries.
    #[inline]
    pub fn for_each_leaf_in_radius<F>(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
        mut visit: F,
    ) where
        F: FnMut(LeafId, u32, u32, &mut SearchStats),
    {
        if self.nodes().is_empty()
            || !crate::search::radius_is_searchable(radius)
            || !crate::search::query_is_searchable(query)
        {
            return;
        }
        let r_sq = radius * radius;
        let frames = &mut scratch.frames;
        frames.clear();
        frames.push(Frame::Visit {
            node: 0,
            min_dist_sq: 0.0,
            side: [0.0; 3],
        });
        while let Some(frame) = frames.pop() {
            let Frame::Visit {
                node,
                min_dist_sq,
                side,
            } = frame
            else {
                unreachable!("fast traversal pushes no FarCheck frames");
            };
            stats.nodes_visited += 1;
            match self.nodes()[node as usize] {
                Node::Leaf { start, count } => {
                    stats.leaf_visits += 1;
                    visit(node, start, count, stats);
                }
                Node::Interior {
                    axis,
                    split_val,
                    div_low,
                    div_high,
                    left,
                    right,
                } => {
                    let val = query[axis];
                    let (near, far, gap) = if val <= split_val {
                        (left, right, div_high - val)
                    } else {
                        (right, left, val - div_low)
                    };
                    let gap = gap.max(0.0);
                    let cut = gap * gap;
                    let far_dist_sq = min_dist_sq - side[axis.index()] + cut;
                    if far_dist_sq <= r_sq {
                        let mut far_side = side;
                        far_side[axis.index()] = cut;
                        frames.push(Frame::Visit {
                            node: far,
                            min_dist_sq: far_dist_sq,
                            side: far_side,
                        });
                    }
                    frames.push(Frame::Visit {
                        node: near,
                        min_dist_sq,
                        side,
                    });
                }
            }
        }
    }

    /// Collects the leaves the query ball visits — `(leaf, start,
    /// count)`, in the traversal's near-to-far order — into `visited`
    /// (cleared first), updating the traversal counters of `stats`.
    /// The collect half of the two-phase search: sweeping the
    /// collected visits afterwards
    /// ([`sweep_leaf_visits`](KdTree::sweep_leaf_visits)) lets one
    /// backend dispatch cover the whole query.
    #[inline]
    pub fn collect_leaves_in_radius(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
        visited: &mut Vec<crate::simd::LeafVisit>,
    ) {
        visited.clear();
        self.for_each_leaf_in_radius(query, radius, scratch, stats, |leaf, start, count, _| {
            visited.push((leaf, start, count));
        });
    }

    /// Sweeps collected leaf visits in baseline `f32` precision,
    /// appending hits to `out` — the sweep half of the two-phase
    /// search. One backend dispatch (lane constants hoisted) covers
    /// every visit; without a vector backend the scalar reference
    /// loop runs per visit. Hits and stats are bit-identical either
    /// way, and identical to scanning each leaf through
    /// [`scan_leaf_baseline`](KdTree::scan_leaf_baseline).
    #[inline]
    pub fn sweep_leaf_visits(
        &self,
        visited: &[crate::simd::LeafVisit],
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        let total: u64 = visited.iter().map(|&(_, _, c)| c as u64).sum();
        stats.points_inspected += total;
        stats.point_bytes_loaded += total * 12;
        if crate::simd::sweep_baseline_visited(
            &self.leaf_x,
            &self.leaf_y,
            &self.leaf_z,
            &self.vind,
            visited,
            query,
            r_sq,
            out,
        ) {
            return;
        }
        for &(_, start, count) in visited {
            self.scan_leaf_scalar(start, count, query, r_sq, out);
        }
    }

    /// Scans one leaf in baseline `f32` precision over the
    /// leaf-contiguous SoA layout, appending hits to `out`.
    ///
    /// With the `simd` feature and a vector backend
    /// ([`simd::active_backend`](crate::simd::active_backend)), the
    /// sweep runs eight squared-distance lanes per step over the
    /// leaf's lane-padded rows and compacts hits in ascending slot
    /// order; otherwise the scalar reference loop runs. Both paths
    /// produce bit-identical `Neighbor`s to
    /// [`BaselineLeafProcessor`](crate::BaselineLeafProcessor) (same
    /// values, same order) without touching the event model.
    #[inline]
    pub fn scan_leaf_baseline(
        &self,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        stats.points_inspected += count as u64;
        stats.point_bytes_loaded += count as u64 * 12;
        if crate::simd::sweep_baseline_visited(
            &self.leaf_x,
            &self.leaf_y,
            &self.leaf_z,
            &self.vind,
            &[(u32::MAX, start, count)],
            query,
            r_sq,
            out,
        ) {
            return;
        }
        self.scan_leaf_scalar(start, count, query, r_sq, out);
    }

    /// The scalar reference sweep of one leaf: slice windows hoisted
    /// to one exact length so the loop body indexes without bounds
    /// checks (this loop is the semantics both SIMD sweeps reproduce
    /// bit for bit).
    #[inline]
    fn scan_leaf_scalar(
        &self,
        start: u32,
        count: u32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
    ) {
        let lo = start as usize;
        let n = count as usize;
        let xs = &self.leaf_x[lo..lo + n];
        let ys = &self.leaf_y[lo..lo + n];
        let zs = &self.leaf_z[lo..lo + n];
        let vind = &self.vind[lo..lo + n];
        for i in 0..n {
            let dx = xs[i] - query.x;
            let dy = ys[i] - query.y;
            let dz = zs[i] - query.z;
            let d_sq = dx * dx + dy * dy + dz * dz;
            if d_sq <= r_sq {
                out.push(Neighbor {
                    index: vind[i],
                    dist_sq: d_sq,
                });
            }
        }
    }

    /// Fast uninstrumented baseline radius search: iterative traversal
    /// plus a linear SoA leaf sweep; allocation-free once `scratch` and
    /// `out` are warm. Results (cleared into `out`) are identical to
    /// [`radius_search`](KdTree::radius_search) with a
    /// [`BaselineLeafProcessor`](crate::BaselineLeafProcessor).
    pub fn radius_search_fast(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        out.clear();
        let r_sq = radius * radius;
        // Two-phase: collect the visited leaves, then sweep them all
        // through one backend dispatch.
        let mut visited = scratch.take_visited();
        self.collect_leaves_in_radius(query, radius, scratch, stats, &mut visited);
        self.sweep_leaf_visits(&visited, query, r_sq, out, stats);
        scratch.store_visited(visited);
    }

    /// Answers many baseline queries in one call, filling `batch`.
    ///
    /// Equivalent to looping
    /// [`radius_search_fast`](KdTree::radius_search_fast) but
    /// amortizes all buffers; the
    /// mode-aware front-end (compressed leaves, parallelism) is
    /// `RadiusSearchEngine` in `bonsai-core`.
    pub fn radius_search_batch(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        batch.reset();
        let r_sq = radius * radius;
        for &query in queries {
            batch.push_query(|scratch, out, stats| {
                let mut visited = scratch.take_visited();
                self.collect_leaves_in_radius(query, radius, scratch, stats, &mut visited);
                self.sweep_leaf_visits(&visited, query, r_sq, out, stats);
                scratch.store_visited(visited);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineLeafProcessor;
    use crate::build::KdTreeConfig;
    use bonsai_sim::SimEngine;

    fn random_cloud(n: usize, seed: u64, scale: f32) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| Point3::new((next() - 0.5) * scale, (next() - 0.5) * scale, next() * 3.0))
            .collect()
    }

    #[test]
    fn fast_search_matches_instrumented_baseline_exactly() {
        let cloud = random_cloud(2000, 11, 70.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut scratch = SearchScratch::new();
        let mut fast_out = Vec::new();
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut slow_out = Vec::new();
        for (qi, r) in [(0usize, 0.9f32), (77, 2.5), (1500, 0.2), (1999, 8.0)] {
            let mut fast_stats = SearchStats::default();
            let mut slow_stats = SearchStats::default();
            tree.radius_search_fast(cloud[qi], r, &mut scratch, &mut fast_out, &mut fast_stats);
            tree.radius_search(
                &mut sim,
                &mut proc,
                cloud[qi],
                r,
                &mut slow_out,
                &mut slow_stats,
            );
            assert_eq!(fast_out, slow_out, "query {qi} r {r}");
            assert_eq!(fast_stats, slow_stats, "stats for query {qi} r {r}");
        }
    }

    #[test]
    fn batch_matches_per_query_and_aggregates_stats() {
        let cloud = random_cloud(1500, 5, 60.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let queries: Vec<Point3> = (0..cloud.len()).step_by(13).map(|i| cloud[i]).collect();

        let mut batch = QueryBatch::new();
        tree.radius_search_batch(&queries, 1.4, &mut batch);
        assert_eq!(batch.num_queries(), queries.len());

        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let mut total = SearchStats::default();
        for (i, &q) in queries.iter().enumerate() {
            let mut stats = SearchStats::default();
            tree.radius_search_fast(q, 1.4, &mut scratch, &mut out, &mut stats);
            assert_eq!(batch.results(i), &out[..], "query {i}");
            total += stats;
        }
        assert_eq!(*batch.stats(), total);
        assert_eq!(
            batch.total_matches(),
            batch.iter().map(|r| r.len()).sum::<usize>()
        );
    }

    #[test]
    fn batch_reuse_does_not_leak_previous_results() {
        let cloud = random_cloud(400, 9, 30.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut batch = QueryBatch::new();
        tree.radius_search_batch(&cloud[..64], 2.0, &mut batch);
        let first = batch.total_matches();
        assert!(first > 0);
        tree.radius_search_batch(&cloud[..8], 2.0, &mut batch);
        assert_eq!(batch.num_queries(), 8);
        assert!(batch.total_matches() < first);
    }

    #[test]
    fn absorb_concatenates_in_query_order() {
        let cloud = random_cloud(600, 3, 40.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let queries = &cloud[..30];

        let mut whole = QueryBatch::new();
        tree.radius_search_batch(queries, 1.8, &mut whole);

        let mut merged = QueryBatch::new();
        merged.reset();
        for half in queries.chunks(17) {
            let mut part = QueryBatch::new();
            tree.radius_search_batch(half, 1.8, &mut part);
            merged.absorb(&part);
        }
        assert_eq!(merged.num_queries(), whole.num_queries());
        for i in 0..whole.num_queries() {
            assert_eq!(merged.results(i), whole.results(i), "query {i}");
        }
        assert_eq!(merged.stats(), whole.stats());
    }

    /// The fast traversal honors the same degenerate-radius contract as
    /// the instrumented path: empty results, zero counters, but the
    /// batch still records one (empty) result range per query.
    #[test]
    fn degenerate_radii_are_empty_in_fast_and_batched_paths() {
        let cloud = random_cloud(500, 21, 40.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        for r in [0.0f32, -1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut stats = SearchStats::default();
            tree.radius_search_fast(cloud[3], r, &mut scratch, &mut out, &mut stats);
            assert!(out.is_empty(), "radius {r}");
            assert_eq!(stats, SearchStats::default(), "radius {r}");

            let mut batch = QueryBatch::new();
            tree.radius_search_batch(&cloud[..16], r, &mut batch);
            assert_eq!(batch.num_queries(), 16, "radius {r}");
            assert_eq!(batch.total_matches(), 0, "radius {r}");
            assert_eq!(*batch.stats(), SearchStats::default(), "radius {r}");
        }
    }

    /// Same contract for non-finite query centers: the fast and batched
    /// paths reject them before any traversal, so a NaN query can never
    /// diverge from the instrumented search's empty result.
    #[test]
    fn non_finite_query_centers_are_empty_in_fast_and_batched_paths() {
        let cloud = random_cloud(400, 23, 40.0);
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(cloud, KdTreeConfig::default(), &mut sim);
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        let queries = [
            Point3::new(f32::NAN, 0.0, 0.0),
            Point3::new(0.0, f32::INFINITY, 0.0),
            Point3::new(0.0, 0.0, f32::NEG_INFINITY),
        ];
        for q in queries {
            let mut stats = SearchStats::default();
            tree.radius_search_fast(q, 1.5, &mut scratch, &mut out, &mut stats);
            assert!(out.is_empty(), "query {q:?}");
            assert_eq!(stats, SearchStats::default(), "query {q:?}");
        }
        let mut batch = QueryBatch::new();
        tree.radius_search_batch(&queries, 1.5, &mut batch);
        assert_eq!(batch.num_queries(), queries.len());
        assert_eq!(batch.total_matches(), 0);
        assert_eq!(*batch.stats(), SearchStats::default());
    }

    #[test]
    fn empty_tree_and_empty_batch_are_fine() {
        let mut sim = SimEngine::disabled();
        let tree = KdTree::build(Vec::new(), KdTreeConfig::default(), &mut sim);
        let mut scratch = SearchScratch::new();
        let mut out = vec![Neighbor {
            index: 0,
            dist_sq: 0.0,
        }];
        let mut stats = SearchStats::default();
        tree.radius_search_fast(Point3::ZERO, 5.0, &mut scratch, &mut out, &mut stats);
        assert!(out.is_empty());
        let mut batch = QueryBatch::new();
        tree.radius_search_batch(&[], 1.0, &mut batch);
        assert_eq!(batch.num_queries(), 0);
        assert_eq!(batch.total_matches(), 0);
    }
}
