//! Figure 2: the share of task execution spent in radius search, for
//! euclidean cluster (paper: 61 %) and NDT matching (paper: 51 %).

use bonsai_cluster::{filters, FramePipeline, TreeMode};
use bonsai_geom::Point3;
use bonsai_ndt::{NdtConfig, NdtMap, NdtMatcher, NdtSearchMode};
use bonsai_sim::{Kernel, SimEngine, TimingModel};

use crate::report::Table;
use crate::runner::{ExperimentConfig, FrameRunner};

/// The Figure 2 measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Result {
    /// Radius-search cycle share of the euclidean-cluster task.
    pub cluster_share: f64,
    /// Radius-search cycle share of NDT matching (alignment phase).
    pub ndt_share: f64,
}

impl Fig2Result {
    /// Runs both workloads on the baseline configuration.
    ///
    /// `cluster_frames` euclidean-cluster frames and `ndt_scans` NDT
    /// alignments are simulated (both against the shared driving
    /// sequence).
    pub fn run(cfg: ExperimentConfig, cluster_frames: usize, ndt_scans: usize) -> Fig2Result {
        let runner = FrameRunner::new(cfg.clone());
        let timing = TimingModel::a72_like();

        // --- Euclidean cluster share -------------------------------
        let frames = runner.sampled_frames();
        let take = cluster_frames.clamp(1, frames.len());
        let metrics = runner.run_frames(TreeMode::Baseline, &frames[..take]);
        let rs: f64 = metrics.iter().map(|m| m.radius_search.cycles).sum();
        let total: f64 = metrics.iter().map(|m| m.end_to_end.cycles).sum();
        let cluster_share = rs / total;

        // --- NDT matching share ------------------------------------
        // Map: a few world-frame frames accumulated and downsampled
        // (the HD-map stand-in).
        let seq = runner.sequence();
        let mut warm = SimEngine::disabled();
        let mut map_cloud: Vec<Point3> = Vec::new();
        for k in 0..4 {
            let idx = frames[k % take];
            let pose = seq.pose(idx);
            for p in seq.frame(idx) {
                map_cloud.push(pose.apply(p));
            }
        }
        let map_cloud = filters::voxel_downsample(&mut warm, &map_cloud, 0.4);
        let mut sim = SimEngine::new(&cfg.cpu);
        let map = NdtMap::build(&mut sim, &map_cloud, 2.0);
        let ndt_cfg = NdtConfig {
            max_iterations: 8,
            scan_stride: 2,
            ..NdtConfig::default()
        };
        let mut matcher = NdtMatcher::new(&mut sim, map, ndt_cfg, NdtSearchMode::Baseline);

        // Alignment phase only (map/tree building is offline in
        // Autoware's ndt_matching).
        sim.reset_counters();
        let pipeline = FramePipeline::new(cfg.cluster.clone());
        for s in 0..ndt_scans.max(1) {
            let idx = frames[s % take];
            let mut prep = SimEngine::disabled();
            let scan = pipeline.preprocess(&mut prep, &seq.frame(idx));
            let truth = seq.pose(idx);
            // Odometry-quality initial guess.
            let guess = bonsai_geom::Pose::from_translation_euler(
                truth.translation + Point3::new(0.15, -0.1, 0.02),
                0.0,
                0.0,
                truth.euler()[2] + 0.01,
            );
            matcher.align(&mut sim, &scan, &guess);
        }
        let rs_cycles = timing.cycles(&sim.sum_counters(&Kernel::RADIUS_SEARCH));
        let math_cycles = timing.cycles(sim.kernel_counters(Kernel::NdtMath));
        let ndt_share = rs_cycles / (rs_cycles + math_cycles);

        Fig2Result {
            cluster_share,
            ndt_share,
        }
    }

    /// Renders the share table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 2 — radius-search share of execution",
            &["task", "measured", "paper"],
        );
        t.row(&[
            "Euclidean Cluster (segmentation)",
            &format!("{:.0}%", self.cluster_share * 100.0),
            "61%",
        ]);
        t.row(&[
            "NDT Matching (localization)",
            &format!("{:.0}%", self.ndt_share * 100.0),
            "51%",
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_search_dominates_both_tasks() {
        let r = Fig2Result::run(ExperimentConfig::quick(), 2, 1);
        assert!(
            r.cluster_share > 0.3 && r.cluster_share < 0.9,
            "cluster share {:.2}",
            r.cluster_share
        );
        assert!(
            r.ndt_share > 0.2 && r.ndt_share < 0.9,
            "ndt share {:.2}",
            r.ndt_share
        );
        assert!(r.render().contains("NDT"));
    }
}
