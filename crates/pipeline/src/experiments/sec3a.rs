//! Section III-A: how often do all points of a k-d tree leaf share the
//! `<sign, exponent>` of their `f32` coordinates? (Paper: 78 % of leaves
//! for x, 83 % for y, over 37 M points.)

use bonsai_cluster::FramePipeline;
use bonsai_floatfmt::sign_exponent_key;
use bonsai_kdtree::{KdTree, Node};
use bonsai_sim::SimEngine;

use crate::report::Table;
use crate::runner::{ExperimentConfig, FrameRunner};

/// The leaf-similarity census.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sec3aResult {
    /// Leaves analysed.
    pub leaves: u64,
    /// Points analysed.
    pub points: u64,
    /// Leaves with a uniform x `<sign, exponent>`.
    pub x_uniform: u64,
    /// Same for y.
    pub y_uniform: u64,
    /// Same for z.
    pub z_uniform: u64,
}

impl Sec3aResult {
    /// Censuses the trees of `frame_count` sub-sampled frames.
    pub fn run(cfg: ExperimentConfig, frame_count: usize) -> Sec3aResult {
        let runner = FrameRunner::new(cfg.clone());
        let pipeline = FramePipeline::new(cfg.cluster.clone());
        let frames = runner.sampled_frames();
        let take = frame_count.clamp(1, frames.len());

        let mut out = Sec3aResult::default();
        let mut sim = SimEngine::disabled();
        for &idx in &frames[..take] {
            let cloud = pipeline.preprocess(&mut sim, &runner.raw_frame(idx));
            let tree = KdTree::build(cloud, cfg.cluster.tree, &mut sim);
            out.absorb(&tree);
        }
        out
    }

    /// Adds one tree's leaves to the census.
    pub fn absorb(&mut self, tree: &KdTree) {
        for node in tree.nodes() {
            let Node::Leaf { start, count } = node else {
                continue;
            };
            self.leaves += 1;
            self.points += *count as u64;
            let mut uniform = [true; 3];
            let first = tree.points()[tree.vind()[*start as usize] as usize];
            for i in *start + 1..start + count {
                let p = tree.points()[tree.vind()[i as usize] as usize];
                for c in 0..3 {
                    if sign_exponent_key(p[c]) != sign_exponent_key(first[c]) {
                        uniform[c] = false;
                    }
                }
            }
            self.x_uniform += uniform[0] as u64;
            self.y_uniform += uniform[1] as u64;
            self.z_uniform += uniform[2] as u64;
        }
    }

    /// Fraction of leaves uniform on coordinate `c` (0 = x, 1 = y,
    /// 2 = z).
    pub fn fraction(&self, c: usize) -> f64 {
        if self.leaves == 0 {
            return 0.0;
        }
        let n = [self.x_uniform, self.y_uniform, self.z_uniform][c];
        n as f64 / self.leaves as f64
    }

    /// Renders the census table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Section III-A — leaves with uniform f32 <sign, exponent>",
            &["coordinate", "measured", "paper"],
        );
        t.row(&["x", &format!("{:.0}%", self.fraction(0) * 100.0), "78%"]);
        t.row(&["y", &format!("{:.0}%", self.fraction(1) * 100.0), "83%"]);
        t.row(&[
            "z",
            &format!("{:.0}%", self.fraction(2) * 100.0),
            "(not reported)",
        ]);
        let mut out = t.render();
        out.push_str(&format!(
            "census size: {} leaves / {} points\n",
            self.leaves, self.points
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_paper_shape() {
        let r = Sec3aResult::run(ExperimentConfig::quick(), 2);
        assert!(r.leaves > 50, "only {} leaves", r.leaves);
        // The majority of leaves are uniform on the planar coordinates,
        // as in the paper's 78 %/83 %.
        assert!(r.fraction(0) > 0.5, "x fraction {:.2}", r.fraction(0));
        assert!(r.fraction(1) > 0.5, "y fraction {:.2}", r.fraction(1));
        assert!(r.render().contains("78%"));
    }

    #[test]
    fn empty_census_renders_zeros() {
        let r = Sec3aResult::default();
        assert_eq!(r.fraction(0), 0.0);
        assert!(r.render().contains("0%"));
    }
}
