//! Figure 12: extract-kernel energy distribution (paper: mean −10.84 %).

use bonsai_sim::Distribution;

use crate::experiments::paired::PairedRun;
use crate::metrics::percent_change;
use crate::report::{boxplot, Table};

/// The Figure 12 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Result {
    /// Baseline per-frame extract energies (joules).
    pub baseline: Distribution,
    /// Bonsai per-frame extract energies (joules).
    pub bonsai: Distribution,
}

impl Fig12Result {
    /// Analyzes a paired run.
    pub fn from_paired(run: &PairedRun) -> Fig12Result {
        Fig12Result {
            baseline: Distribution::from_samples(run.baseline.iter().map(|m| m.extract.energy_j)),
            bonsai: Distribution::from_samples(run.bonsai.iter().map(|m| m.extract.energy_j)),
        }
    }

    /// Mean energy change (paper: −10.84 %).
    pub fn mean_change_pct(&self) -> f64 {
        percent_change(self.baseline.mean(), self.bonsai.mean())
    }

    /// Renders the summary and box plots.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 12 — extract-kernel energy distribution [mJ]",
            &["config", "min", "q1", "median", "q3", "max", "mean"],
        );
        for (name, d) in [("baseline", &self.baseline), ("bonsai", &self.bonsai)] {
            let (min, q1, med, q3, max) = d.five_number_summary();
            t.row(&[
                name,
                &format!("{:.2}", min * 1e3),
                &format!("{:.2}", q1 * 1e3),
                &format!("{:.2}", med * 1e3),
                &format!("{:.2}", q3 * 1e3),
                &format!("{:.2}", max * 1e3),
                &format!("{:.2}", d.mean() * 1e3),
            ]);
        }
        let mut out = t.render();
        let lo = self
            .baseline
            .percentile(0.0)
            .min(self.bonsai.percentile(0.0));
        let hi = self
            .baseline
            .percentile(100.0)
            .max(self.bonsai.percentile(100.0));
        if hi > lo {
            out.push_str(&format!(
                "baseline  {}\n",
                boxplot(&self.baseline, lo, hi, 64)
            ));
            out.push_str(&format!(
                "bonsai    {}\n",
                boxplot(&self.bonsai, lo, hi, 64)
            ));
        }
        out.push_str(&format!(
            "mean energy change: {:+.2}% (paper -10.84%)\n",
            self.mean_change_pct()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;

    #[test]
    fn bonsai_reduces_extract_energy() {
        let run = PairedRun::run(ExperimentConfig::quick());
        let r = Fig12Result::from_paired(&run);
        assert!(
            r.mean_change_pct() < 0.0,
            "energy {:+.2}%",
            r.mean_change_pct()
        );
        assert!(r.render().contains("Figure 12"));
    }
}
