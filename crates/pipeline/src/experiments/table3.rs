//! Table III: how faithful is the systematic sub-sampling proxy?
//! (Paper: latency mean standard error 2.94 %, IPC relative error
//! 4.68 %, L1-D miss-ratio difference 0.10 %, branch-mispredict
//! difference 0.03 %.)
//!
//! The paper compares its 20 × 300 ms gem5 sub-sample against the
//! behaviour of the whole eight-minute drive. Simulating 4800 frames is
//! expensive even for the event-based model, so the "full" run here is a
//! contiguous scaled-down window of the sequence (configurable,
//! hundreds of frames) — the statistical procedure is identical.

use bonsai_cluster::TreeMode;

use crate::report::Table;
use crate::runner::{ExperimentConfig, FrameRunner};
use crate::sampling::{subsampling_error, systematic_sample, SubsamplingError};

/// The Table III measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Result {
    /// The computed error metrics.
    pub error: SubsamplingError,
    /// Frames in the full run.
    pub full_frames: usize,
    /// Frames in the sub-sample.
    pub sub_frames: usize,
}

impl Table3Result {
    /// Runs the full window and the sub-sample (both baseline mode) and
    /// compares them.
    pub fn run(cfg: ExperimentConfig, full_frames: usize) -> Table3Result {
        let runner = FrameRunner::new(cfg.clone());
        let total = runner.sequence().num_frames().min(full_frames);
        let full_idx: Vec<usize> = (0..total).collect();
        let sub_idx = systematic_sample(total, cfg.samples, cfg.frames_per_sample);

        let row = |m: &crate::metrics::FrameMetrics| {
            (
                m.extract.seconds,
                m.extract.ipc,
                m.extract.counters.l1_miss_ratio(),
                m.extract.counters.mispredict_ratio(),
            )
        };
        let full: Vec<_> = runner
            .run_frames(TreeMode::Baseline, &full_idx)
            .iter()
            .map(row)
            .collect();
        let sub: Vec<_> = runner
            .run_frames(TreeMode::Baseline, &sub_idx)
            .iter()
            .map(row)
            .collect();

        Table3Result {
            error: subsampling_error(&full, &sub),
            full_frames: full_idx.len(),
            sub_frames: sub_idx.len(),
        }
    }

    /// Renders the Table III comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table III — sub-sampling error",
            &["metric", "measured", "paper"],
        );
        t.row(&[
            "mean standard error for latency",
            &format!("{:.2}%", self.error.latency_mean_std_error * 100.0),
            "2.94%",
        ]);
        t.row(&[
            "IPC relative error",
            &format!("{:.2}%", self.error.ipc_relative_error * 100.0),
            "4.68%",
        ]);
        t.row(&[
            "L1-D cache miss ratio difference",
            &format!("{:.2}%", self.error.l1_miss_ratio_diff * 100.0),
            "0.10%",
        ]);
        t.row(&[
            "branch mispred. difference",
            &format!("{:.2}%", self.error.branch_mispredict_diff * 100.0),
            "0.03%",
        ]);
        let mut out = t.render();
        out.push_str(&format!(
            "full run: {} frames; sub-sample: {} frames\n",
            self.full_frames, self.sub_frames
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_is_a_faithful_proxy() {
        let cfg = ExperimentConfig::quick();
        let r = Table3Result::run(cfg, 16);
        // The proxy errors stay small, like the paper's.
        assert!(
            r.error.ipc_relative_error < 0.25,
            "ipc err {}",
            r.error.ipc_relative_error
        );
        assert!(
            r.error.l1_miss_ratio_diff < 0.05,
            "l1 diff {}",
            r.error.l1_miss_ratio_diff
        );
        assert!(
            r.error.branch_mispredict_diff < 0.05,
            "bp diff {}",
            r.error.branch_mispredict_diff
        );
        assert!(r.render().contains("Table III"));
    }
}
