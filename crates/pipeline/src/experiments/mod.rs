//! One module per table/figure of the paper's evaluation, plus the
//! design-choice ablations. Every experiment returns a plain result
//! struct with a `render()` method; the `bonsai-bench` binaries print
//! those.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig9;
pub mod paired;
pub mod sec3a;
pub mod table1;
pub mod table3;
pub mod table5;
