//! Table V: area and power of the baseline CPU and the added K-D Bonsai
//! hardware.
//!
//! The per-block numbers are synthesis results from the paper (we cannot
//! run Synopsys DC offline — see DESIGN.md); this experiment reproduces
//! the table's derived totals and relative changes from those constants.

use bonsai_sim::HwCostModel;

use crate::report::Table;

/// The Table V reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Result {
    /// The hardware-cost model (paper constants).
    pub model: HwCostModel,
}

impl Table5Result {
    /// Builds the table from the paper's constants.
    pub fn run() -> Table5Result {
        Table5Result {
            model: HwCostModel::table5(),
        }
    }

    /// Renders the area/power table.
    pub fn render(&self) -> String {
        let m = &self.model;
        let total = m.bonsai_total();
        let mut t = Table::new(
            "Table V — area and power (14 nm)",
            &["block", "area [mm²]", "dynamic [W]", "static [W]"],
        );
        let fmt = |c: bonsai_sim::UnitCost| {
            (
                format!("{:.4}", c.area_mm2),
                format!("{:.4}", c.dynamic_w),
                format!("{:.2e}", c.static_w),
            )
        };
        let (a, d, s) = fmt(m.processor);
        t.row(&["processor (L2 included)", &a, &d, &s]);
        let (a, d, s) = fmt(m.codec_unit);
        t.row(&["compression/decompression FU", &a, &d, &s]);
        let (a, d, s) = fmt(m.sqdwe_units);
        t.row(&["4× (A−B′)² FU", &a, &d, &s]);
        let (a, d, s) = fmt(total);
        t.row(&["K-D Bonsai total", &a, &d, &s]);
        t.row(&[
            "relative change",
            &format!("{:.2}%", m.relative_area_increase() * 100.0),
            &format!("{:.2}%", m.relative_dynamic_increase() * 100.0),
            &format!("{:.3}%", m.relative_static_increase() * 100.0),
        ]);
        let mut out = t.render();
        out.push_str("paper: +0.36% area, +1.29% dynamic power, +0.001% static power\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_paper_relative_changes() {
        let r = Table5Result::run();
        let s = r.render();
        assert!(s.contains("0.36%"));
        assert!(s.contains("1.29%"));
        assert!(s.contains("K-D Bonsai total"));
    }
}
