//! The shared baseline-vs-Bonsai paired run over the sub-sampled frames
//! that Figures 9a, 9b, 10, 11 and 12 all analyse.

use bonsai_cluster::TreeMode;

use crate::metrics::FrameMetrics;
use crate::runner::{ExperimentConfig, FrameRunner};

/// Per-frame metrics of both configurations over identical frames.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedRun {
    /// Baseline (uncompressed) records, one per frame.
    pub baseline: Vec<FrameMetrics>,
    /// Bonsai records, frame-aligned with `baseline`.
    pub bonsai: Vec<FrameMetrics>,
}

impl PairedRun {
    /// Runs the paper's sub-sampled frame set under both modes.
    pub fn run(cfg: ExperimentConfig) -> PairedRun {
        let runner = FrameRunner::new(cfg);
        let frames = runner.sampled_frames();
        let (baseline, bonsai) =
            runner.run_frames_paired(&frames, TreeMode::Baseline, TreeMode::Bonsai);
        PairedRun { baseline, bonsai }
    }

    /// Sums a per-frame extract-kernel quantity over the whole run for
    /// both modes: `(baseline_total, bonsai_total)`.
    pub fn extract_totals<F: Fn(&FrameMetrics) -> f64>(&self, f: F) -> (f64, f64) {
        (
            self.baseline.iter().map(&f).sum::<f64>(),
            self.bonsai.iter().map(&f).sum::<f64>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_run_is_frame_aligned_and_nonempty() {
        let run = PairedRun::run(ExperimentConfig::quick());
        assert_eq!(run.baseline.len(), run.bonsai.len());
        assert!(!run.baseline.is_empty());
        for (a, b) in run.baseline.iter().zip(&run.bonsai) {
            assert_eq!(a.frame_index, b.frame_index);
            assert_eq!(a.clusters, b.clusters);
        }
        let (base_loads, bonsai_loads) = run.extract_totals(|m| m.extract.counters.loads as f64);
        assert!(bonsai_loads < base_loads, "bonsai must issue fewer loads");
    }
}
