//! Figure 11: end-to-end euclidean-cluster latency distribution
//! (paper: mean −9.26 %, 99th-percentile tail −12.19 %).

use bonsai_sim::Distribution;

use crate::experiments::paired::PairedRun;
use crate::metrics::percent_change;
use crate::report::{boxplot, Table};

/// The Figure 11 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Result {
    /// Baseline end-to-end latencies (ms), one per frame.
    pub baseline: Distribution,
    /// Bonsai end-to-end latencies (ms).
    pub bonsai: Distribution,
}

impl Fig11Result {
    /// Analyzes a paired run.
    pub fn from_paired(run: &PairedRun) -> Fig11Result {
        Fig11Result {
            baseline: Distribution::from_samples(
                run.baseline.iter().map(|m| m.end_to_end.latency_ms()),
            ),
            bonsai: Distribution::from_samples(
                run.bonsai.iter().map(|m| m.end_to_end.latency_ms()),
            ),
        }
    }

    /// Mean latency change (paper: −9.26 %).
    pub fn mean_change_pct(&self) -> f64 {
        percent_change(self.baseline.mean(), self.bonsai.mean())
    }

    /// 99th-percentile tail change (paper: −12.19 %).
    pub fn p99_change_pct(&self) -> f64 {
        percent_change(self.baseline.percentile(99.0), self.bonsai.percentile(99.0))
    }

    /// Renders the distribution summary and ASCII box plots.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 11 — end-to-end latency distribution [ms]",
            &["config", "min", "q1", "median", "q3", "max", "mean", "p99"],
        );
        for (name, d) in [("baseline", &self.baseline), ("bonsai", &self.bonsai)] {
            let (min, q1, med, q3, max) = d.five_number_summary();
            t.row(&[
                name,
                &format!("{min:.2}"),
                &format!("{q1:.2}"),
                &format!("{med:.2}"),
                &format!("{q3:.2}"),
                &format!("{max:.2}"),
                &format!("{:.2}", d.mean()),
                &format!("{:.2}", d.percentile(99.0)),
            ]);
        }
        let mut out = t.render();
        let lo = self
            .baseline
            .percentile(0.0)
            .min(self.bonsai.percentile(0.0));
        let hi = self
            .baseline
            .percentile(100.0)
            .max(self.bonsai.percentile(100.0));
        if hi > lo {
            out.push_str(&format!(
                "baseline  {}\n",
                boxplot(&self.baseline, lo, hi, 64)
            ));
            out.push_str(&format!(
                "bonsai    {}\n",
                boxplot(&self.bonsai, lo, hi, 64)
            ));
        }
        out.push_str(&format!(
            "mean change: {:+.2}% (paper -9.26%)   p99 change: {:+.2}% (paper -12.19%)\n",
            self.mean_change_pct(),
            self.p99_change_pct()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;

    #[test]
    fn bonsai_improves_mean_latency() {
        let run = PairedRun::run(ExperimentConfig::quick());
        let r = Fig11Result::from_paired(&run);
        assert!(
            r.mean_change_pct() < 0.0,
            "mean {:+.2}%",
            r.mean_change_pct()
        );
        assert!(r.render().contains("Figure 11"));
    }
}
