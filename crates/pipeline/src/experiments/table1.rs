//! Table I: radius-search classification error of the reduced
//! floating-point representations, against the `f32` baseline
//! (paper: f16 0.076 %, bfloat16 0.61 %, float24 0.0003 %).

use std::collections::HashSet;

use bonsai_cluster::FramePipeline;
use bonsai_core::ReducedUncheckedProcessor;
use bonsai_floatfmt::ReducedFormat;
use bonsai_kdtree::{BaselineLeafProcessor, KdTree, SearchStats};
use bonsai_sim::SimEngine;

use crate::report::Table;
use crate::runner::{ExperimentConfig, FrameRunner};

/// One Table I row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// The evaluated format.
    pub format: ReducedFormat,
    /// Per-point classification decisions taken.
    pub decisions: u64,
    /// Decisions that flipped relative to the baseline.
    pub flips: u64,
}

impl Table1Row {
    /// Misclassification rate.
    pub fn rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.flips as f64 / self.decisions as f64
        }
    }
}

/// The Table I sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// One row per format, in paper order.
    pub rows: Vec<Table1Row>,
    /// The radius used (the cluster tolerance).
    pub radius: f32,
}

impl Table1Result {
    /// Sweeps all formats over `frame_count` sub-sampled frames, one
    /// radius search per cloud point, `query_stride` apart.
    pub fn run(cfg: ExperimentConfig, frame_count: usize, query_stride: usize) -> Table1Result {
        let runner = FrameRunner::new(cfg.clone());
        let pipeline = FramePipeline::new(cfg.cluster.clone());
        let frames = runner.sampled_frames();
        let take = frame_count.clamp(1, frames.len());
        let radius = cfg.cluster.tolerance;

        let mut rows: Vec<Table1Row> = ReducedFormat::ALL
            .iter()
            .map(|&format| Table1Row {
                format,
                decisions: 0,
                flips: 0,
            })
            .collect();

        let mut sim = SimEngine::disabled();
        for &idx in &frames[..take] {
            let cloud = pipeline.preprocess(&mut sim, &runner.raw_frame(idx));
            let tree = KdTree::build(cloud, cfg.cluster.tree, &mut sim);
            let mut base_proc = BaselineLeafProcessor::new(&mut sim);
            let mut reduced_procs: Vec<ReducedUncheckedProcessor> = ReducedFormat::ALL
                .iter()
                .map(|&f| ReducedUncheckedProcessor::new(&mut sim, f))
                .collect();

            let mut base_out = Vec::new();
            let mut red_out = Vec::new();
            for qi in (0..tree.points().len()).step_by(query_stride.max(1)) {
                let q = tree.points()[qi];
                let mut base_stats = SearchStats::default();
                tree.radius_search(
                    &mut sim,
                    &mut base_proc,
                    q,
                    radius,
                    &mut base_out,
                    &mut base_stats,
                );
                let base_set: HashSet<u32> = base_out.iter().map(|n| n.index).collect();
                for (row, proc) in rows.iter_mut().zip(&mut reduced_procs) {
                    let mut stats = SearchStats::default();
                    tree.radius_search(&mut sim, proc, q, radius, &mut red_out, &mut stats);
                    let red_set: HashSet<u32> = red_out.iter().map(|n| n.index).collect();
                    row.decisions += stats.points_inspected;
                    row.flips += base_set.symmetric_difference(&red_set).count() as u64;
                }
            }
        }
        Table1Result { rows, radius }
    }

    /// The row for a format.
    pub fn row(&self, format: ReducedFormat) -> &Table1Row {
        self.rows
            .iter()
            .find(|r| r.format == format)
            // lint: allow(panic-free-serving) — the sweep constructs
            // one row per `ReducedFormat` variant, so lookup succeeds.
            .expect("all formats are swept")
    }

    /// Renders the Table I comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table I — misclassified points with reduced representations",
            &["format", "bits", "measured", "paper"],
        );
        t.row(&["IEEE-754 32-bits", "32", "0% (baseline)", "0% (baseline)"]);
        let paper = ["0.076%", "0.61%", "0.0003%"];
        for (row, paper) in self.rows.iter().zip(paper) {
            t.row(&[
                row.format.paper_name(),
                &row.format.bits().to_string(),
                &format!("{:.4}%", row.rate() * 100.0),
                paper,
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "decisions per format: {}   radius: {} m\n",
            self.rows[0].decisions, self.radius
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_ordering_matches_table1() {
        let r = Table1Result::run(ExperimentConfig::quick(), 1, 7);
        let f16 = r.row(ReducedFormat::Ieee16).rate();
        let bf = r.row(ReducedFormat::BFloat16).rate();
        let f24 = r.row(ReducedFormat::Custom24).rate();
        assert!(r.rows[0].decisions > 1_000, "too few decisions");
        assert!(bf > f16, "bfloat {bf} vs f16 {f16}");
        assert!(f16 > f24, "f16 {f16} vs f24 {f24}");
        assert!(f16 < 0.01, "f16 rate {f16} should be sub-percent");
        assert!(r.render().contains("bfloat"));
    }
}
