//! Ablations of the design choices DESIGN.md calls out: points per
//! leaf, split rule, the safety shell, and hardware vs software codec.

use bonsai_cluster::TreeMode;
use bonsai_floatfmt::ReducedFormat;
use bonsai_kdtree::SplitRule;
use bonsai_sim::{Kernel, SimEngine, TimingModel};

use crate::experiments::table1::Table1Result;
use crate::metrics::percent_change;
use crate::report::Table;
use crate::runner::{ExperimentConfig, FrameRunner};

/// One row of the leaf-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafSizeRow {
    /// Points per leaf (`m`).
    pub leaf_size: usize,
    /// Compressed bytes / baseline point bytes.
    pub compression_ratio: f64,
    /// Mean search visits per leaf.
    pub visits_per_leaf: f64,
    /// Extract-kernel time change, Bonsai vs baseline at the same `m`.
    pub extract_time_pct: f64,
}

/// The points-per-leaf ablation (paper default: 15, buffer cap: 16).
#[derive(Debug, Clone, PartialEq)]
pub struct LeafSizeAblation {
    /// One row per swept size.
    pub rows: Vec<LeafSizeRow>,
}

impl LeafSizeAblation {
    /// Sweeps `sizes` over `frame_count` sub-sampled frames each.
    pub fn run(cfg: ExperimentConfig, sizes: &[usize], frame_count: usize) -> LeafSizeAblation {
        let mut rows = Vec::new();
        for &m in sizes {
            let mut c = cfg.clone();
            c.cluster.tree.max_leaf_points = m;
            let runner = FrameRunner::new(c);
            let frames = runner.sampled_frames();
            let take = frame_count.clamp(1, frames.len());
            let (base, bonsai) =
                runner.run_frames_paired(&frames[..take], TreeMode::Baseline, TreeMode::Bonsai);
            let t0: f64 = base.iter().map(|f| f.extract.cycles).sum();
            let t1: f64 = bonsai.iter().map(|f| f.extract.cycles).sum();
            let comp: u64 = bonsai.iter().map(|f| f.compressed_bytes).sum();
            let pts: u64 = bonsai.iter().map(|f| f.clustered_points as u64).sum();
            let visits: u64 = bonsai.iter().map(|f| f.search.leaf_visits).sum();
            let leaves: u64 = bonsai.iter().map(|f| f.leaves as u64).sum();
            rows.push(LeafSizeRow {
                leaf_size: m,
                compression_ratio: comp as f64 / (pts as f64 * 12.0),
                visits_per_leaf: visits as f64 / leaves.max(1) as f64,
                extract_time_pct: percent_change(t0, t1),
            });
        }
        LeafSizeAblation { rows }
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation — points per leaf",
            &["m", "compression ratio", "visits/leaf", "extract time Δ"],
        );
        for r in &self.rows {
            t.row(&[
                &r.leaf_size.to_string(),
                &format!("{:.1}%", r.compression_ratio * 100.0),
                &format!("{:.1}", r.visits_per_leaf),
                &format!("{:+.2}%", r.extract_time_pct),
            ]);
        }
        t.render()
    }
}

/// One row of the split-rule ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRuleRow {
    /// The rule.
    pub rule: SplitRule,
    /// Tree depth.
    pub max_depth: u32,
    /// Leaf count.
    pub leaves: u32,
    /// Fraction of leaves with uniform x sign/exponent.
    pub x_uniform: f64,
    /// Extract-kernel Bonsai-vs-baseline time change.
    pub extract_time_pct: f64,
}

/// The median vs sliding-midpoint split ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitRuleAblation {
    /// One row per rule.
    pub rows: Vec<SplitRuleRow>,
}

impl SplitRuleAblation {
    /// Compares the two split rules over `frame_count` frames.
    pub fn run(cfg: ExperimentConfig, frame_count: usize) -> SplitRuleAblation {
        let mut rows = Vec::new();
        for rule in [SplitRule::Median, SplitRule::SlidingMidpoint] {
            let mut c = cfg.clone();
            c.cluster.tree.split_rule = rule;
            let runner = FrameRunner::new(c.clone());
            let frames = runner.sampled_frames();
            let take = frame_count.clamp(1, frames.len());
            let (base, bonsai) =
                runner.run_frames_paired(&frames[..take], TreeMode::Baseline, TreeMode::Bonsai);
            let t0: f64 = base.iter().map(|f| f.extract.cycles).sum();
            let t1: f64 = bonsai.iter().map(|f| f.extract.cycles).sum();
            // Leaf census over the first frame's tree.
            let mut census = crate::experiments::sec3a::Sec3aResult::default();
            {
                let pipeline = bonsai_cluster::FramePipeline::new(c.cluster.clone());
                let mut sim = SimEngine::disabled();
                let cloud = pipeline.preprocess(&mut sim, &runner.raw_frame(frames[0]));
                let tree = bonsai_kdtree::KdTree::build(cloud, c.cluster.tree, &mut sim);
                census.absorb(&tree);
                rows.push(SplitRuleRow {
                    rule,
                    max_depth: tree.build_stats().max_depth,
                    leaves: tree.build_stats().num_leaves,
                    x_uniform: census.fraction(0),
                    extract_time_pct: percent_change(t0, t1),
                });
            }
        }
        SplitRuleAblation { rows }
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation — split rule",
            &["rule", "depth", "leaves", "x uniform", "extract time Δ"],
        );
        for r in &self.rows {
            t.row(&[
                &format!("{:?}", r.rule),
                &r.max_depth.to_string(),
                &r.leaves.to_string(),
                &format!("{:.0}%", r.x_uniform * 100.0),
                &format!("{:+.2}%", r.extract_time_pct),
            ]);
        }
        t.render()
    }
}

/// The safety-shell ablation: what the shell costs and what skipping it
/// would break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShellAblation {
    /// Fallback (re-computation) ratio with the shell on.
    pub fallback_ratio: f64,
    /// Membership error rate if the shell were skipped (f16 unchecked —
    /// Table I's first row).
    pub unchecked_error_rate: f64,
    /// Extract time change of checked Bonsai vs baseline.
    pub extract_time_pct: f64,
}

impl ShellAblation {
    /// Measures both sides of the trade over `frame_count` frames.
    pub fn run(cfg: ExperimentConfig, frame_count: usize) -> ShellAblation {
        let runner = FrameRunner::new(cfg.clone());
        let frames = runner.sampled_frames();
        let take = frame_count.clamp(1, frames.len());
        let (base, bonsai) =
            runner.run_frames_paired(&frames[..take], TreeMode::Baseline, TreeMode::Bonsai);
        let fallbacks: u64 = bonsai.iter().map(|f| f.search.fallbacks).sum();
        let inspected: u64 = bonsai.iter().map(|f| f.search.points_inspected).sum();
        let t0: f64 = base.iter().map(|f| f.extract.cycles).sum();
        let t1: f64 = bonsai.iter().map(|f| f.extract.cycles).sum();
        let table1 = Table1Result::run(cfg, 1, 17);
        ShellAblation {
            fallback_ratio: fallbacks as f64 / inspected.max(1) as f64,
            unchecked_error_rate: table1.row(ReducedFormat::Ieee16).rate(),
            extract_time_pct: percent_change(t0, t1),
        }
    }

    /// Renders the trade-off summary.
    pub fn render(&self) -> String {
        let mut t = Table::new("Ablation — safety shell", &["quantity", "value"]);
        t.row(&[
            "re-computation rate (shell on)",
            &format!("{:.3}%", self.fallback_ratio * 100.0),
        ]);
        t.row(&[
            "membership error rate (shell off)",
            &format!("{:.4}%", self.unchecked_error_rate * 100.0),
        ]);
        t.row(&[
            "extract time vs baseline (shell on)",
            &format!("{:+.2}%", self.extract_time_pct),
        ]);
        let mut out = t.render();
        out.push_str(
            "the shell converts a small error rate into a small re-computation rate,\n\
             keeping results bit-identical to the baseline (paper Section III-C)\n",
        );
        out
    }
}

/// The hardware-vs-software codec ablation (paper Section IV-A: the
/// software-only approach slows radius search ~7×).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareCodecAblation {
    /// Radius-search cycles, baseline leaves.
    pub baseline_cycles: f64,
    /// Radius-search cycles, Bonsai instructions.
    pub bonsai_cycles: f64,
    /// Radius-search cycles, software codec.
    pub software_cycles: f64,
}

impl SoftwareCodecAblation {
    /// Runs the three configurations over `frame_count` frames.
    pub fn run(cfg: ExperimentConfig, frame_count: usize) -> SoftwareCodecAblation {
        let runner = FrameRunner::new(cfg);
        let frames = runner.sampled_frames();
        let take = frame_count.clamp(1, frames.len());
        let timing = TimingModel::a72_like();
        let mut cycles = [0.0f64; 3];
        for (slot, mode) in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ]
        .iter()
        .enumerate()
        {
            let mut sim = SimEngine::new(&runner.config().cpu);
            for &i in &frames[..take] {
                let cloud = runner.raw_frame(i);
                runner.run_cloud(&mut sim, *mode, i, &cloud);
                cycles[slot] += timing.cycles(&sim.sum_counters(&Kernel::RADIUS_SEARCH));
                sim.reset_counters();
            }
        }
        SoftwareCodecAblation {
            baseline_cycles: cycles[0],
            bonsai_cycles: cycles[1],
            software_cycles: cycles[2],
        }
    }

    /// Software slowdown over the baseline (paper: ~7×).
    pub fn software_slowdown(&self) -> f64 {
        self.software_cycles / self.baseline_cycles
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation — software-only codec (Section IV-A)",
            &["configuration", "radius-search cycles", "vs baseline"],
        );
        t.row(&[
            "baseline",
            &format!("{:.3e}", self.baseline_cycles),
            "1.00×",
        ]);
        t.row(&[
            "Bonsai-extensions",
            &format!("{:.3e}", self.bonsai_cycles),
            &format!("{:.2}×", self.bonsai_cycles / self.baseline_cycles),
        ]);
        t.row(&[
            "software codec",
            &format!("{:.3e}", self.software_cycles),
            &format!("{:.2}× (paper ~7×)", self.software_slowdown()),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_size_sweep_shows_compression_improving_with_m() {
        let ab = LeafSizeAblation::run(ExperimentConfig::quick(), &[4, 15], 1);
        assert_eq!(ab.rows.len(), 2);
        // Bigger leaves amortize the shared <sign,exp> and padding
        // better.
        assert!(
            ab.rows[1].compression_ratio < ab.rows[0].compression_ratio,
            "m=15 ratio {} vs m=4 ratio {}",
            ab.rows[1].compression_ratio,
            ab.rows[0].compression_ratio
        );
        assert!(ab.render().contains("visits/leaf"));
    }

    #[test]
    fn software_codec_is_much_slower_than_bonsai() {
        let ab = SoftwareCodecAblation::run(ExperimentConfig::quick(), 1);
        assert!(ab.bonsai_cycles < ab.baseline_cycles, "bonsai should win");
        assert!(
            ab.software_slowdown() > 2.0,
            "software only {:.2}× slower",
            ab.software_slowdown()
        );
        assert!(ab.render().contains("7×"));
    }

    #[test]
    fn shell_ablation_reports_both_sides() {
        let ab = ShellAblation::run(ExperimentConfig::quick(), 1);
        assert!(ab.fallback_ratio < 0.05);
        assert!(ab.unchecked_error_rate < 0.01);
        assert!(ab.render().contains("bit-identical"));
    }

    #[test]
    fn split_rule_ablation_builds_both_trees() {
        let ab = SplitRuleAblation::run(ExperimentConfig::quick(), 1);
        assert_eq!(ab.rows.len(), 2);
        assert!(ab.rows.iter().all(|r| r.leaves > 10));
        assert!(ab.render().contains("Median"));
    }
}
