//! Figure 10: data-memory accesses per hierarchy level, baseline vs
//! Bonsai (paper: L1 −14 %, L2 +11 %, main memory +8 %).

use crate::experiments::paired::PairedRun;
use crate::metrics::percent_change;
use crate::report::Table;

/// The Figure 10 measurements (extract-kernel accesses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Result {
    /// Baseline L1 / L2 / DRAM access totals.
    pub baseline: [u64; 3],
    /// Bonsai L1 / L2 / DRAM access totals.
    pub bonsai: [u64; 3],
}

impl Fig10Result {
    /// Analyzes a paired run.
    pub fn from_paired(run: &PairedRun) -> Fig10Result {
        let sum = |ms: &[crate::metrics::FrameMetrics]| -> [u64; 3] {
            let mut out = [0u64; 3];
            for m in ms {
                out[0] += m.extract.counters.l1_accesses;
                out[1] += m.extract.counters.l2_accesses;
                out[2] += m.extract.counters.dram_accesses;
            }
            out
        };
        Fig10Result {
            baseline: sum(&run.baseline),
            bonsai: sum(&run.bonsai),
        }
    }

    /// Relative change per level `(L1, L2, DRAM)`.
    pub fn changes_pct(&self) -> [f64; 3] {
        [
            percent_change(self.baseline[0] as f64, self.bonsai[0] as f64),
            percent_change(self.baseline[1] as f64, self.bonsai[1] as f64),
            percent_change(self.baseline[2] as f64, self.bonsai[2] as f64),
        ]
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let ch = self.changes_pct();
        let mut t = Table::new(
            "Figure 10 — data memory accesses per level (extract kernel)",
            &["level", "baseline", "bonsai", "change", "paper"],
        );
        let papers = ["-14%", "+11%", "+8%"];
        for (i, name) in ["L1 cache", "L2 cache", "main memory"].iter().enumerate() {
            t.row(&[
                name,
                &self.baseline[i].to_string(),
                &self.bonsai[i].to_string(),
                &format!("{:+.2}%", ch[i]),
                papers[i],
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;

    #[test]
    fn l1_shrinks_and_levels_are_ordered() {
        let run = PairedRun::run(ExperimentConfig::quick());
        let r = Fig10Result::from_paired(&run);
        let ch = r.changes_pct();
        assert!(ch[0] < 0.0, "L1 accesses must fall, got {:+.2}%", ch[0]);
        // L1 sees orders of magnitude more traffic than DRAM (the paper
        // notes 300×; exact factors depend on cloud size).
        assert!(r.baseline[0] > 20 * r.baseline[2]);
        assert!(r.render().contains("main memory"));
    }
}
