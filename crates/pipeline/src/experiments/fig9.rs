//! Figure 9a/9b + the Section V-B prose numbers: extract-kernel metric
//! deltas, bytes to load points on the first frame, fallback ratio,
//! visits per leaf and the compression ratio.

use crate::experiments::paired::PairedRun;
use crate::metrics::percent_change;
use crate::report::{bytes, Table};

/// The Figure 9 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Relative change of extract-kernel execution time (paper: −12 %).
    pub execution_time_pct: f64,
    /// Relative change of committed micro-ops (paper: −16 %).
    pub committed_instructions_pct: f64,
    /// Relative change of committed loads (paper: −23 %).
    pub committed_loads_pct: f64,
    /// Relative change of committed stores (paper: −18 %).
    pub committed_stores_pct: f64,
    /// Relative change of L1-D accesses (paper: −14 %).
    pub l1d_accesses_pct: f64,
    /// Relative change of L1-D misses (paper: +8 %).
    pub l1d_misses_pct: f64,
    /// Fig. 9b: bytes to load points during the first frame's searches,
    /// baseline (paper: 4.85 MB).
    pub first_frame_baseline_bytes: u64,
    /// Fig. 9b: same under Bonsai (paper: 1.77 MB).
    pub first_frame_bonsai_bytes: u64,
    /// §V-B: fraction of classifications that fell in the shell
    /// (paper: 0.37 %).
    pub fallback_ratio: f64,
    /// §V-B: average search visits per created leaf (paper: ~52 on one
    /// frame).
    pub visits_per_leaf: f64,
    /// Compressed bytes / baseline point bytes across the run
    /// (paper: ~37 % on frame #1).
    pub compression_ratio: f64,
}

impl Fig9Result {
    /// Analyzes a paired run.
    pub fn from_paired(run: &PairedRun) -> Fig9Result {
        let (t0, t1) = run.extract_totals(|m| m.extract.cycles);
        let (i0, i1) = run.extract_totals(|m| m.extract.counters.micro_ops() as f64);
        let (l0, l1) = run.extract_totals(|m| m.extract.counters.loads as f64);
        let (s0, s1) = run.extract_totals(|m| m.extract.counters.stores as f64);
        let (a0, a1) = run.extract_totals(|m| m.extract.counters.l1_accesses as f64);
        let (m0, m1) = run.extract_totals(|m| m.extract.counters.l1_misses as f64);

        let fallbacks: u64 = run.bonsai.iter().map(|m| m.search.fallbacks).sum();
        let inspected: u64 = run.bonsai.iter().map(|m| m.search.points_inspected).sum();
        let visits: u64 = run.bonsai.iter().map(|m| m.search.leaf_visits).sum();
        let leaves: u64 = run.bonsai.iter().map(|m| m.leaves as u64).sum();
        let comp_bytes: u64 = run.bonsai.iter().map(|m| m.compressed_bytes).sum();
        let base_bytes: u64 = run
            .bonsai
            .iter()
            .map(|m| m.clustered_points as u64 * 12)
            .sum();

        Fig9Result {
            execution_time_pct: percent_change(t0, t1),
            committed_instructions_pct: percent_change(i0, i1),
            committed_loads_pct: percent_change(l0, l1),
            committed_stores_pct: percent_change(s0, s1),
            l1d_accesses_pct: percent_change(a0, a1),
            l1d_misses_pct: percent_change(m0, m1),
            first_frame_baseline_bytes: run.baseline[0].search.point_bytes_loaded,
            first_frame_bonsai_bytes: run.bonsai[0].search.point_bytes_loaded,
            fallback_ratio: if inspected == 0 {
                0.0
            } else {
                fallbacks as f64 / inspected as f64
            },
            visits_per_leaf: if leaves == 0 {
                0.0
            } else {
                visits as f64 / leaves as f64
            },
            compression_ratio: if base_bytes == 0 {
                0.0
            } else {
                comp_bytes as f64 / base_bytes as f64
            },
        }
    }

    /// Renders the Figure 9a/9b comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 9a — extract kernel, Bonsai vs baseline (relative change)",
            &["metric", "measured", "paper"],
        );
        let rows: [(&str, f64, &str); 6] = [
            ("execution time", self.execution_time_pct, "-12%"),
            (
                "committed instructions",
                self.committed_instructions_pct,
                "-16%",
            ),
            ("committed loads", self.committed_loads_pct, "-23%"),
            ("committed stores", self.committed_stores_pct, "-18%"),
            ("L1 D-cache accesses", self.l1d_accesses_pct, "-14%"),
            ("L1 D-cache misses", self.l1d_misses_pct, "+8%"),
        ];
        for (name, v, paper) in rows {
            t.row(&[name, &format!("{v:+.2}%"), paper]);
        }
        let mut out = t.render();
        out.push('\n');
        let mut t2 = Table::new(
            "Figure 9b — bytes to load points, first sampled frame",
            &["configuration", "measured", "paper"],
        );
        t2.row(&[
            "baseline",
            &bytes(self.first_frame_baseline_bytes),
            "4.85 MB",
        ]);
        t2.row(&[
            "Bonsai-extensions",
            &bytes(self.first_frame_bonsai_bytes),
            "1.77 MB",
        ]);
        let ratio =
            self.first_frame_bonsai_bytes as f64 / self.first_frame_baseline_bytes.max(1) as f64;
        t2.row(&["ratio", &format!("{:.1}%", ratio * 100.0), "36.5%"]);
        out.push_str(&t2.render());
        out.push('\n');
        let mut t3 = Table::new(
            "Section V-B prose numbers",
            &["quantity", "measured", "paper"],
        );
        t3.row(&[
            "inconclusive classifications",
            &format!("{:.3}%", self.fallback_ratio * 100.0),
            "0.37%",
        ]);
        t3.row(&[
            "search visits per leaf",
            &format!("{:.1}", self.visits_per_leaf),
            "~52",
        ]);
        t3.row(&[
            "compressed size vs baseline",
            &format!("{:.1}%", self.compression_ratio * 100.0),
            "~37%",
        ]);
        out.push_str(&t3.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;

    #[test]
    fn deltas_have_the_paper_signs() {
        let run = PairedRun::run(ExperimentConfig::quick());
        let r = Fig9Result::from_paired(&run);
        assert!(
            r.committed_loads_pct < 0.0,
            "loads {}",
            r.committed_loads_pct
        );
        assert!(
            r.committed_instructions_pct < 0.0,
            "instrs {}",
            r.committed_instructions_pct
        );
        assert!(r.execution_time_pct < 0.0, "time {}", r.execution_time_pct);
        assert!(
            r.l1d_accesses_pct < 0.0,
            "l1 accesses {}",
            r.l1d_accesses_pct
        );
        assert!(
            r.first_frame_bonsai_bytes < r.first_frame_baseline_bytes,
            "fig9b direction"
        );
        assert!(r.fallback_ratio < 0.05);
        assert!(r.compression_ratio > 0.2 && r.compression_ratio < 0.7);
        assert!(r.render().contains("Figure 9a"));
    }
}
