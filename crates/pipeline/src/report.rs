//! Plain-text rendering of experiment results (aligned tables and the
//! ASCII box plots used for Figures 11 and 12).

use bonsai_sim::Distribution;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use bonsai_pipeline::report::Table;
///
/// let mut t = Table::new("Demo", &["metric", "value"]);
/// t.row(&["latency", "12.3 ms"]);
/// let s = t.render();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("latency"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a signed percentage with two decimals
/// (`-0.0926 → "-9.26%"`).
pub fn pct(fraction: f64) -> String {
    format!("{:+.2}%", fraction * 100.0)
}

/// Formats a ratio change in percent given old and new values.
pub fn pct_change(old: f64, new: f64) -> String {
    if old == 0.0 {
        "n/a".to_string()
    } else {
        pct((new - old) / old)
    }
}

/// Formats bytes human-readably (MB with two decimals above 1 MB).
pub fn bytes(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2} MB", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1} KB", n as f64 / 1e3)
    } else {
        format!("{n} B")
    }
}

/// Renders a horizontal ASCII box plot of a distribution over a shared
/// `[lo, hi]` scale, `width` characters wide:
///
/// ```text
/// |----[=====|=====]------|
/// min  q1  median  q3   max
/// ```
pub fn boxplot(d: &Distribution, lo: f64, hi: f64, width: usize) -> String {
    assert!(width >= 10, "box plot needs at least 10 columns");
    assert!(hi > lo, "degenerate scale");
    let (min, q1, med, q3, max) = d.five_number_summary();
    let pos = |v: f64| -> usize {
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((width - 1) as f64 * t).round() as usize
    };
    let mut chars: Vec<char> = vec![' '; width];
    for c in &mut chars[pos(min)..=pos(max)] {
        *c = '-';
    }
    for c in &mut chars[pos(q1)..=pos(q3)] {
        *c = '=';
    }
    chars[pos(min)] = '|';
    chars[pos(max)] = '|';
    chars[pos(q1)] = '[';
    chars[pos(q3)] = ']';
    chars[pos(med)] = '#';
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header", "c"]);
        t.row(&["xxxxxx", "1", "2"]);
        t.row(&["y", "22", "333"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Column 2 starts at the same offset in every row.
        let off = lines[1].find("long-header").unwrap();
        assert_eq!(&lines[3][off..off + 1], "1");
        assert_eq!(&lines[4][off..off + 2], "22");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("T", &["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(-0.0926), "-9.26%");
        assert_eq!(pct(0.08), "+8.00%");
        assert_eq!(pct_change(100.0, 88.0), "-12.00%");
        assert_eq!(pct_change(0.0, 1.0), "n/a");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(bytes(4_850_000), "4.85 MB");
        assert_eq!(bytes(1_770), "1.8 KB");
        assert_eq!(bytes(59), "59 B");
    }

    #[test]
    fn boxplot_marks_are_ordered() {
        let d = Distribution::from_samples((0..100).map(|v| v as f64));
        let plot = boxplot(&d, 0.0, 100.0, 60);
        assert_eq!(plot.len(), 60);
        let min = plot.find('|').unwrap();
        let q1 = plot.find('[').unwrap();
        let med = plot.find('#').unwrap();
        let q3 = plot.find(']').unwrap();
        let max = plot.rfind('|').unwrap();
        assert!(min < q1 && q1 < med && med < q3 && q3 < max);
    }
}
