use bonsai_kdtree::SearchStats;
use bonsai_sim::{Counters, EnergyModel, Kernel, SimEngine, TimingModel};

/// Derived metrics of one kernel group (a set of [`Kernel`]s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupMetrics {
    /// Raw event counters.
    pub counters: Counters,
    /// Modelled cycles.
    pub cycles: f64,
    /// Modelled wall-clock seconds.
    pub seconds: f64,
    /// Micro-ops per cycle.
    pub ipc: f64,
    /// Modelled energy in joules (dynamic + static over `seconds`).
    pub energy_j: f64,
}

impl GroupMetrics {
    /// Computes the derived metrics for a counter set.
    pub fn from_counters(
        counters: Counters,
        timing: &TimingModel,
        energy: &EnergyModel,
    ) -> GroupMetrics {
        let cycles = timing.cycles(&counters);
        let seconds = timing.seconds(&counters);
        GroupMetrics {
            counters,
            cycles,
            seconds,
            ipc: timing.ipc(&counters),
            energy_j: energy.joules(&counters, seconds),
        }
    }

    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.seconds * 1e3
    }
}

/// Everything measured on one simulated frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMetrics {
    /// Index of the frame in the driving sequence.
    pub frame_index: usize,
    /// All kernels (the paper's end-to-end task latency, Figure 11).
    pub end_to_end: GroupMetrics,
    /// The extract kernel (build + compress + search + cluster
    /// bookkeeping; Figures 9a, 9b, 10, 12).
    pub extract: GroupMetrics,
    /// Radius search only (traverse + leaf scan + fallback; Figure 2).
    pub radius_search: GroupMetrics,
    /// Search work counters (visits, inspections, fallbacks, point
    /// bytes).
    pub search: SearchStats,
    /// Number of clusters the frame produced.
    pub clusters: usize,
    /// Points entering the extract kernel.
    pub clustered_points: usize,
    /// Compressed-array footprint (0 for the baseline).
    pub compressed_bytes: u64,
    /// Leaves in the frame's tree.
    pub leaves: u32,
}

impl FrameMetrics {
    /// Collects metrics from an engine that just ran one frame
    /// (counters must cover exactly that frame).
    #[allow(clippy::too_many_arguments)] // one argument per record field
    pub fn collect(
        frame_index: usize,
        sim: &SimEngine,
        timing: &TimingModel,
        energy: &EnergyModel,
        search: SearchStats,
        clusters: usize,
        clustered_points: usize,
        compressed_bytes: u64,
        leaves: u32,
    ) -> FrameMetrics {
        let end_to_end = GroupMetrics::from_counters(sim.totals(), timing, energy);
        let extract =
            GroupMetrics::from_counters(sim.sum_counters(&Kernel::EXTRACT), timing, energy);
        let radius_search =
            GroupMetrics::from_counters(sim.sum_counters(&Kernel::RADIUS_SEARCH), timing, energy);
        FrameMetrics {
            frame_index,
            end_to_end,
            extract,
            radius_search,
            search,
            clusters,
            clustered_points,
            compressed_bytes,
            leaves,
        }
    }

    /// Average leaf visits per created leaf (the paper's "52 visits per
    /// leaf" observation).
    pub fn visits_per_leaf(&self) -> f64 {
        if self.leaves == 0 {
            0.0
        } else {
            self.search.leaf_visits as f64 / self.leaves as f64
        }
    }
}

/// The relative change `(new − old) / old`, in percent. Positive means
/// `new` is larger.
pub fn percent_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_sim::{CpuConfig, OpClass};

    #[test]
    fn group_metrics_are_internally_consistent() {
        let mut c = Counters::default();
        c.bump(OpClass::IntAlu, 3000);
        let timing = TimingModel::a72_like();
        let energy = EnergyModel::a72_like();
        let g = GroupMetrics::from_counters(c, &timing, &energy);
        assert_eq!(g.cycles, 1000.0);
        assert!((g.seconds - 1000.0 / 3e9).abs() < 1e-15);
        assert!((g.latency_ms() - g.seconds * 1e3).abs() < 1e-12);
        assert!(g.energy_j > 0.0);
    }

    #[test]
    fn collect_separates_groups() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        sim.set_kernel(Kernel::Preprocess);
        sim.exec(OpClass::IntAlu, 600);
        sim.set_kernel(Kernel::LeafScan);
        sim.exec(OpClass::FpAlu, 300);
        let m = FrameMetrics::collect(
            7,
            &sim,
            &TimingModel::a72_like(),
            &EnergyModel::a72_like(),
            SearchStats::default(),
            3,
            100,
            0,
            10,
        );
        assert_eq!(m.frame_index, 7);
        assert_eq!(m.end_to_end.counters.micro_ops(), 900);
        assert_eq!(m.extract.counters.micro_ops(), 300);
        assert_eq!(m.radius_search.counters.micro_ops(), 300);
    }

    #[test]
    fn percent_change_signs() {
        assert_eq!(percent_change(100.0, 88.0), -12.0);
        assert_eq!(percent_change(100.0, 108.0), 8.0);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn visits_per_leaf_guards_zero() {
        let mut sim = SimEngine::disabled();
        sim.exec(OpClass::IntAlu, 1);
        let m = FrameMetrics::collect(
            0,
            &sim,
            &TimingModel::a72_like(),
            &EnergyModel::a72_like(),
            SearchStats::default(),
            0,
            0,
            0,
            0,
        );
        assert_eq!(m.visits_per_leaf(), 0.0);
    }
}
