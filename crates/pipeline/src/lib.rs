//! End-to-end experiment harness for the K-D Bonsai reproduction.
//!
//! This crate turns the substrate crates into the paper's evaluation
//! (Section V): it drives the synthetic driving sequence through the
//! euclidean-cluster and NDT pipelines on the instrumented simulator,
//! collects per-frame metrics ([`FrameMetrics`]), applies the paper's
//! systematic sub-sampling ([`sampling`]), and implements one experiment
//! per table/figure ([`experiments`]):
//!
//! | experiment | paper result |
//! |---|---|
//! | [`experiments::fig2`] | radius-search share of execution (61 % / 51 %) |
//! | [`experiments::sec3a`] | leaf `<sign,exp>` uniformity (78 % x, 83 % y) |
//! | [`experiments::table1`] | reduced-format misclassification rates |
//! | [`experiments::table3`] | sub-sampling error metrics |
//! | [`experiments::fig9`] | extract-kernel deltas + bytes-to-load-points |
//! | [`experiments::fig10`] | accesses per memory-hierarchy level |
//! | [`experiments::fig11`] | end-to-end latency distribution (−9.26 % mean, −12.19 % p99) |
//! | [`experiments::fig12`] | extract-kernel energy distribution (−10.84 %) |
//! | [`experiments::table5`] | area/power of the added hardware |
//! | [`experiments::ablations`] | leaf size, float format, shell, split rule, software codec |
//!
//! Each experiment returns a plain struct of numbers and renders itself
//! as a text table via [`report`] — the `bonsai-bench` binaries are thin
//! wrappers around these.
//!
//! # Examples
//!
//! ```
//! use bonsai_cluster::TreeMode;
//! use bonsai_pipeline::{ExperimentConfig, FrameRunner};
//!
//! let cfg = ExperimentConfig::quick();
//! let runner = FrameRunner::new(cfg);
//! let frames = runner.sampled_frames();
//! let metrics = runner.run_frames(TreeMode::Baseline, &frames[..1]);
//! assert!(metrics[0].end_to_end.cycles > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod sampling;

mod metrics;
mod runner;

pub use metrics::{FrameMetrics, GroupMetrics};
pub use runner::{ExperimentConfig, FrameRunner};
