//! Systematic sub-sampling of the frame sequence (paper Section V-A).
//!
//! The paper cannot run all 4800 frames of its eight-minute drive
//! through gem5, so it simulates 20 samples of 300 ms each (3 frames at
//! 10 Hz), equally spaced in time — 60 frames total — and validates the
//! proxy with Table III's error metrics. The same procedure applies
//! here (the event-based model is faster than gem5 but frames are still
//! the cost unit).

/// Frame indices of a systematic sub-sample: `samples` windows of
/// `frames_per_sample` consecutive frames, equally spaced across
/// `total_frames`.
///
/// # Panics
///
/// Panics when the request does not fit the sequence.
///
/// # Examples
///
/// ```
/// use bonsai_pipeline::sampling::systematic_sample;
///
/// let idx = systematic_sample(4800, 20, 3);
/// assert_eq!(idx.len(), 60);
/// assert_eq!(&idx[..3], &[0, 1, 2]);
/// assert!(idx.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn systematic_sample(
    total_frames: usize,
    samples: usize,
    frames_per_sample: usize,
) -> Vec<usize> {
    assert!(
        samples > 0 && frames_per_sample > 0,
        "degenerate sampling plan"
    );
    assert!(
        samples * frames_per_sample <= total_frames,
        "sample plan ({samples}×{frames_per_sample}) exceeds {total_frames} frames"
    );
    let stride = total_frames as f64 / samples as f64;
    let mut out = Vec::with_capacity(samples * frames_per_sample);
    for s in 0..samples {
        let start = (s as f64 * stride) as usize;
        let start = start.min(total_frames - frames_per_sample);
        for f in 0..frames_per_sample {
            out.push(start + f);
        }
    }
    out
}

/// Summary error metrics comparing a sub-sampled measurement against the
/// full run — the rows of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsamplingError {
    /// Standard error of the sub-sample latency mean, as a fraction of
    /// that mean ("Mean Standard Error for Latency").
    pub latency_mean_std_error: f64,
    /// `|IPC_sub − IPC_full| / IPC_full` ("IPC Relative Error").
    pub ipc_relative_error: f64,
    /// `|missratio_sub − missratio_full|`, absolute difference
    /// ("L1-D Cache Miss Ratio Difference").
    pub l1_miss_ratio_diff: f64,
    /// `|mispred_sub − mispred_full|`, absolute difference
    /// ("Branch Mispred. Difference").
    pub branch_mispredict_diff: f64,
}

/// Computes the Table III error metrics from per-frame observations of
/// the full run and the sub-sample (each row: latency seconds, IPC, L1
/// miss ratio, mispredict ratio).
///
/// # Panics
///
/// Panics when either set is empty.
pub fn subsampling_error(
    full: &[(f64, f64, f64, f64)],
    sub: &[(f64, f64, f64, f64)],
) -> SubsamplingError {
    assert!(!full.is_empty() && !sub.is_empty(), "empty observation set");
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;

    let sub_lat: Vec<f64> = sub.iter().map(|r| r.0).collect();
    let sub_lat_mean = mean(&sub_lat);
    let sub_lat_var = sub_lat
        .iter()
        .map(|v| (v - sub_lat_mean).powi(2))
        .sum::<f64>()
        / (sub_lat.len().max(2) - 1) as f64;
    let std_error = (sub_lat_var / sub_lat.len() as f64).sqrt();

    let full_ipc = mean(&full.iter().map(|r| r.1).collect::<Vec<_>>());
    let sub_ipc = mean(&sub.iter().map(|r| r.1).collect::<Vec<_>>());
    let full_miss = mean(&full.iter().map(|r| r.2).collect::<Vec<_>>());
    let sub_miss = mean(&sub.iter().map(|r| r.2).collect::<Vec<_>>());
    let full_bp = mean(&full.iter().map(|r| r.3).collect::<Vec<_>>());
    let sub_bp = mean(&sub.iter().map(|r| r.3).collect::<Vec<_>>());

    SubsamplingError {
        latency_mean_std_error: if sub_lat_mean == 0.0 {
            0.0
        } else {
            std_error / sub_lat_mean
        },
        ipc_relative_error: if full_ipc == 0.0 {
            0.0
        } else {
            (sub_ipc - full_ipc).abs() / full_ipc
        },
        l1_miss_ratio_diff: (sub_miss - full_miss).abs(),
        branch_mispredict_diff: (sub_bp - full_bp).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_windows_are_consecutive_and_spread() {
        let idx = systematic_sample(100, 4, 3);
        assert_eq!(idx, vec![0, 1, 2, 25, 26, 27, 50, 51, 52, 75, 76, 77]);
    }

    #[test]
    fn last_window_stays_in_range() {
        let idx = systematic_sample(10, 3, 3);
        assert!(idx.iter().all(|&i| i < 10));
        assert_eq!(idx.len(), 9);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_plan_rejected() {
        systematic_sample(5, 3, 3);
    }

    #[test]
    fn perfect_subsample_has_zero_bias_errors() {
        let rows: Vec<(f64, f64, f64, f64)> = (0..100).map(|_| (2.0, 1.5, 0.03, 0.01)).collect();
        let err = subsampling_error(&rows, &rows[..10]);
        assert!(err.ipc_relative_error < 1e-12);
        assert!(err.l1_miss_ratio_diff < 1e-12);
        assert!(err.branch_mispredict_diff < 1e-12);
        assert!(err.latency_mean_std_error < 1e-12); // constant latency
    }

    #[test]
    fn biased_subsample_shows_errors() {
        let full: Vec<(f64, f64, f64, f64)> = (0..100)
            .map(|i| {
                let v = 1.0 + (i as f64 / 100.0);
                (v, v, 0.02 + i as f64 * 1e-4, 0.01)
            })
            .collect();
        // Take only the tail: biased high.
        let err = subsampling_error(&full, &full[90..]);
        assert!(err.ipc_relative_error > 0.2);
        assert!(err.l1_miss_ratio_diff > 0.003);
        assert!(err.latency_mean_std_error < 0.01, "tail is homogeneous");
    }
}
