use bonsai_cluster::{ClusterParams, FramePipeline, TreeMode};
use bonsai_geom::Point3;
use bonsai_lidar::{DrivingSequence, SensorConfig, SequenceConfig, WorldConfig};
use bonsai_sim::{CpuConfig, EnergyModel, SimEngine, TimingModel};

use crate::metrics::FrameMetrics;
use crate::sampling::systematic_sample;

/// Shared configuration of all experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The driving sequence (dataset substitute).
    pub sequence: SequenceConfig,
    /// The euclidean-cluster pipeline parameters.
    pub cluster: ClusterParams,
    /// The modelled CPU.
    pub cpu: CpuConfig,
    /// Number of sub-sample windows (paper: 20).
    pub samples: usize,
    /// Frames per window (paper: 3 = 300 ms at 10 Hz).
    pub frames_per_sample: usize,
}

impl ExperimentConfig {
    /// The paper-scale setup: the eight-minute drive, 20 × 300 ms
    /// sub-samples (60 simulated frames).
    pub fn paper() -> ExperimentConfig {
        ExperimentConfig {
            sequence: SequenceConfig::paper_drive(),
            cluster: ClusterParams::default(),
            cpu: CpuConfig::a72_like(),
            samples: 20,
            frames_per_sample: 3,
        }
    }

    /// A small configuration for tests and smoke runs: a short drive,
    /// coarse sensor, 4 × 1 sub-samples.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            sequence: SequenceConfig {
                duration_s: 8.0,
                frame_hz: 10.0,
                speed_mps: 13.9,
                world: WorldConfig {
                    length: 400.0,
                    ..WorldConfig::default()
                },
                sensor: SensorConfig {
                    azimuth_steps: 300,
                    ..SensorConfig::hdl64e()
                },
            },
            cluster: ClusterParams::default(),
            cpu: CpuConfig::a72_like(),
            samples: 4,
            frames_per_sample: 1,
        }
    }
}

/// Drives frames of the sequence through the cluster pipeline on a
/// fresh, per-mode simulation engine, producing [`FrameMetrics`].
#[derive(Debug)]
pub struct FrameRunner {
    cfg: ExperimentConfig,
    sequence: DrivingSequence,
    pipeline: FramePipeline,
    timing: TimingModel,
    energy: EnergyModel,
}

impl FrameRunner {
    /// Builds the runner (generates the world lazily through the
    /// sequence).
    pub fn new(cfg: ExperimentConfig) -> FrameRunner {
        let sequence = DrivingSequence::new(cfg.sequence.clone());
        let pipeline = FramePipeline::new(cfg.cluster.clone());
        FrameRunner {
            cfg,
            sequence,
            pipeline,
            timing: TimingModel::a72_like(),
            energy: EnergyModel::a72_like(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The underlying driving sequence.
    pub fn sequence(&self) -> &DrivingSequence {
        &self.sequence
    }

    /// The timing model used for metric derivation.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The energy model used for metric derivation.
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// The systematic sub-sample frame indices (paper Section V-A).
    pub fn sampled_frames(&self) -> Vec<usize> {
        systematic_sample(
            self.sequence.num_frames(),
            self.cfg.samples,
            self.cfg.frames_per_sample,
        )
    }

    /// Generates the raw cloud of frame `i` (delegates to the sequence).
    pub fn raw_frame(&self, i: usize) -> Vec<Point3> {
        self.sequence.frame(i)
    }

    /// Runs one already-generated cloud through the pipeline on `sim`,
    /// collecting per-frame metrics. Counters are reset before the frame
    /// (cache and predictor state stay warm across frames, like a
    /// continuously running node).
    pub fn run_cloud(
        &self,
        sim: &mut SimEngine,
        mode: TreeMode,
        frame_index: usize,
        cloud: &[Point3],
    ) -> FrameMetrics {
        sim.reset_counters();
        let result = self.pipeline.run(sim, cloud, mode);
        FrameMetrics::collect(
            frame_index,
            sim,
            &self.timing,
            &self.energy,
            result.output.search_stats,
            result.output.clusters.len(),
            result.clustered_points,
            result.output.compressed_bytes,
            result.output.build_stats.num_leaves,
        )
    }

    /// Runs a set of frames in `mode` on a fresh engine; returns one
    /// metric record per frame.
    pub fn run_frames(&self, mode: TreeMode, frames: &[usize]) -> Vec<FrameMetrics> {
        let mut sim = SimEngine::new(&self.cfg.cpu);
        frames
            .iter()
            .map(|&i| {
                let cloud = self.raw_frame(i);
                self.run_cloud(&mut sim, mode, i, &cloud)
            })
            .collect()
    }

    /// Runs the same frames under two modes with frame clouds generated
    /// once, returning `(baseline, bonsai)` metric records.
    pub fn run_frames_paired(
        &self,
        frames: &[usize],
        a: TreeMode,
        b: TreeMode,
    ) -> (Vec<FrameMetrics>, Vec<FrameMetrics>) {
        let mut sim_a = SimEngine::new(&self.cfg.cpu);
        let mut sim_b = SimEngine::new(&self.cfg.cpu);
        let mut out_a = Vec::with_capacity(frames.len());
        let mut out_b = Vec::with_capacity(frames.len());
        for &i in frames {
            let cloud = self.raw_frame(i);
            out_a.push(self.run_cloud(&mut sim_a, a, i, &cloud));
            out_b.push(self.run_cloud(&mut sim_b, b, i, &cloud));
        }
        (out_a, out_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_runs_a_frame() {
        let runner = FrameRunner::new(ExperimentConfig::quick());
        let frames = runner.sampled_frames();
        assert_eq!(frames.len(), 4);
        let m = runner.run_frames(TreeMode::Baseline, &frames[..1]);
        assert_eq!(m.len(), 1);
        assert!(m[0].end_to_end.cycles > 0.0);
        assert!(m[0].clusters > 0, "no clusters in frame");
        assert!(m[0].search.leaf_visits > 0);
    }

    #[test]
    fn paired_runs_share_frames_and_differ_in_work() {
        let runner = FrameRunner::new(ExperimentConfig::quick());
        let frames = runner.sampled_frames();
        let (base, bonsai) =
            runner.run_frames_paired(&frames[..2], TreeMode::Baseline, TreeMode::Bonsai);
        assert_eq!(base.len(), 2);
        for (a, b) in base.iter().zip(&bonsai) {
            assert_eq!(a.frame_index, b.frame_index);
            assert_eq!(a.clusters, b.clusters, "cluster outputs must agree");
            assert!(
                b.search.point_bytes_loaded < a.search.point_bytes_loaded,
                "bonsai moves fewer point bytes"
            );
            assert_eq!(a.compressed_bytes, 0);
            assert!(b.compressed_bytes > 0);
        }
    }
}
