//! Known-bad: `Arc::make_mut` in the copy-on-write home without
//! consulting the dirty gate first. The gated function below it does
//! it by the book and must stay clean.

use std::sync::Arc;

pub struct Router {
    shards: Vec<Arc<Shard>>,
}

impl Router {
    pub fn touch(&mut self, i: usize) {
        Arc::make_mut(&mut self.shards[i]).dirty = true;
    }

    pub fn commit_then_touch(&mut self, i: usize) {
        if self.shards[i].has_dirty_nodes() {
            self.flush(i);
        }
        Arc::make_mut(&mut self.shards[i]).dirty = false;
    }
}
