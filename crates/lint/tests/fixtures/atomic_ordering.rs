//! Known-bad: atomics that participate in synchronization with no
//! `// HB:` comment naming the happens-before partner, plus the
//! counter idiom (`Relaxed`) outside any allowlisted counter module.
//! The `Acquire` load at the bottom carries its partner comment and
//! must stay clean.

use std::sync::atomic::{AtomicU64, Ordering};

pub static EPOCH: AtomicU64 = AtomicU64::new(0);

pub fn publish(next: u64) {
    EPOCH.store(next, Ordering::Release);
}

pub fn current_hint() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

pub fn pin() -> u64 {
    // HB: pairs with the `Release` store in `publish` — a pinned
    // reader must observe every write from before the publish.
    EPOCH.load(Ordering::Acquire)
}
