//! Known-bad: a bare `assert!` in a hot-path module.

pub fn lane_count(n: usize) -> usize {
    assert!(n % 8 == 0, "lane padding");
    n / 8
}
