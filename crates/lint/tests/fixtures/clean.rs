//! Known-good: every construct the rules police, done by the book.
//! Must produce zero diagnostics under the strictest policy.

/// Reads the first lane without a bounds check.
///
/// # Safety
///
/// `xs` must be non-empty.
pub unsafe fn first_unchecked(xs: &[f32]) -> f32 {
    // SAFETY: the caller guarantees `xs` is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

pub struct T {
    points: Vec<[f32; 3]>,
}

impl T {
    pub fn radius_search(&self, center: [f32; 3], r: f32) -> Vec<u32> {
        if !r.is_finite() || center.iter().any(|c| !c.is_finite()) {
            return Vec::new();
        }
        let _ = &self.points;
        Vec::new()
    }

    pub fn nearest(&self, center: [f32; 3]) -> Option<u32> {
        self.radius_search(center, 1.0).first().copied()
    }
}

pub fn checked_head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn padded(n: usize) -> usize {
    debug_assert!(n % 8 == 0, "lane padding");
    // lint: allow(panic-free-serving) — division by the constant 8
    // cannot fail; `checked_div` only returns `None` for divisor 0.
    n.checked_div(8).unwrap()
}
