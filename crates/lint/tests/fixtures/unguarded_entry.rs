//! Known-bad: a search entry point with no degenerate-input guard.

pub struct T;

impl T {
    pub fn radius_search(&self, center: [f32; 3], r: f32) -> Vec<u32> {
        let _ = (center, r);
        Vec::new()
    }
}
