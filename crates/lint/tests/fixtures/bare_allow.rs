//! Known-bad: a bare allow (no justification) is itself a violation
//! and does not suppress the unwrap beneath it.

pub fn first(xs: &[f32]) -> f32 {
    // lint: allow(panic-free-serving)
    *xs.first().unwrap()
}
