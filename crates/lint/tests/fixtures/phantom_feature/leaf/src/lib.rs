//! Leaf crate of the phantom-feature fixture workspace.

#[cfg(feature = "simd")]
pub const LANES: usize = 8;
