//! Phantom-feature fixture: one gate on a declared feature (fine) and
//! one on a feature that exists nowhere (flagged).

#[cfg(feature = "simd")]
pub fn lanes() -> usize {
    8
}

#[cfg(feature = "undeclared")]
pub fn ghost() {}
