//! Known-bad: an allow naming a rule that does not exist.

// lint: allow(warp-drive) — engage, number one.
pub fn noop() {}
