//! Known-bad: a pinned epoch dropped in the very statement that
//! pinned it — the guard lasts zero instructions, so the snapshot it
//! was supposed to protect can be reclaimed immediately. The binding
//! form below it must stay clean.

pub fn warm_up(publisher: &EpochPublisher) {
    publisher.pin();
}

pub fn snapshot_len(publisher: &EpochPublisher) -> usize {
    let pinned = publisher.pin();
    pinned.snapshot().len()
}
