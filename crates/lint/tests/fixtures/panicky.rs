//! Known-bad: panic paths in serving-crate library code.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty")
}

pub fn not_yet() {
    todo!("later")
}
