//! Known-bad: public fallible serving APIs that hide or stringify
//! their failure modes — `try_*` returning `Option`, `Result` with a
//! bare `String`, and the catch-all `Box<dyn Error>`.

pub fn try_lookup(table: &[u32], idx: usize) -> Option<u32> {
    table.get(idx).copied()
}

pub fn load(path: &str) -> Result<Vec<u32>, String> {
    Err(format!("cannot read {path}"))
}

pub fn parse(s: &str) -> Result<u32, Box<dyn std::error::Error>> {
    Ok(s.len() as u32)
}
