//! Self-tests over the fixture corpus: every known-bad file must light
//! up with the exact diagnostics, the known-good file and the real
//! workspace must come back clean, and the CLI must turn those results
//! into exit codes (and, with `--json`, into the annotation contract).

use std::path::{Path, PathBuf};

use bonsai_lint::{check_file, check_workspace, Diagnostic, FilePolicy, Rule};

/// The strictest per-file policy: every rule enabled, no sanctioned
/// sites. `cow_home` is on so the cow fixture exercises the dirty-gate
/// dataflow rather than the blanket out-of-home ban;
/// `atomic_counters` stays off so bare `Relaxed` is never sanctioned.
const STRICT: FilePolicy = FilePolicy {
    panic_free: true,
    hot_path: true,
    guard_surface: true,
    concurrency: true,
    atomic_counters: false,
    cow_home: true,
    typed_errors: true,
};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let src = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture readable");
    check_file(Path::new(name), &src, STRICT)
}

/// Asserts the fixture produced exactly `expected` as (rule, line)
/// pairs, in order.
fn assert_diags(name: &str, expected: &[(Rule, u32)]) {
    let got = check_fixture(name);
    let pairs: Vec<(Rule, u32)> = got.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(pairs, expected, "{name}:\n{}", render(&got));
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn missing_safety_fixture() {
    assert_diags("missing_safety.rs", &[(Rule::UnsafeHygiene, 4)]);
}

#[test]
fn bare_allow_fixture_is_flagged_and_does_not_suppress() {
    assert_diags(
        "bare_allow.rs",
        &[(Rule::AllowSyntax, 5), (Rule::PanicFreeServing, 6)],
    );
}

#[test]
fn unknown_rule_allow_fixture() {
    assert_diags("unknown_rule_allow.rs", &[(Rule::AllowSyntax, 3)]);
}

#[test]
fn unguarded_entry_fixture() {
    assert_diags("unguarded_entry.rs", &[(Rule::GuardDataflow, 6)]);
}

#[test]
fn panicky_fixture() {
    assert_diags(
        "panicky.rs",
        &[(Rule::PanicFreeServing, 4), (Rule::PanicFreeServing, 8)],
    );
}

#[test]
fn bare_assert_fixture() {
    assert_diags("bare_assert.rs", &[(Rule::DebugAssertDiscipline, 4)]);
}

#[test]
fn atomic_ordering_fixture() {
    // The `Release` store and bare `Relaxed` load are flagged; the
    // `Acquire` load carrying its `// HB:` partner comment is not.
    assert_diags(
        "atomic_ordering.rs",
        &[
            (Rule::AtomicOrderingDiscipline, 12),
            (Rule::AtomicOrderingDiscipline, 16),
        ],
    );
}

#[test]
fn cow_ungated_fixture() {
    // `touch` clones without consulting the dirty gate; the gated
    // sibling function stays clean.
    assert_diags("cow_ungated.rs", &[(Rule::CowDiscipline, 13)]);
}

#[test]
fn pin_dropped_fixture() {
    // The statement-dropped pin is flagged; the let-bound pin is not.
    assert_diags("pin_dropped.rs", &[(Rule::EpochPinBalance, 7)]);
}

#[test]
fn stringly_errors_fixture() {
    // `try_*` hiding its reason in `Option`, a `String` error, and a
    // `Box<dyn Error>` — one diagnostic per signature line.
    assert_diags(
        "stringly_errors.rs",
        &[
            (Rule::TypedErrorDiscipline, 5),
            (Rule::TypedErrorDiscipline, 9),
            (Rule::TypedErrorDiscipline, 13),
        ],
    );
}

#[test]
fn clean_fixture_is_clean() {
    let got = check_fixture("clean.rs");
    assert!(got.is_empty(), "clean.rs must be clean:\n{}", render(&got));
}

/// The feature-gates rule over a deliberately drifted mini-workspace:
/// every failure mode the rule covers, one diagnostic each.
#[test]
fn phantom_feature_workspace_lights_up() {
    let diags = check_workspace(&fixture_dir().join("phantom_feature"));
    assert!(
        diags.iter().all(|d| d.rule == Rule::FeatureGates),
        "only feature-gates diagnostics expected:\n{}",
        render(&diags)
    );
    let has = |needle: &str| {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no diagnostic mentions {needle:?}:\n{}",
            render(&diags)
        );
    };
    // (a) a cfg on a feature no manifest declares.
    has("`feature = \"undeclared\"` is not declared");
    // (b) `dep:` on a dependency that does not exist.
    has("enables `dep:missing`");
    // (b) forward to a feature the dependency does not declare.
    has("`leaf` declares no feature `warp`");
    // (b) an entry that is neither a feature nor a forward.
    has("lists `nonexistent`");
    // (c) propagation drift: both declare `simd`, no chain.
    has("feature gate drift: phantom-root declares `simd`");
    assert_eq!(diags.len(), 5, "{}", render(&diags));
}

/// The serving front-end is held to the serving rules: `bonsai-serve`
/// must be in both the panic-free and the guard-dataflow crate lists,
/// and the workspace scan must actually visit it (it is a member and a
/// workspace dependency, so `load_workspace` picks it up both ways).
#[test]
fn serve_crate_is_under_the_serving_rules() {
    assert!(
        bonsai_lint::SERVING_CRATES.contains(&"bonsai-serve"),
        "bonsai-serve must be panic-free serving code"
    );
    assert!(
        bonsai_lint::GUARD_CRATES.contains(&"bonsai-serve"),
        "bonsai-serve entry points must discharge the guard rule"
    );
    assert!(
        bonsai_lint::TYPED_ERROR_CRATES.contains(&"bonsai-serve"),
        "bonsai-serve fallible APIs must return typed errors"
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let crates = bonsai_lint::load_workspace(&root);
    assert!(
        crates.iter().any(|c| c.manifest.name == "bonsai-serve"),
        "workspace scan must include crates/serve"
    );
}

/// An unguarded `pub fn radius_query` under the exact policy the serve
/// crate's sources get must light up — proving the rules added for
/// `bonsai-serve` are live, not just listed.
#[test]
fn serve_policy_catches_unguarded_serving_entry() {
    let src = "impl Server {\n    /// Serve one query.\n    pub fn radius_query(&self, q: Point3, radius: f32) -> Vec<Neighbor> {\n        self.inner(q, radius)\n    }\n}\n";
    let policy = FilePolicy {
        panic_free: true,
        hot_path: false,
        guard_surface: true,
        concurrency: true,
        atomic_counters: false,
        cow_home: false,
        typed_errors: true,
    };
    let diags = check_file(Path::new("crates/serve/src/lib.rs"), src, policy);
    let pairs: Vec<(Rule, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(pairs, vec![(Rule::GuardDataflow, 3)], "{}", render(&diags));
}

/// The real workspace must lint clean — this is the same gate CI runs,
/// enforced from the test suite so `cargo test` alone catches drift.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let diags = check_workspace(&root);
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        render(&diags)
    );
}

/// CLI contract: exit 0 on a clean tree, exit 1 (with `file:line`
/// diagnostics on stdout) on a tree with violations.
#[test]
fn cli_exit_codes_follow_findings() {
    let bin = env!("CARGO_BIN_EXE_bonsai-lint");

    let clean_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = std::process::Command::new(bin)
        .args(["--check", "--root"])
        .arg(&clean_root)
        .output()
        .expect("run bonsai-lint");
    assert!(out.status.success(), "clean tree must exit 0");

    let bad_root = fixture_dir().join("phantom_feature");
    let out = std::process::Command::new(bin)
        .args(["--check", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run bonsai-lint");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Cargo.toml:") && stdout.contains("[feature-gates]"),
        "diagnostics must carry file:line and the rule name:\n{stdout}"
    );
}

/// `--json` contract: exactly one JSON array of
/// `{"file","line","rule","message"}` objects on stdout, `[]` when
/// clean — the shape the CI annotation step consumes verbatim.
#[test]
fn json_mode_round_trips_for_ci_annotations() {
    let bin = env!("CARGO_BIN_EXE_bonsai-lint");

    let bad_root = fixture_dir().join("phantom_feature");
    let out = std::process::Command::new(bin)
        .args(["--check", "--json", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run bonsai-lint");
    assert_eq!(out.status.code(), Some(1), "violations must still exit 1");
    let stdout = String::from_utf8(out.stdout).expect("json output is utf-8");
    assert!(
        stdout.starts_with('[') && stdout.ends_with("]\n"),
        "stdout must be one JSON array:\n{stdout}"
    );
    let entries: Vec<&str> = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .collect();
    assert!(!entries.is_empty(), "violations must produce entries");
    for e in &entries {
        for key in ["\"file\":\"", "\"line\":", "\"rule\":\"", "\"message\":\""] {
            assert!(e.contains(key), "entry missing {key}: {e}");
        }
    }
    assert!(
        stdout.contains("\"rule\":\"feature-gates\""),
        "rule names must round-trip:\n{stdout}"
    );

    let clean_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = std::process::Command::new(bin)
        .args(["--check", "--json", "--root"])
        .arg(&clean_root)
        .output()
        .expect("run bonsai-lint");
    assert!(out.status.success(), "clean tree must exit 0");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "[]\n",
        "clean tree must print the empty array"
    );
}
