#![forbid(unsafe_code)]
//! CLI for `bonsai-lint`. See the library docs for the rule set.
//!
//! ```text
//! cargo run -p bonsai-lint -- --check            # whole workspace
//! cargo run -p bonsai-lint -- --check --json     # machine-readable
//! cargo run -p bonsai-lint -- --check --root DIR # another tree
//! cargo run -p bonsai-lint -- --list-rules
//! ```
//!
//! Exit status: 0 when clean, 1 on any violation, 2 on usage errors.
//! With `--json`, stdout is exactly one JSON array of
//! `{"file", "line", "rule", "message"}` objects (empty array when
//! clean) — the contract the CI annotation step consumes.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // --check is the only mode; accepted for CI readability.
            "--check" => {}
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("bonsai-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "bonsai-lint — K-D Bonsai repo-invariant checks\n\n\
                     USAGE: bonsai-lint [--check] [--json] [--root DIR] [--list-rules]\n\n\
                     Exits 0 when the tree is clean, 1 on violations. --json prints\n\
                     diagnostics as a JSON array for CI annotation."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bonsai-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for (name, what) in RULES {
            println!("{name:<28} {what}");
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let diags = bonsai_lint::check_workspace(&root);
    if json {
        print!("{}", bonsai_lint::render_json(&diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("bonsai-lint: workspace clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!(
            "bonsai-lint: {} violation{} — suppress per-site with \
             `// lint: allow(<rule>) — <justification>`",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}

const RULES: &[(&str, &str)] = &[
    (
        "unsafe-hygiene",
        "every `unsafe` is immediately preceded by a `// SAFETY:` comment",
    ),
    (
        "panic-free-serving",
        "no unwrap/expect/panic!/todo! in serving-crate library code",
    ),
    (
        "guard-dataflow",
        "pub entry points transitively reach a degenerate-input guard through the call graph",
    ),
    (
        "feature-gates",
        "cfg feature names exist in Cargo.toml and propagate through the crate chain",
    ),
    (
        "debug-assert-discipline",
        "bare assert! in hot-path modules must be debug_assert! or justified",
    ),
    (
        "atomic-ordering-discipline",
        "Ordering:: uses are Relaxed in counter modules or carry an `// HB:` partner comment",
    ),
    (
        "cow-discipline",
        "Arc::make_mut only in core/src/shard.rs functions that consult the dirty gate first",
    ),
    (
        "epoch-pin-balance",
        "a pinned epoch flows into a binding or return value, never dropped where pinned",
    ),
    (
        "typed-error-discipline",
        "public try_*/fallible serving APIs return Result with a workspace error enum",
    ),
    (
        "allow-syntax",
        "lint: allow(...) must name a known rule and carry a justification",
    ),
];

/// Walks up from CWD to the directory whose `Cargo.toml` has a
/// `[workspace]` table; falls back to CWD.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let toml = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&toml) {
            if src.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
