//! A conservative workspace-internal call graph over the symbol table.
//!
//! Callsites are token-level: any identifier immediately followed by
//! `(` that is not a keyword, a macro bang, or an `fn` declaration is
//! a call — this covers free calls (`guard(x)`), path calls
//! (`Shard::guard(x)`) and method syntax (`self.guard(x)`) alike.
//! `use a::b as c;` renames are undone before the name is recorded.
//!
//! Resolution is **by name, to every workspace `fn` with that name**:
//! without type information a method call is ambiguous, and the graph
//! deliberately over-approximates — a spurious edge can only make
//! guard-dataflow *pass* a function that deserves scrutiny at one
//! remove, never fail a guarded one, and the entry-point surface is
//! small enough that the imprecision is reviewable. `#[cfg(test)]`
//! items are kept as callers but never traversed as callees, so a
//! guard that only a test harness reaches does not count.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Lexed, TokKind};
use crate::symbols::FileSymbols;

/// Identifiers that look like calls when followed by `(` but are
/// control flow or binding syntax.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "fn",
    "unsafe", "box", "dyn", "impl", "where", "ref", "mut", "use", "pub", "yield", "await",
];

/// The resolved names called from one body's token range
/// (`use`-aliases undone, deduplicated).
pub fn call_names(
    lexed: &Lexed,
    body: (usize, usize),
    aliases: &BTreeMap<String, String>,
) -> BTreeSet<String> {
    let toks = &lexed.tokens;
    let mut out = BTreeSet::new();
    let end = body.1.min(toks.len().saturating_sub(1));
    for j in body.0..=end {
        let t = &toks[j];
        if t.kind != TokKind::Ident
            || !toks.get(j + 1).is_some_and(|n| n.is_punct(b'('))
            || (j > 0 && toks[j - 1].is_ident("fn"))
            || CALL_KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        let resolved = aliases.get(&t.text).unwrap_or(&t.text);
        out.insert(resolved.clone());
    }
    out
}

/// One `fn` node of the graph.
#[derive(Debug)]
pub struct FnNode {
    pub name: String,
    pub is_test: bool,
    /// Resolved names this body calls.
    pub calls: BTreeSet<String>,
}

/// The workspace call graph: flattened `fn` nodes, a name index for
/// conservative resolution, and a per-file index back into the
/// symbol tables.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// `index[file][fn]` → node id, parallel to the input ordering.
    pub index: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `(lexed, symbols)` pairs, one per file,
    /// in workspace order.
    pub fn build(files: &[(&Lexed, &FileSymbols)]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut index = Vec::new();
        for (lexed, syms) in files {
            let mut ids = Vec::with_capacity(syms.fns.len());
            for f in &syms.fns {
                let calls = f
                    .body
                    .map(|b| call_names(lexed, b, &syms.aliases))
                    .unwrap_or_default();
                ids.push(nodes.len());
                nodes.push(FnNode {
                    name: f.name.clone(),
                    is_test: f.is_test,
                    calls,
                });
            }
            index.push(ids);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(id);
        }
        CallGraph {
            nodes,
            by_name,
            index,
        }
    }

    /// Breadth-first reachability: does `start` transitively call a
    /// name satisfying `target`? Edges fan out to every same-named
    /// non-test workspace `fn` (the conservative over-approximation);
    /// cycles terminate through the visited set.
    pub fn reaches(&self, start: usize, target: &dyn Fn(&str) -> bool) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        seen[start] = true;
        let mut q = VecDeque::from([start]);
        while let Some(id) = q.pop_front() {
            for name in &self.nodes[id].calls {
                if target(name) {
                    return true;
                }
                for &cid in self.by_name.get(name).map_or(&[][..], |v| v.as_slice()) {
                    if !self.nodes[cid].is_test && !seen[cid] {
                        seen[cid] = true;
                        q.push_back(cid);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::scan_attributes;
    use crate::symbols;

    struct Built {
        graph: CallGraph,
    }

    fn build(srcs: &[&str]) -> Built {
        let lexed: Vec<_> = srcs.iter().map(|s| lex(s)).collect();
        let syms: Vec<_> = lexed
            .iter()
            .map(|l| {
                let (tr, _) = scan_attributes(&l.tokens);
                symbols::scan(l, &tr)
            })
            .collect();
        let pairs: Vec<_> = lexed.iter().zip(syms.iter()).collect();
        Built {
            graph: CallGraph::build(&pairs),
        }
    }

    fn node(b: &Built, file: usize, f: usize) -> usize {
        b.graph.index[file][f]
    }

    #[test]
    fn direct_and_method_syntax_calls_resolve() {
        let b = build(&[
            "pub fn entry(&self, r: f32) { self.checked(r); }\nfn checked(r: f32) { if !radius_is_searchable(r) { return; } }\n",
        ]);
        let is_guard = |n: &str| n == "radius_is_searchable";
        assert!(
            b.graph.reaches(node(&b, 0, 0), &is_guard),
            "via method call"
        );
        assert!(b.graph.reaches(node(&b, 0, 1), &is_guard), "direct");
    }

    #[test]
    fn use_aliased_calls_resolve_to_the_original_name() {
        let b = build(&[
            "use crate::guards::radius_is_searchable as ok;\npub fn entry(r: f32) { if ok(r) {} }\n",
        ]);
        assert!(b
            .graph
            .reaches(node(&b, 0, 0), &|n| n == "radius_is_searchable"));
    }

    #[test]
    fn cross_file_delegation_reaches_through_the_chain() {
        let b = build(&[
            "pub fn entry(q: P) { middle(q) }\n",
            "pub fn middle(q: P) { leaf(q) }\nfn leaf(q: P) { q.is_finite(); guard(q); }\nfn guard(q: P) { query_is_searchable(q); }\n",
        ]);
        assert!(b
            .graph
            .reaches(node(&b, 0, 0), &|n| n == "query_is_searchable"));
        assert!(!b.graph.reaches(node(&b, 0, 0), &|n| n == "absent"));
    }

    #[test]
    fn recursion_and_cycles_terminate() {
        let b = build(&[
            "pub fn a(x: u32) { b(x) }\nfn b(x: u32) { a(x); c(x) }\nfn c(x: u32) { c(x) }\n",
        ]);
        // No guard anywhere in the a↔b / c→c cycle: must terminate
        // and answer false.
        assert!(!b.graph.reaches(node(&b, 0, 0), &|n| n == "is_finite"));
    }

    #[test]
    fn shadowed_names_over_approximate_to_every_candidate() {
        // Two `check` fns in different files; only one reaches the
        // guard. The caller's edge fans out to both, so reachability
        // holds — the documented conservative direction.
        let b = build(&[
            "pub fn entry(r: f32) { check(r) }\nfn check(_r: f32) {}\n",
            "fn check(r: f32) { radius_is_searchable(r); }\n",
        ]);
        assert!(b
            .graph
            .reaches(node(&b, 0, 0), &|n| n == "radius_is_searchable"));
    }

    #[test]
    fn cfg_test_only_callees_are_not_traversed() {
        let b = build(&[
            "pub fn entry(r: f32) { helper(r) }\n#[cfg(test)]\nmod tests {\n    pub fn helper(r: f32) { radius_is_searchable(r); }\n}\n",
        ]);
        // The only fn named `helper` is test-gated: the guard must not
        // count as reached through it.
        assert!(!b
            .graph
            .reaches(node(&b, 0, 0), &|n| n == "radius_is_searchable"));
    }

    #[test]
    fn macro_invocations_and_keywords_are_not_calls() {
        let lexed = lex("fn f(x: u32) { if (x > 0) { vec![x]; println!(\"{}\", x); g(x); } }\n");
        let (tr, _) = scan_attributes(&lexed.tokens);
        let syms = symbols::scan(&lexed, &tr);
        let calls = call_names(&lexed, syms.fns[0].body.unwrap(), &syms.aliases);
        assert!(calls.contains("g"));
        assert!(!calls.contains("if") && !calls.contains("println") && !calls.contains("vec"));
    }
}
