#![forbid(unsafe_code)]
//! `bonsai-lint`: the K-D Bonsai workspace's self-contained static
//! analyzer.
//!
//! The runtime defenses (deep auditor, chaos harness) catch invariant
//! violations *after* they happen; this crate makes the conventions
//! those defenses exist to police regression-proof at review time.
//! The rules run over a minimal hand-rolled Rust lexer (the workspace
//! is offline — no `syn`, no rustc driver) plus an analysis layer —
//! a symbol table ([`symbols`]) and a conservative workspace call
//! graph ([`callgraph`]) — for the checks token patterns cannot see:
//!
//! 1. **unsafe-hygiene** — every `unsafe` is immediately preceded by a
//!    `// SAFETY:` comment (or a `# Safety` doc section).
//! 2. **panic-free-serving** — no `unwrap()`/`expect()`/`panic!`/
//!    `todo!`/`unimplemented!` in non-test library code of the serving
//!    crates; `chaos.rs` fault injectors are exempt but still scanned
//!    by every other rule.
//! 3. **guard-dataflow** — `pub fn` search/mutation entry points
//!    transitively reach a degenerate-input guard
//!    (`radius_is_searchable`/`query_is_searchable`/`is_finite`)
//!    through the call graph; `#[cfg(test)]`-only callees don't count.
//! 4. **feature-gates** — `feature = "…"` names exist in the crate's
//!    `Cargo.toml`, feature entries reference real dependencies and
//!    real features, and a declared feature propagates (transitively)
//!    to every direct dependency that declares the same feature.
//! 5. **debug-assert-discipline** — bare `assert!` in hot-path
//!    modules is either `debug_assert!` or carries a justified allow.
//! 6. **atomic-ordering-discipline** — every `Ordering::` use is
//!    `Relaxed` inside an allowlisted counter module, or carries a
//!    `// HB:` comment naming its Acquire/Release partner site.
//! 7. **cow-discipline** — `Arc::make_mut` only inside the
//!    copy-on-write home (`core/src/shard.rs`), in functions that
//!    consult the dirty gate (`has_dirty_nodes`) first.
//! 8. **epoch-pin-balance** — a pinned epoch flows into a binding or
//!    return value, never dropped in the statement that pinned it.
//! 9. **typed-error-discipline** — public `try_*`/fallible serving
//!    APIs return `Result` with a workspace-defined error enum, never
//!    `String`/`Box<dyn Error>`.
//!
//! Suppression is per-site and must be justified:
//!
//! ```text
//! // lint: allow(<rule>) — <why this is sound here>
//! ```
//!
//! Bare allows and unknown rule names are violations themselves
//! (`allow-syntax`). Run with `cargo run -p bonsai-lint -- --check`
//! (add `--json` for machine-readable diagnostics).

pub mod callgraph;
pub mod concurrency;
pub mod dataflow;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod symbols;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use lexer::TokKind;
use manifest::Manifest;
pub use rules::{Diagnostic, FilePolicy, Rule};

/// Crates whose library code must stay panic-free (rule 2).
pub const SERVING_CRATES: &[&str] = &[
    "bonsai-kdtree",
    "bonsai-core",
    "bonsai-cluster",
    "bonsai-pipeline",
    "bonsai-serve",
];

/// Crates whose `pub fn` entry points are held to guard-dataflow.
pub const GUARD_CRATES: &[&str] = &["bonsai-kdtree", "bonsai-core", "bonsai-serve"];

/// Crates whose public fallible APIs are held to
/// typed-error-discipline.
pub const TYPED_ERROR_CRATES: &[&str] = &[
    "bonsai-core",
    "bonsai-cluster",
    "bonsai-pipeline",
    "bonsai-serve",
];

/// Hot-path modules (rule 5): the search / sweep / mutate files whose
/// release-build cost a bare `assert!` lands on.
pub const HOT_MODULES: &[(&str, &str)] = &[
    ("bonsai-kdtree", "search.rs"),
    ("bonsai-kdtree", "scratch.rs"),
    ("bonsai-kdtree", "knn.rs"),
    ("bonsai-kdtree", "simd.rs"),
    ("bonsai-kdtree", "mutate.rs"),
    ("bonsai-core", "engine.rs"),
    ("bonsai-core", "shell.rs"),
    ("bonsai-core", "simd.rs"),
    ("bonsai-core", "tree.rs"),
    ("bonsai-core", "shard.rs"),
];

/// Counter modules where bare `Ordering::Relaxed` is the sanctioned
/// idiom: load-accounting counters whose readers tolerate staleness by
/// design (`ShardLoad` decay sampling). Everything else needs an
/// `// HB:` comment or a justified allow.
pub const ATOMIC_COUNTER_MODULES: &[(&str, &str)] = &[("bonsai-core", "adapt.rs")];

/// The one file sanctioned to call `Arc::make_mut` on shard snapshots
/// (cow-discipline): the copy-on-write commit path behind the dirty
/// gate.
pub const COW_HOME: (&str, &str) = ("bonsai-core", "shard.rs");

/// One crate of the workspace: its directory and parsed manifest.
#[derive(Debug)]
pub struct WorkspaceCrate {
    pub dir: PathBuf,
    pub manifest: Manifest,
}

/// Loads the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`): the root package plus every member.
pub fn load_workspace(root: &Path) -> Vec<WorkspaceCrate> {
    let root_manifest = manifest::parse(&root.join("Cargo.toml"));
    let mut crates = Vec::new();
    let mut seen = BTreeSet::new();
    let mut push = |dir: PathBuf, crates: &mut Vec<WorkspaceCrate>| {
        if seen.insert(dir.clone()) {
            let m = manifest::parse(&dir.join("Cargo.toml"));
            if !m.name.is_empty() {
                crates.push(WorkspaceCrate { dir, manifest: m });
            }
        }
    };
    push(root.to_path_buf(), &mut crates);
    for member in &root_manifest.members {
        push(root.join(member), &mut crates);
    }
    // Workspace-dependency paths cover members the members list might
    // alias; harmless when redundant.
    for p in root_manifest.workspace_dep_paths.values() {
        push(root.join(p), &mut crates);
    }
    crates
}

/// One source file queued for analysis: path (as diagnostics should
/// print it), contents, and the per-file rule policy.
#[derive(Debug)]
pub struct SourceSpec {
    pub path: PathBuf,
    pub src: String,
    pub policy: FilePolicy,
}

/// The per-file half of an [`analyze`] run, kept so callers can
/// inspect what the analysis layer extracted.
struct FileAnalysis {
    lexed: lexer::Lexed,
    symbols: symbols::FileSymbols,
    allows: Vec<rules::Allow>,
    test_regions: rules::Regions,
    attr_lines: rules::Regions,
}

/// Runs every source-level rule over a batch of files **as one
/// analysis unit**: the call graph, alias table and error-enum set
/// span the whole batch, so guard-dataflow sees cross-file delegation
/// chains. (Feature-gates is manifest-level and runs separately in
/// [`check_workspace`].)
pub fn check_sources(inputs: &[SourceSpec]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut files = Vec::with_capacity(inputs.len());
    for spec in inputs {
        let lexed = lexer::lex(&spec.src);
        let (allows, mut allow_diags) = rules::parse_allows(&spec.path, &lexed);
        diags.append(&mut allow_diags);
        let (test_regions, attr_lines) = rules::scan_attributes(&lexed.tokens);
        let symbols = symbols::scan(&lexed, &test_regions);
        files.push(FileAnalysis {
            lexed,
            symbols,
            allows,
            test_regions,
            attr_lines,
        });
    }

    // Workspace-level context: the call graph and the error-enum set.
    let pairs: Vec<(&lexer::Lexed, &symbols::FileSymbols)> =
        files.iter().map(|f| (&f.lexed, &f.symbols)).collect();
    let graph = CallGraph::build(&pairs);
    let enums: BTreeSet<String> = files
        .iter()
        .flat_map(|f| f.symbols.enums.iter().cloned())
        .collect();

    for (idx, (spec, fa)) in inputs.iter().zip(files.iter()).enumerate() {
        let allowed = |rule: Rule, line: u32| rules::is_allowed(&fa.allows, rule, line);
        let policy = spec.policy;
        rules::check_unsafe_hygiene(&spec.path, &fa.lexed, &fa.attr_lines, &allowed, &mut diags);
        if policy.panic_free {
            rules::check_panic_free(
                &spec.path,
                &fa.lexed,
                &fa.test_regions,
                &allowed,
                &mut diags,
            );
        }
        if policy.hot_path {
            rules::check_debug_assert(
                &spec.path,
                &fa.lexed,
                &fa.test_regions,
                &allowed,
                &mut diags,
            );
        }
        if policy.concurrency {
            concurrency::check_atomic_ordering(
                &spec.path,
                &fa.lexed,
                &fa.symbols,
                &fa.test_regions,
                &fa.attr_lines,
                policy,
                &allowed,
                &mut diags,
            );
            concurrency::check_cow(
                &spec.path,
                &fa.lexed,
                &fa.symbols,
                &fa.test_regions,
                policy,
                &allowed,
                &mut diags,
            );
            concurrency::check_pin_balance(
                &spec.path,
                &fa.lexed,
                &fa.symbols,
                &fa.test_regions,
                &allowed,
                &mut diags,
            );
        }
        dataflow::check_guard_dataflow(
            &spec.path,
            &fa.symbols,
            &graph,
            idx,
            policy,
            &allowed,
            &mut diags,
        );
        dataflow::check_typed_errors(
            &spec.path,
            &fa.lexed,
            &fa.symbols,
            &enums,
            policy,
            &allowed,
            &mut diags,
        );
    }
    diags
}

/// Checks one source file in isolation (fixtures, unit tests). The
/// call graph and enum set cover just this file; cross-file
/// delegation needs [`check_sources`].
pub fn check_file(path: &Path, src: &str, policy: FilePolicy) -> Vec<Diagnostic> {
    check_sources(&[SourceSpec {
        path: path.to_path_buf(),
        src: src.to_string(),
        policy,
    }])
}

/// Runs every rule over the workspace at `root`. The returned
/// diagnostics are sorted by file then line.
pub fn check_workspace(root: &Path) -> Vec<Diagnostic> {
    let crates = load_workspace(root);
    let mut sources: Vec<SourceSpec> = Vec::new();
    // (crate index, file, line, feature name) of every `feature = "…"`
    // occurrence, across src/tests/benches/examples.
    let mut feature_uses: Vec<(usize, PathBuf, u32, String)> = Vec::new();

    for (ci, c) in crates.iter().enumerate() {
        let name = c.manifest.name.as_str();
        for file in crate_sources(&c.dir, root) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let in_src = file
                .strip_prefix(&c.dir)
                .map(|p| p.starts_with("src"))
                .unwrap_or(false);
            if in_src {
                let file_name = file
                    .file_name()
                    .map(|f| f.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let serving = SERVING_CRATES.contains(&name);
                let is_chaos = file_name == "chaos.rs";
                let policy = FilePolicy {
                    panic_free: serving && !is_chaos,
                    hot_path: HOT_MODULES.contains(&(name, file_name.as_str())),
                    guard_surface: GUARD_CRATES.contains(&name) && !is_chaos,
                    concurrency: serving && !is_chaos,
                    atomic_counters: ATOMIC_COUNTER_MODULES.contains(&(name, file_name.as_str())),
                    cow_home: (name, file_name.as_str()) == COW_HOME,
                    typed_errors: TYPED_ERROR_CRATES.contains(&name) && !is_chaos,
                };
                sources.push(SourceSpec {
                    path: rel.clone(),
                    src: src.clone(),
                    policy,
                });
            }
            for (feat, line) in extract_feature_uses(&src) {
                feature_uses.push((ci, rel.clone(), line, feat));
            }
        }
    }

    let mut diags = check_sources(&sources);
    diags.extend(check_feature_gates(root, &crates, &feature_uses));
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Renders diagnostics as a JSON array (the `--json` CLI contract):
/// `[{"file": …, "line": …, "rule": …, "message": …}, …]`. Hand-rolled
/// like the rest of the crate — the workspace is offline.
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            esc(&d.file.to_string_lossy().replace('\\', "/")),
            d.line,
            d.rule,
            esc(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// The `.rs` files rule scanning covers for one crate: everything
/// under `src/`, plus `tests/`, `benches/` and `examples/` (those are
/// only consulted for feature usage). Fixture corpora — deliberately
/// bad snippets — are skipped wholesale.
fn crate_sources(dir: &Path, root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in ["src", "tests", "benches", "examples"] {
        let d = dir.join(sub);
        if d.is_dir() {
            walk_rs(&d, &mut files);
        }
    }
    // Fixture corpora are judged relative to the crate being scanned,
    // so pointing the analyzer *at* a fixture workspace (the self-tests
    // do) still scans that workspace's own sources.
    files.retain(|f| {
        let rel = f.strip_prefix(dir).unwrap_or(f);
        !rel.components()
            .any(|c| c.as_os_str() == "fixtures" || c.as_os_str() == "target")
    });
    let _ = root;
    files.sort();
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Every `feature = "name"` token triple in `src` (covers
/// `#[cfg(feature = "…")]`, `cfg!(feature = "…")` and
/// `#[cfg_attr(feature = "…", …)]` alike), with its line.
pub fn extract_feature_uses(src: &str) -> Vec<(String, u32)> {
    let lexed = lexer::lex(src);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("feature") {
            continue;
        }
        let Some(eq) = toks.get(i + 1) else { continue };
        let Some(s) = toks.get(i + 2) else { continue };
        if eq.is_punct(b'=') && s.kind == TokKind::Str {
            let name = s
                .text
                .trim_start_matches(['r', 'b', '#'])
                .trim_matches(['"', '#'])
                .to_string();
            out.push((name, s.line));
        }
    }
    out
}

/// The feature-gates rule over the whole workspace; see the crate docs.
fn check_feature_gates(
    root: &Path,
    crates: &[WorkspaceCrate],
    feature_uses: &[(usize, PathBuf, u32, String)],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let root_manifest = manifest::parse(&root.join("Cargo.toml"));
    // Dependency-name → crate index, via the workspace path table.
    let by_dir: std::collections::BTreeMap<PathBuf, usize> = crates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.dir.clone(), i))
        .collect();
    let resolve = |dep: &str| -> Option<usize> {
        let p = root_manifest.workspace_dep_paths.get(dep)?;
        by_dir.get(&root.join(p)).copied()
    };

    // (a) used feature names must be declared.
    for (ci, file, line, feat) in feature_uses {
        let c = &crates[*ci];
        if !c.manifest.has_feature(feat) {
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: Rule::FeatureGates,
                message: format!(
                    "`feature = \"{feat}\"` is not declared in {}'s Cargo.toml \
                     [features] table — the gated code can never be enabled",
                    c.manifest.name
                ),
            });
        }
    }

    for c in crates {
        let toml_rel = c
            .dir
            .join("Cargo.toml")
            .strip_prefix(root)
            .map(Path::to_path_buf)
            .unwrap_or_else(|_| c.dir.join("Cargo.toml"));
        let line_of = |f: &str| c.manifest.feature_lines.get(f).copied().unwrap_or(1);

        // (b) every feature entry references something real.
        for (fname, entries) in &c.manifest.features {
            for e in entries {
                if let Some(stripped) = e.strip_prefix("dep:") {
                    if !c.manifest.deps.iter().any(|d| d == stripped) {
                        diags.push(Diagnostic {
                            file: toml_rel.clone(),
                            line: line_of(fname),
                            rule: Rule::FeatureGates,
                            message: format!(
                                "feature `{fname}` enables `dep:{stripped}`, which is \
                                 not a dependency of {}",
                                c.manifest.name
                            ),
                        });
                    }
                } else if let Some((dep, df)) = e.split_once('/') {
                    let dep = dep.trim_end_matches('?');
                    if !c.manifest.deps.iter().any(|d| d == dep) {
                        diags.push(Diagnostic {
                            file: toml_rel.clone(),
                            line: line_of(fname),
                            rule: Rule::FeatureGates,
                            message: format!(
                                "feature `{fname}` forwards to `{dep}/{df}`, but `{dep}` \
                                 is not a dependency of {}",
                                c.manifest.name
                            ),
                        });
                    } else if let Some(di) = resolve(dep) {
                        if !crates[di].manifest.has_feature(df) {
                            diags.push(Diagnostic {
                                file: toml_rel.clone(),
                                line: line_of(fname),
                                rule: Rule::FeatureGates,
                                message: format!(
                                    "feature `{fname}` forwards to `{dep}/{df}`, but \
                                     `{dep}` declares no feature `{df}`"
                                ),
                            });
                        }
                    }
                } else if !c.manifest.has_feature(e) {
                    diags.push(Diagnostic {
                        file: toml_rel.clone(),
                        line: line_of(fname),
                        rule: Rule::FeatureGates,
                        message: format!(
                            "feature `{fname}` lists `{e}`, which is neither a declared \
                             feature of {} nor a `dep/feature` forward",
                            c.manifest.name
                        ),
                    });
                }
            }
        }

        // (c) propagation completeness: a feature the crate declares
        // must reach — possibly through intermediate crates — every
        // direct workspace dependency that declares the same feature.
        // (This is what keeps the facade→cluster→core→kdtree `chaos`
        // and `simd` chains honest.)
        for (fname, _) in &c.manifest.features {
            if fname == "default" {
                continue;
            }
            let reached = feature_closure(c, fname, crates, &resolve);
            for dep in &c.manifest.deps {
                let Some(di) = resolve(dep) else { continue };
                if crates[di].manifest.has_feature(fname)
                    && !reached.contains(&(dep.clone(), fname.clone()))
                {
                    diags.push(Diagnostic {
                        file: toml_rel.clone(),
                        line: line_of(fname),
                        rule: Rule::FeatureGates,
                        message: format!(
                            "feature gate drift: {} declares `{fname}` and depends on \
                             `{dep}`, which also declares `{fname}`, but `{fname}` never \
                             propagates there (add `{dep}/{fname}` to the chain)",
                            c.manifest.name
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// The set of `(dep-name, feature)` pairs transitively enabled by
/// turning on `feature` of `krate`.
fn feature_closure(
    krate: &WorkspaceCrate,
    feature: &str,
    crates: &[WorkspaceCrate],
    resolve: &dyn Fn(&str) -> Option<usize>,
) -> BTreeSet<(String, String)> {
    let mut reached = BTreeSet::new();
    // Work queue of (crate manifest, feature) to expand.
    let mut queue: Vec<(&Manifest, String)> = vec![(&krate.manifest, feature.to_string())];
    let mut expanded: BTreeSet<(String, String)> = BTreeSet::new();
    while let Some((m, f)) = queue.pop() {
        if !expanded.insert((m.name.clone(), f.clone())) {
            continue;
        }
        let Some(entries) = m.feature_entries(&f) else {
            continue;
        };
        for e in entries {
            if let Some((dep, df)) = e.split_once('/') {
                let dep = dep.trim_end_matches('?');
                reached.insert((dep.to_string(), df.to_string()));
                if let Some(di) = resolve(dep) {
                    queue.push((&crates[di].manifest, df.to_string()));
                }
            } else if !e.starts_with("dep:") {
                queue.push((m, e.clone()));
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_uses_are_extracted_with_lines() {
        let src =
            "#[cfg(feature = \"simd\")]\nmod x;\nfn f() { if cfg!(feature = \"parallel\") {} }\n";
        let uses = extract_feature_uses(src);
        assert_eq!(
            uses,
            vec![("simd".to_string(), 1), ("parallel".to_string(), 3)]
        );
    }

    #[test]
    fn entry_point_convention_matches_issue_spec() {
        for n in [
            "radius_search",
            "radius_search_fast",
            "knn",
            "nearest",
            "insert",
            "delete",
            "split_shard",
            "merge_shards",
            "adapt_step",
            "worker_partition",
            "search_batch_shards",
            "search_batch_shard_parallel",
        ] {
            assert!(rules::is_entry_point_name(n), "{n}");
        }
        for n in [
            "radius_is_searchable",
            "shard_is_adaptable",
            "rebuild_shard",
            "search_batch",
            "commit",
            "load_report",
        ] {
            assert!(!rules::is_entry_point_name(n), "{n}");
        }
    }

    #[test]
    fn cross_file_delegation_satisfies_guard_dataflow() {
        // The entry point delegates into another file that guards:
        // single-file analysis would flag it, batch analysis must not.
        let entry = SourceSpec {
            path: PathBuf::from("a.rs"),
            src: "pub fn radius_probe(&self, r: f32) -> u32 { checked_walk(r) }\n".into(),
            policy: FilePolicy {
                guard_surface: true,
                ..FilePolicy::default()
            },
        };
        let helper = SourceSpec {
            path: PathBuf::from("b.rs"),
            src: "pub(crate) fn checked_walk(r: f32) -> u32 {\n    if !radius_is_searchable(r) { return 0; }\n    1\n}\n".into(),
            policy: FilePolicy::default(),
        };
        assert!(check_sources(&[entry, helper]).is_empty());
    }

    #[test]
    fn json_rendering_escapes_and_round_trips_the_fields() {
        let diags = vec![Diagnostic {
            file: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            rule: Rule::GuardDataflow,
            message: "say \"why\" — a\\b".to_string(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\"file\":\"crates/x/src/a.rs\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"rule\":\"guard-dataflow\""));
        assert!(json.contains("say \\\"why\\\" — a\\\\b"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
